"""Chrome trace-viewer export: mapping, synthetic timeline, CLI round-trip."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import trace2chrome  # noqa: E402

from repro.runtime.team import parallel_region  # noqa: E402
from repro.runtime.trace import (  # noqa: E402
    EventKind,
    TraceRecorder,
    events_from_dicts,
)
from repro.runtime.worksharing import run_for  # noqa: E402


@pytest.fixture
def traced_run(recorder: TraceRecorder):
    """A small traced region: chunks, barriers and tune decisions."""

    def loop(start, end, step):
        for _ in range(start, end, step):
            pass

    def body():
        run_for(loop, 0, 32, 1, schedule="staticBlock", loop_name="work")
        run_for(loop, 0, 32, 1, schedule="auto", loop_name="tuned")

    parallel_region(body, num_threads=2)
    return recorder


def test_event_dict_roundtrip(traced_run):
    dumped = traced_run.to_dicts()
    rebuilt = events_from_dicts(dumped)
    assert [e.kind for e in rebuilt] == [e.kind for e in traced_run.events()]
    assert [e.data for e in rebuilt] == [e.data for e in traced_run.events()]


def test_chunks_become_duration_events(traced_run):
    document = trace2chrome.events_to_chrome(traced_run.events())
    chunks = [e for e in document["traceEvents"] if e.get("cat") == "chunk"]
    assert chunks
    for slice_ in chunks:
        assert slice_["ph"] == "X"
        assert slice_["dur"] >= 0.0
        assert "loop" in slice_["args"]


def test_tune_decisions_become_instant_events(traced_run):
    document = trace2chrome.events_to_chrome(traced_run.events())
    decisions = [e for e in document["traceEvents"] if e.get("cat") == "tune_decision"]
    assert len(decisions) == 1
    event = decisions[0]
    assert event["ph"] == "i"
    assert event["args"]["loop"] == "tuned"
    assert event["args"]["schedule"] in ("serial", "static_block", "static_cyclic", "dynamic", "guided")
    assert "tune: tuned ->" in event["name"]


def test_barriers_and_steals_become_instant_events(traced_run):
    document = trace2chrome.events_to_chrome(traced_run.events())
    barriers = [e for e in document["traceEvents"] if e.get("cat") == "barrier"]
    assert barriers
    assert all(e["ph"] == "i" for e in barriers)


def test_synthetic_timeline_is_monotone_per_lane(traced_run):
    document = trace2chrome.events_to_chrome(traced_run.events())
    by_lane: dict[tuple, list] = {}
    for event in document["traceEvents"]:
        if event["ph"] in ("X", "i"):
            by_lane.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
    for lane, stamps in by_lane.items():
        assert stamps == sorted(stamps), lane


def test_task_events_map_to_steal_markers(recorder):
    recorder.record(EventKind.TASK_SPAWN, 0, 0, count=4)
    recorder.record(EventKind.TASK_STEAL, 0, 1, victim=0, count=1)
    document = trace2chrome.events_to_chrome(recorder.events())
    categories = {e.get("cat") for e in document["traceEvents"]}
    assert {"task_spawn", "task_steal"} <= categories
    steal = next(e for e in document["traceEvents"] if e.get("cat") == "task_steal")
    assert steal["ph"] == "i"
    assert steal["args"] == {"victim": 0, "count": 1}


def test_cli_roundtrip(tmp_path, traced_run):
    dump = tmp_path / "trace.json"
    dump.write_text(json.dumps(traced_run.to_dicts()))
    output = tmp_path / "chrome.json"
    assert trace2chrome.main([str(dump), str(output)]) == 0
    document = json.loads(output.read_text())
    assert document["traceEvents"]
    assert document["otherData"]["generated_by"] == "scripts/trace2chrome.py"
    # Default output naming: <input>.chrome.json
    assert trace2chrome.main([str(dump)]) == 0
    assert (tmp_path / "trace.chrome.json").exists()
