"""Tests for the annotation style and the annotation weaver."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import annotations as ann
from repro.core.annotation_weaver import weave_annotations
from repro.core.weaver.weaver import Weaver
from repro.runtime import context as ctx
from repro.runtime.exceptions import WeavingError
from repro.runtime.tasks import FutureResult
from repro.runtime.threadlocal import ArrayReducer
from repro.runtime.trace import EventKind, TraceRecorder


class TestAnnotationMetadata:
    def test_bare_and_parameterised_forms(self):
        @ann.parallel
        def region_a():
            pass

        @ann.parallel(threads=8)
        def region_b():
            pass

        assert ann.get_annotations(region_a)["parallel"]["threads"] is None
        assert ann.get_annotations(region_b)["parallel"]["threads"] == 8

    def test_annotations_do_not_change_behaviour(self):
        @ann.parallel(threads=4)
        @ann.for_loop(schedule="dynamic")
        @ann.critical(id="x")
        def plain(start, end, step):
            return sum(range(start, end, step))

        # Sequential semantics: without weaving, the function is untouched.
        assert plain(0, 10, 1) == sum(range(10))

    def test_multiple_annotations_stack(self):
        @ann.master
        @ann.barrier_before
        @ann.barrier_after
        def sync_point():
            pass

        keys = set(ann.get_annotations(sync_point))
        assert keys == {"master", "barrier_before", "barrier_after"}

    def test_has_annotation(self):
        @ann.single
        def once():
            pass

        assert ann.has_annotation(once, "single")
        assert not ann.has_annotation(once, "master")

    def test_for_loop_parameters_recorded(self):
        @ann.for_loop(schedule="staticCyclic", chunk=4, nowait=True)
        def loop(start, end, step):
            pass

        params = ann.get_annotations(loop)["for"]
        assert params["schedule"] == "staticCyclic"
        assert params["chunk"] == 4
        assert params["nowait"] is True

    def test_thread_local_field_class_decorator(self):
        @ann.thread_local_field("forces", "energies")
        class Particle:
            pass

        entry = ann.get_annotations(Particle)["thread_local_fields"]
        assert entry["fields"] == ["forces", "energies"]

    def test_method_annotation_inventory_is_complete(self):
        # Paper Table 1 lists 16 abstractions; thread-local-field is a class
        # annotation, the remaining 15 are method annotations.  "taskloop" and
        # "section" are this reproduction's extensions beyond Table 1
        # (OpenMP's taskloop and sections constructs).
        paper_annotations = set(ann.METHOD_ANNOTATIONS) - {"taskloop", "section"}
        assert len(paper_annotations) == 15
        assert len(ann.CLASS_ANNOTATIONS) == 1


def build_annotated_app():
    """A small annotated application exercising several constructs at once."""

    class App:
        def __init__(self):
            self.seen = []
            self.master_values = []
            self.lock = threading.Lock()

        @ann.parallel(threads=4)
        def region(self):
            self.loop(0, 20, 1)
            value = self.pivot()
            with self.lock:
                self.master_values.append(value)

        @ann.for_loop(schedule="staticCyclic")
        @ann.barrier_after
        def loop(self, start, end, step):
            tid = ctx.get_thread_id()
            with self.lock:
                self.seen.extend((tid, i) for i in range(start, end, step))

        @ann.master
        @ann.barrier_before
        @ann.barrier_after
        def pivot(self):
            return 7

    return App


class TestAnnotationWeaving:
    def test_end_to_end_parallel_execution(self):
        App = build_annotated_app()
        weaver = weave_annotations(App)
        try:
            app = App()
            app.region()
            assert sorted(i for _, i in app.seen) == list(range(20))
            assert len({tid for tid, _ in app.seen}) == 4
            assert app.master_values == [7, 7, 7, 7]
        finally:
            weaver.unweave_all()

    def test_unweaving_restores_sequential_execution(self):
        App = build_annotated_app()
        weaver = weave_annotations(App)
        weaver.unweave_all()
        app = App()
        app.region()
        assert {tid for tid, _ in app.seen} == {0}
        assert app.master_values == [7]

    def test_threads_default_override(self):
        class App:
            def __init__(self):
                self.count = 0
                self.lock = threading.Lock()

            @ann.parallel
            def region(self):
                with self.lock:
                    self.count += 1

        weaver = weave_annotations(App, threads=6)
        try:
            app = App()
            app.region()
            assert app.count == 6
        finally:
            weaver.unweave_all()

    def test_critical_annotation_protects_updates(self):
        class Counter:
            def __init__(self):
                self.value = 0

            @ann.parallel(threads=4)
            def region(self):
                for _ in range(25):
                    self.bump()

            @ann.critical(id="bump")
            def bump(self):
                current = self.value
                self.value = current + 1

        weaver = weave_annotations(Counter)
        try:
            counter = Counter()
            counter.region()
            assert counter.value == 100
        finally:
            weaver.unweave_all()

    def test_task_annotations(self):
        class App:
            def __init__(self):
                self.results = []
                self.lock = threading.Lock()

            def main(self):
                for i in range(3):
                    self.produce(i)
                self.join_point()
                return sorted(self.results)

            @ann.task
            def produce(self, i):
                with self.lock:
                    self.results.append(i * 10)

            @ann.task_wait
            def join_point(self):
                pass

        weaver = weave_annotations(App)
        try:
            assert App().main() == [0, 10, 20]
        finally:
            weaver.unweave_all()

    def test_future_task_annotation(self):
        class App:
            @ann.future_task
            def compute(self):
                return 123

        weaver = weave_annotations(App)
        try:
            future = App().compute()
            assert isinstance(future, FutureResult)
            assert future.get(timeout=5) == 123
        finally:
            weaver.unweave_all()

    def test_thread_local_and_reduce_annotations(self):
        @ann.thread_local_field("histogram", copy_value=np.copy)
        class Sampler:
            def __init__(self):
                self.histogram = np.zeros(3)

            @ann.parallel(threads=3)
            @ann.reduce_fields(field="histogram")
            def sample(self):
                self.histogram = self.histogram + (ctx.get_thread_id() + 1)

        weaver = weave_annotations(Sampler, reducers={"histogram": ArrayReducer()})
        try:
            sampler = Sampler()
            sampler.sample()
            assert sampler.histogram.tolist() == [6.0, 6.0, 6.0]
        finally:
            weaver.unweave_all()

    def test_reduce_without_reducer_raises(self):
        @ann.thread_local_field("x")
        class Broken:
            def __init__(self):
                self.x = 0

            @ann.reduce_fields(field="x")
            def merge(self):
                pass

        with pytest.raises(WeavingError):
            weave_annotations(Broken)

    def test_reduce_without_field_declaration_raises(self):
        class Broken:
            @ann.reduce_fields(field="missing")
            def merge(self):
                pass

        with pytest.raises(WeavingError):
            weave_annotations(Broken, reducers={"missing": ArrayReducer()})

    def test_no_targets_raises(self):
        with pytest.raises(WeavingError):
            weave_annotations()

    def test_recorder_propagated_to_regions(self):
        class App:
            @ann.parallel(threads=2)
            def region(self):
                pass

        recorder = TraceRecorder()
        weaver = weave_annotations(App, recorder=recorder)
        try:
            App().region()
            assert recorder.events(EventKind.REGION_BEGIN)
        finally:
            weaver.unweave_all()

    def test_weaving_into_supplied_weaver(self):
        class App:
            @ann.parallel(threads=2)
            def region(self):
                return "ok"

        weaver = Weaver()
        returned = weave_annotations(App, weaver=weaver)
        try:
            assert returned is weaver
            assert App().region() == "ok"
            assert weaver.records
        finally:
            weaver.unweave_all()


class TestSectionAndCollapseAnnotations:
    def test_section_annotation_attaches_metadata(self):
        @ann.section(group="io")
        def flush():
            pass

        assert ann.get_annotations(flush)["section"] == {"group": "io"}

    def test_for_loop_collapse_metadata(self):
        @ann.for_loop(schedule="dynamic", collapse=2, pin_rows=True)
        def tiles(r0, r1, rs, c0, c1, cs):
            pass

        params = ann.get_annotations(tiles)["for"]
        assert params["collapse"] == 2 and params["pin_rows"] is True

    def test_woven_sections_distribute_over_team(self):
        import threading

        from repro.core.annotation_weaver import weave_annotations

        class Pipeline:
            def __init__(self):
                self.log = []
                self.lock = threading.Lock()

            @ann.parallel(threads=3)
            def region(self):
                self.stage_a()
                self.stage_b()

            @ann.section(group="stages")
            def stage_a(self):
                with self.lock:
                    self.log.append("a")

            @ann.section(group="stages")
            def stage_b(self):
                with self.lock:
                    self.log.append("b")

        weaver = weave_annotations(Pipeline)
        try:
            app = Pipeline()
            app.region()
            assert sorted(app.log) == ["a", "b"]
        finally:
            weaver.unweave_all()

    def test_woven_collapse_loop_covers_grid(self):
        import numpy as np

        from repro.core.annotation_weaver import weave_annotations

        class Grid:
            def __init__(self):
                self.hits = np.zeros((4, 6), dtype=np.int64)
                self.lock = __import__("threading").Lock()

            @ann.parallel(threads=3)
            def region(self):
                self.tiles(0, 4, 1, 0, 6, 1)

            @ann.for_loop(schedule="dynamic", collapse=2)
            def tiles(self, r0, r1, rs, c0, c1, cs):
                with self.lock:
                    for r in range(r0, r1, rs):
                        for c in range(c0, c1, cs):
                            self.hits[r, c] += 1

        weaver = weave_annotations(Grid)
        try:
            app = Grid()
            app.region()
            assert (app.hits == 1).all()
        finally:
            weaver.unweave_all()
