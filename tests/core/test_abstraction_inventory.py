"""Table 1 inventory: every abstraction listed in the paper exists in the library.

This test is the executable counterpart of the paper's Table 1 ("Supported
OpenMP abstractions"): for each entry it checks that both the annotation-style
decorator and the pointcut-style aspect are present and correctly categorised.
"""

from __future__ import annotations

import pytest

from repro.core import annotations as ann
from repro.core import aspects


#: Paper Table 1 entry -> (annotation name, aspect class name)
TABLE_1 = {
    "@Parallel[(threads=n)]": ("parallel", "ParallelRegion"),
    "@For[(schedule=...)]": ("for", "ForWorkSharing"),
    "@Task": ("task", "TaskAspect"),
    "@TaskWait": ("task_wait", "TaskWaitAspect"),
    "@FutureTask": ("future_task", "FutureTaskAspect"),
    "@FutureResult": ("future_result", "FutureResultAspect"),
    "@Ordered": ("ordered", "OrderedAspect"),
    "@Critical[(id=name)]": ("critical", "CriticalAspect"),
    "@BarrierBefore": ("barrier_before", "BarrierBeforeAspect"),
    "@BarrierAfter": ("barrier_after", "BarrierAfterAspect"),
    "@Reader": ("reader", "ReaderAspect"),
    "@Writer": ("writer", "WriterAspect"),
    "@Single": ("single", "SingleAspect"),
    "@Master": ("master", "MasterAspect"),
    "@ThreadLocalField[(id=name)]": ("thread_local_fields", "ThreadLocalFieldAspect"),
    "@Reduce[(id=name)]": ("reduce", "ReduceAspect"),
}


@pytest.mark.parametrize("paper_entry, mapping", sorted(TABLE_1.items()))
def test_every_table1_abstraction_is_implemented(paper_entry, mapping):
    annotation_name, aspect_class_name = mapping
    # Aspect exists and is exported from repro.core.aspects.
    aspect_cls = getattr(aspects, aspect_class_name)
    assert isinstance(aspect_cls, type)
    # Annotation exists: either a method annotation or a class annotation.
    assert annotation_name in ann.METHOD_ANNOTATIONS or annotation_name in ann.CLASS_ANNOTATIONS


def test_table1_has_sixteen_entries():
    assert len(TABLE_1) == 16


def test_for_schedules_cover_the_three_paper_variants():
    from repro.runtime.scheduler import Schedule

    assert Schedule.parse("staticBlock") is Schedule.STATIC_BLOCK
    assert Schedule.parse("staticCyclic") is Schedule.STATIC_CYCLIC
    assert Schedule.parse("dynamic") is Schedule.DYNAMIC
    # Convenience subclasses exist for each schedule.
    assert aspects.ForStatic and aspects.ForCyclic and aspects.ForDynamic


def test_abstraction_labels_for_table2_accounting():
    """Aspects carry the abstraction codes used by the Table 2 reproduction."""
    assert aspects.ParallelRegion.abstraction == "PR"
    assert aspects.ForWorkSharing.abstraction == "FOR"
    assert aspects.BarrierBeforeAspect.abstraction == "BR"
    assert aspects.BarrierAfterAspect.abstraction == "BR"
    assert aspects.MasterAspect.abstraction == "MA"
    assert aspects.ThreadLocalFieldAspect.abstraction == "TLF"
