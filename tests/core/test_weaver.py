"""Tests for the weaver: weaving, unweaving, chaining, inheritance, instances."""

from __future__ import annotations

import sys
import types

import pytest

from repro.core.aspects.base import MethodAspect
from repro.core.weaver.joinpoint import JoinPoint
from repro.core.weaver.pointcut import call, implements, name, within
from repro.core.weaver.weaver import Weaver, is_woven, original_function
from repro.runtime.exceptions import WeavingError


class TracingAspect(MethodAspect):
    """Test aspect recording every interception; optionally transforms results."""

    def __init__(self, pointcut, label="trace", transform=None):
        super().__init__(pointcut, name=label)
        self.label = label
        self.transform = transform
        self.calls = []

    def around(self, joinpoint: JoinPoint):
        self.calls.append((joinpoint.qualified_name, joinpoint.args))
        result = joinpoint.proceed()
        if self.transform is not None:
            result = self.transform(result)
        return result


class Greeter:
    def greet(self, who):
        return f"hello {who}"

    def shout(self, who):
        return f"HELLO {who}"

    @staticmethod
    def version():
        return "v1"


class PoliteGreeter(Greeter):
    pass


class LoudGreeter(Greeter):
    def greet(self, who):
        return f"HELLO {who}!!!"


class TestBasicWeaving:
    def test_advice_wraps_matched_method(self):
        weaver = Weaver()
        aspect = TracingAspect(call("Greeter.greet"))
        weaver.weave(aspect, Greeter)
        try:
            assert Greeter().greet("world") == "hello world"
            assert aspect.calls == [("Greeter.greet", ("world",))]
        finally:
            weaver.unweave_all()

    def test_unweave_restores_original(self):
        weaver = Weaver()
        aspect = TracingAspect(call("Greeter.greet"))
        original = Greeter.greet
        weaver.weave(aspect, Greeter)
        assert Greeter.greet is not original
        assert is_woven(Greeter.greet)
        weaver.unweave_all()
        assert Greeter.greet is original
        assert not is_woven(Greeter.greet)

    def test_unmatched_pointcut_raises(self):
        weaver = Weaver()
        with pytest.raises(WeavingError):
            weaver.weave(TracingAspect(call("Greeter.nonexistent")), Greeter)

    def test_no_target_raises(self):
        weaver = Weaver()
        with pytest.raises(WeavingError):
            weaver.weave(TracingAspect(call("greet")))

    def test_abstract_aspect_cannot_be_woven(self):
        weaver = Weaver()
        with pytest.raises(WeavingError):
            weaver.weave(MethodAspect(), Greeter)

    def test_result_transformation(self):
        weaver = Weaver()
        aspect = TracingAspect(call("Greeter.greet"), transform=str.upper)
        weaver.weave(aspect, Greeter)
        try:
            assert Greeter().greet("bob") == "HELLO BOB"
        finally:
            weaver.unweave_all()

    def test_staticmethod_weaving(self):
        weaver = Weaver()
        aspect = TracingAspect(call("Greeter.version"))
        weaver.weave(aspect, Greeter)
        try:
            assert Greeter.version() == "v1"
            assert Greeter().version() == "v1"
            assert aspect.calls[0][0] == "Greeter.version"
        finally:
            weaver.unweave_all()
        assert Greeter.version() == "v1"

    def test_context_manager_unweaves(self):
        original = Greeter.greet
        with Weaver() as weaver:
            weaver.weave(TracingAspect(call("Greeter.greet")), Greeter)
            assert Greeter.greet is not original
        assert Greeter.greet is original


class TestChaining:
    def test_later_aspects_wrap_earlier_ones(self):
        order = []

        class OrderAspect(MethodAspect):
            def __init__(self, pointcut, label):
                super().__init__(pointcut, name=label)
                self.label = label

            def around(self, joinpoint):
                order.append(f"{self.label}:before")
                result = joinpoint.proceed()
                order.append(f"{self.label}:after")
                return result

        weaver = Weaver()
        weaver.weave(OrderAspect(call("Greeter.greet"), "inner"), Greeter)
        weaver.weave(OrderAspect(call("Greeter.greet"), "outer"), Greeter)
        try:
            Greeter().greet("x")
            assert order == ["outer:before", "inner:before", "inner:after", "outer:after"]
        finally:
            weaver.unweave_all()

    def test_unweave_all_restores_after_chain(self):
        weaver = Weaver()
        original = Greeter.greet
        weaver.weave(TracingAspect(call("Greeter.greet"), "a"), Greeter)
        weaver.weave(TracingAspect(call("Greeter.greet"), "b"), Greeter)
        assert weaver.unweave_all() == 2
        assert Greeter.greet is original

    def test_unweave_single_aspect_requires_top_of_chain(self):
        weaver = Weaver()
        inner = TracingAspect(call("Greeter.greet"), "inner")
        outer = TracingAspect(call("Greeter.greet"), "outer")
        weaver.weave(inner, Greeter)
        weaver.weave(outer, Greeter)
        try:
            with pytest.raises(WeavingError):
                weaver.unweave(inner)
            weaver.unweave(outer)
            weaver.unweave(inner)
            assert weaver.records == []
        finally:
            weaver.unweave_all()

    def test_unweave_unknown_aspect_raises(self):
        weaver = Weaver()
        with pytest.raises(WeavingError):
            weaver.unweave(TracingAspect(call("greet")))

    def test_original_function_resolves_through_chain(self):
        weaver = Weaver()
        original = Greeter.greet
        weaver.weave(TracingAspect(call("Greeter.greet"), "a"), Greeter)
        weaver.weave(TracingAspect(call("Greeter.greet"), "b"), Greeter)
        try:
            assert original_function(Greeter.greet) is original
        finally:
            weaver.unweave_all()


class TestInheritanceAndInterfaces:
    def test_weaving_base_class_affects_subclasses(self):
        weaver = Weaver()
        aspect = TracingAspect(call("Greeter.greet"))
        weaver.weave(aspect, Greeter)
        try:
            PoliteGreeter().greet("ann")
            # PoliteGreeter inherits the woven method, so the advice runs —
            # the paper's "bindings are retained over the class hierarchy".
            assert aspect.calls == [("Greeter.greet", ("ann",))]
        finally:
            weaver.unweave_all()

    def test_override_not_affected_unless_matched(self):
        weaver = Weaver()
        aspect = TracingAspect(call("Greeter.greet"))
        weaver.weave(aspect, Greeter)
        try:
            LoudGreeter().greet("ann")
            assert aspect.calls == []  # LoudGreeter overrides greet
        finally:
            weaver.unweave_all()

    def test_interface_pointcut_covers_all_implementations(self):
        from typing import Protocol

        class Greets(Protocol):
            def greet(self, who): ...

        module = types.ModuleType("fake_greeters")
        module.Greeter = Greeter
        module.LoudGreeter = LoudGreeter
        Greeter.__module__ = module.__name__
        LoudGreeter.__module__ = module.__name__
        sys.modules[module.__name__] = module
        try:
            weaver = Weaver()
            aspect = TracingAspect(implements(Greets, "greet"))
            weaver.weave(aspect, module)
            try:
                Greeter().greet("a")
                LoudGreeter().greet("b")
                names = [qualified for qualified, _ in aspect.calls]
                assert names == ["Greeter.greet", "LoudGreeter.greet"]
            finally:
                weaver.unweave_all()
        finally:
            del sys.modules[module.__name__]
            Greeter.__module__ = __name__
            LoudGreeter.__module__ = __name__

    def test_name_pointcut_matches_overrides_in_subclass_weave(self):
        weaver = Weaver()
        aspect = TracingAspect(within(Greeter) & name("greet"))
        weaver.weave(aspect, LoudGreeter)
        try:
            LoudGreeter().greet("z")
            assert aspect.calls == [("LoudGreeter.greet", ("z",))]
        finally:
            weaver.unweave_all()


class TestModuleAndInstanceWeaving:
    def test_module_function_weaving(self):
        module = types.ModuleType("fake_math_mod")
        exec("def double(x):\n    return 2 * x\n", module.__dict__)
        module.double.__module__ = module.__name__
        weaver = Weaver()
        aspect = TracingAspect(call("double"), transform=lambda value: value + 1)
        weaver.weave(aspect, module)
        try:
            assert module.double(5) == 11
            assert aspect.calls == [("fake_math_mod.double", (5,))]
        finally:
            weaver.unweave_all()
        assert module.double(5) == 10

    def test_instance_weaving_only_affects_that_instance(self):
        weaver = Weaver()
        target = Greeter()
        other = Greeter()
        aspect = TracingAspect(call("greet"), transform=str.title)
        weaver.weave(aspect, target)
        try:
            assert target.greet("bob") == "Hello Bob"
            assert other.greet("bob") == "hello bob"
        finally:
            weaver.unweave_all()
        assert target.greet("bob") == "hello bob"

    def test_records_and_woven_aspects(self):
        weaver = Weaver()
        a = TracingAspect(call("Greeter.greet"), "a")
        b = TracingAspect(call("Greeter.shout"), "b")
        weaver.weave(a, Greeter)
        weaver.weave(b, Greeter)
        try:
            assert len(weaver.records) == 2
            assert weaver.woven_aspects() == [a, b]
            description = weaver.records[0].describe()
            assert "Greeter.greet" in description
        finally:
            weaver.unweave_all()


class TestJoinPoint:
    def test_proceed_with_replaced_args(self):
        class ReplaceArgs(MethodAspect):
            def around(self, joinpoint):
                return joinpoint.proceed(joinpoint.args[0].upper())

        weaver = Weaver()
        weaver.weave(ReplaceArgs(call("Greeter.greet")), Greeter)
        try:
            assert Greeter().greet("bob") == "hello BOB"
        finally:
            weaver.unweave_all()

    def test_joinpoint_metadata(self):
        captured = {}

        class Capture(MethodAspect):
            def around(self, joinpoint):
                captured["name"] = joinpoint.name
                captured["qualified"] = joinpoint.qualified_name
                captured["target_type"] = type(joinpoint.target).__name__
                return joinpoint.proceed()

        weaver = Weaver()
        weaver.weave(Capture(call("Greeter.greet")), Greeter)
        try:
            Greeter().greet("x")
            assert captured == {"name": "greet", "qualified": "Greeter.greet", "target_type": "Greeter"}
        finally:
            weaver.unweave_all()

    def test_with_args_copy(self):
        class UseCopy(MethodAspect):
            def around(self, joinpoint):
                clone = joinpoint.with_args("copied")
                return clone.proceed()

        weaver = Weaver()
        weaver.weave(UseCopy(call("Greeter.greet")), Greeter)
        try:
            # proceed() on the clone forwards the clone's (replaced) arguments.
            assert Greeter().greet("ignored") == "hello copied"
        finally:
            weaver.unweave_all()


class TestBackendCapabilityAggregation:
    """weave_all tells parallel-region aspects when sibling aspects need a
    shared Python heap, so process backends fall back to threads."""

    def test_shared_locals_flag_propagates_to_parallel_region(self):
        from repro.core.aspects.execution import SingleAspect
        from repro.core.aspects.parallel_region import ParallelRegion

        pr = ParallelRegion(call("Greeter.greet"), threads=2)
        single = SingleAspect(call("Greeter.shout"))
        weaver = Weaver()
        weaver.weave_all([single, pr], Greeter)
        try:
            assert pr.region_requires_shared_locals is True
        finally:
            weaver.unweave_all()

    def test_flag_stays_clear_without_shared_locals_aspects(self):
        from repro.core.aspects.parallel_region import ParallelRegion
        from repro.core.aspects.worksharing import ForStatic

        pr = ParallelRegion(call("Greeter.greet"), threads=2)
        loop = ForStatic(call("Greeter.shout"))
        weaver = Weaver()
        weaver.weave_all([loop, pr], Greeter)
        try:
            assert pr.region_requires_shared_locals is False
        finally:
            weaver.unweave_all()

    def test_composite_aspects_are_flattened_for_capability_checks(self):
        from repro.core.aspects.base import CompositeAspect
        from repro.core.aspects.execution import MasterAspect
        from repro.core.aspects.parallel_region import ParallelRegion

        pr = ParallelRegion(call("Greeter.greet"), threads=2)
        bundle = CompositeAspect([MasterAspect(call("Greeter.shout")), pr])
        weaver = Weaver()
        weaver.weave_all([bundle], Greeter)
        try:
            assert pr.region_requires_shared_locals is True
        finally:
            weaver.unweave_all()

    def test_woven_single_on_process_backend_runs_on_thread_fallback(self):
        """End to end: a program woven with PR + Single executes correctly on
        the process backend because the weaver routed it to threads."""
        import warnings

        from repro.core.aspects.execution import SingleAspect
        from repro.core.aspects.parallel_region import ParallelRegion
        from repro.runtime.backend import ProcessBackend

        class Program:
            def __init__(self):
                self.audit = []

            def setup(self):
                self.audit.append("setup")
                return "configured"

            def main(self):
                return self.setup()

        pr = ParallelRegion(call("Program.main"), threads=3, backend=ProcessBackend())
        single = SingleAspect(call("Program.setup"))
        weaver = Weaver()
        weaver.weave_all([single, pr], Program)
        try:
            program = Program()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                assert program.main() == "configured"
            # Exactly one member executed setup, and its mutation is visible
            # to the parent — proof the region ran in-process (threads).
            assert program.audit == ["setup"]
        finally:
            weaver.unweave_all()

    def test_unmarked_woven_target_falls_back_on_process_backend(self):
        """A woven program whose state is ordinary heap data (not marked
        process_safe) must not lose worker writes on the process backend:
        the region aspect routes it to the thread fallback."""
        import threading
        import warnings

        from repro.core.aspects.parallel_region import ParallelRegion
        from repro.core.aspects.worksharing import ForStatic
        from repro.runtime.backend import ProcessBackend

        class Accumulator:
            def __init__(self):
                self.parts = []
                self._lock = threading.Lock()

            def accumulate(self, start, end, step):
                with self._lock:
                    self.parts.append(sum(range(start, end, step)))

            def main(self):
                self.accumulate(0, 100, 1)
                return sum(self.parts)

        weaver = Weaver()
        weaver.weave_all(
            [
                ForStatic(call("Accumulator.accumulate")),
                ParallelRegion(call("Accumulator.main"), threads=4, backend=ProcessBackend()),
            ],
            Accumulator,
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                assert Accumulator().main() == sum(range(100))
        finally:
            weaver.unweave_all()

    def test_reweave_with_process_safe_set_clears_stale_flag(self):
        from repro.core.aspects.execution import SingleAspect
        from repro.core.aspects.parallel_region import ParallelRegion
        from repro.core.aspects.worksharing import ForStatic

        pr = ParallelRegion(call("Greeter.greet"), threads=2)
        weaver = Weaver()
        weaver.weave_all([SingleAspect(call("Greeter.shout")), pr], Greeter)
        weaver.unweave_all()
        assert pr.region_requires_shared_locals is True
        weaver.weave_all([ForStatic(call("Greeter.shout")), pr], Greeter)
        try:
            assert pr.region_requires_shared_locals is False
        finally:
            weaver.unweave_all()
