"""Tests for the library aspects (Table 1 abstractions), pointcut style."""

from __future__ import annotations

import threading
import time

import pytest

import numpy as np

from repro.core.aspects.composite import ParallelFor
from repro.core.aspects.data import ReduceAspect, ThreadLocalFieldAspect
from repro.core.aspects.execution import (
    FutureResultAspect,
    FutureTaskAspect,
    MasterAspect,
    SingleAspect,
    TaskAspect,
    TaskLoopAspect,
    TaskWaitAspect,
)
from repro.core.aspects.parallel_region import ParallelRegion
from repro.core.aspects.synchronization import (
    BarrierAfterAspect,
    BarrierBeforeAspect,
    CriticalAspect,
    ReadersWriterAspect,
)
from repro.core.aspects.worksharing import ForCyclic, ForDynamic, ForStatic, ForWorkSharing, OrderedAspect
from repro.core.weaver.pointcut import call
from repro.core.weaver.weaver import Weaver
from repro.runtime import context as ctx
from repro.runtime.exceptions import SchedulingError, BrokenTeamError
from repro.runtime.tasks import FutureResult, TaskHandle
from repro.runtime.threadlocal import ArrayReducer, SumReducer


@pytest.fixture
def weaver():
    w = Weaver()
    yield w
    w.unweave_all()


class TestParallelRegionAspect:
    def test_region_spawns_team(self, weaver):
        class App:
            def __init__(self):
                self.threads = set()
                self.lock = threading.Lock()

            def region(self):
                with self.lock:
                    self.threads.add(ctx.get_thread_id())

        weaver.weave(ParallelRegion(call("App.region"), threads=4), App)
        app = App()
        app.region()
        assert app.threads == {0, 1, 2, 3}

    def test_threads_provider_override(self, weaver):
        class Sized(ParallelRegion):
            def num_threads(self):
                return 3

        class App:
            def __init__(self):
                self.count = 0
                self.lock = threading.Lock()

            def region(self):
                with self.lock:
                    self.count += 1

        weaver.weave(Sized(call("App.region")), App)
        app = App()
        app.region()
        assert app.count == 3

    def test_master_return_value(self, weaver):
        class App:
            def region(self):
                return ctx.get_thread_id() + 100

        weaver.weave(ParallelRegion(call("App.region"), threads=4), App)
        assert App().region() == 100


class TestForAspects:
    def make_app(self):
        class App:
            def __init__(self):
                self.seen = []
                self.lock = threading.Lock()

            def region(self):
                self.loop(0, 30, 1)

            def loop(self, start, end, step):
                tid = ctx.get_thread_id()
                with self.lock:
                    self.seen.extend((tid, i) for i in range(start, end, step))

        return App

    @pytest.mark.parametrize("aspect_cls", [ForStatic, ForCyclic, ForDynamic])
    def test_every_iteration_runs_once(self, weaver, aspect_cls):
        App = self.make_app()
        weaver.weave(aspect_cls(call("App.loop")), App)
        weaver.weave(ParallelRegion(call("App.region"), threads=3), App)
        app = App()
        app.region()
        assert sorted(i for _, i in app.seen) == list(range(30))

    def test_cyclic_distribution_shape(self, weaver):
        App = self.make_app()
        weaver.weave(ForCyclic(call("App.loop")), App)
        weaver.weave(ParallelRegion(call("App.region"), threads=3), App)
        app = App()
        app.region()
        thread_zero = sorted(i for tid, i in app.seen if tid == 0)
        assert thread_zero == list(range(0, 30, 3))

    def test_non_for_method_raises(self, weaver):
        class Bad:
            def region(self):
                self.not_a_loop()

            def not_a_loop(self):
                pass

        weaver.weave(ForStatic(call("Bad.not_a_loop")), Bad)
        weaver.weave(ParallelRegion(call("Bad.region"), threads=2), Bad)
        with pytest.raises((SchedulingError, BrokenTeamError)):
            Bad().region()

    def test_sequential_semantics_without_region(self, weaver):
        App = self.make_app()
        weaver.weave(ForStatic(call("App.loop")), App)
        app = App()
        app.loop(0, 10, 1)
        assert sorted(i for _, i in app.seen) == list(range(10))
        assert {tid for tid, _ in app.seen} == {0}

    def test_case_specific_schedule_override(self, weaver):
        class EvenOddSchedule(ForWorkSharing):
            """Case-specific schedule: picks cyclic, as the Sparse benchmark does."""

            def loop_schedule(self):
                return "staticCyclic"

        App = self.make_app()
        weaver.weave(EvenOddSchedule(call("App.loop")), App)
        weaver.weave(ParallelRegion(call("App.region"), threads=2), App)
        app = App()
        app.region()
        thread_zero = sorted(i for tid, i in app.seen if tid == 0)
        assert thread_zero == list(range(0, 30, 2))

    def test_parallel_for_combined_construct(self, weaver):
        class App:
            def __init__(self):
                self.seen = []
                self.lock = threading.Lock()

            def sweep(self, start, end, step):
                tid = ctx.get_thread_id()
                with self.lock:
                    self.seen.extend((tid, i) for i in range(start, end, step))

        weaver.weave(ParallelFor(call("App.sweep"), threads=4), App)
        app = App()
        app.sweep(0, 24, 1)
        assert sorted(i for _, i in app.seen) == list(range(24))
        assert len({tid for tid, _ in app.seen}) == 4


class TestOrderedAspect:
    def test_ordered_execution_matches_sequential_order(self, weaver):
        class App:
            def __init__(self):
                self.log = []
                self.lock = threading.Lock()

            def region(self):
                self.loop(0, 12, 1)

            def loop(self, start, end, step):
                for i in range(start, end, step):
                    self.record(i)

            def record(self, i):
                with self.lock:
                    self.log.append(i)

        weaver.weave(OrderedAspect(call("App.record")), App)
        weaver.weave(ForCyclic(call("App.loop"), ordered=True), App)
        weaver.weave(ParallelRegion(call("App.region"), threads=4), App)
        app = App()
        app.region()
        assert app.log == list(range(12))


class TestSynchronizationAspects:
    def test_critical_prevents_data_race(self, weaver):
        class Counter:
            def __init__(self):
                self.value = 0

            def region(self):
                for _ in range(50):
                    self.increment()

            def increment(self):
                current = self.value
                time.sleep(0.00005)
                self.value = current + 1

        weaver.weave(CriticalAspect(call("Counter.increment"), lock_id="inc"), Counter)
        weaver.weave(ParallelRegion(call("Counter.region"), threads=4), Counter)
        counter = Counter()
        counter.region()
        assert counter.value == 200

    def test_shared_lock_spans_type_unrelated_objects(self, weaver):
        class A:
            def touch(self):
                return "a"

        class B:
            def touch(self):
                return "b"

        aspect = CriticalAspect(call("touch"), lock_id="shared")
        weaver.weave(aspect, A, B)
        assert A().touch() == "a"
        assert B().touch() == "b"

    def test_barriers_before_and_after(self, weaver):
        class App:
            def __init__(self):
                self.order = []
                self.lock = threading.Lock()

            def region(self):
                with self.lock:
                    self.order.append(("work", ctx.get_thread_id()))
                self.sync_point()

            def sync_point(self):
                with self.lock:
                    self.order.append(("sync", ctx.get_thread_id()))

        weaver.weave(BarrierBeforeAspect(call("App.sync_point")), App)
        weaver.weave(BarrierAfterAspect(call("App.sync_point")), App)
        weaver.weave(ParallelRegion(call("App.region"), threads=4), App)
        app = App()
        app.region()
        tags = [tag for tag, _ in app.order]
        # All 'work' entries happen before any 'sync' entry (barrier-before).
        assert tags[:4] == ["work"] * 4
        assert tags[4:] == ["sync"] * 4

    def test_readers_writer_pair(self, weaver):
        class Store:
            def __init__(self):
                self.data = {}

            def region(self):
                tid = ctx.get_thread_id()
                if tid == 0:
                    self.put("k", 1)
                else:
                    self.get("k")

            def get(self, key):
                return self.data.get(key)

            def put(self, key, value):
                self.data[key] = value

        pair = ReadersWriterAspect(call("Store.get"), call("Store.put"))
        weaver.weave_all(pair.aspects(), Store)
        weaver.weave(ParallelRegion(call("Store.region"), threads=4), Store)
        store = Store()
        store.region()
        assert store.data == {"k": 1}
        assert pair.reader_aspect().rwlock is pair.writer_aspect().rwlock


class TestExecutionAspects:
    def test_single_and_master(self, weaver):
        class App:
            def __init__(self):
                self.single_runs = []
                self.master_runs = []
                self.lock = threading.Lock()

            def region(self):
                self.only_once()
                self.only_master()

            def only_once(self):
                with self.lock:
                    self.single_runs.append(ctx.get_thread_id())

            def only_master(self):
                with self.lock:
                    self.master_runs.append(ctx.get_thread_id())

        weaver.weave(SingleAspect(call("App.only_once")), App)
        weaver.weave(MasterAspect(call("App.only_master")), App)
        weaver.weave(ParallelRegion(call("App.region"), threads=4), App)
        app = App()
        app.region()
        assert len(app.single_runs) == 1
        assert app.master_runs == [0]

    def test_master_broadcasts_result(self, weaver):
        class App:
            def __init__(self):
                self.received = []
                self.lock = threading.Lock()

            def region(self):
                value = self.compute_pivot()
                with self.lock:
                    self.received.append(value)

            def compute_pivot(self):
                return 42

        weaver.weave(MasterAspect(call("App.compute_pivot")), App)
        weaver.weave(ParallelRegion(call("App.region"), threads=3), App)
        app = App()
        app.region()
        assert app.received == [42, 42, 42]

    def test_task_and_task_wait(self, weaver):
        class App:
            def __init__(self):
                self.done = []
                self.lock = threading.Lock()

            def main(self):
                for i in range(4):
                    self.background(i)
                self.join_point()
                return list(self.done)

            def background(self, i):
                with self.lock:
                    self.done.append(i)

            def join_point(self):
                pass

        weaver.weave(TaskAspect(call("App.background")), App)
        weaver.weave(TaskWaitAspect(call("App.join_point")), App)
        app = App()
        result = app.main()
        assert sorted(result) == [0, 1, 2, 3]

    def test_task_returns_handle(self, weaver):
        class App:
            def work(self):
                return "done"

        weaver.weave(TaskAspect(call("App.work")), App)
        handle = App().work()
        assert isinstance(handle, TaskHandle)
        assert handle.join(timeout=5) == "done"

    def test_task_depends_orders_execution(self, weaver):
        class App:
            def __init__(self):
                self.log = []
                self.lock = threading.Lock()
                self.first_handle = None

            def first(self):
                with self.lock:
                    self.log.append("first")

            def second(self):
                with self.lock:
                    self.log.append("second")

        weaver.weave(TaskAspect(call("App.first")), App)
        weaver.weave(
            TaskAspect(call("App.second"), depends=lambda jp: [jp.target.first_handle]),
            App,
        )
        app = App()
        app.first_handle = app.first()
        handle = app.second()
        handle.join(timeout=5)
        assert app.log == ["first", "second"]

    def test_taskloop_distributes_and_matches_sequential(self, weaver):
        class App:
            def __init__(self, n):
                self.n = n
                self.values = np.zeros(n)
                self.members = set()
                self.lock = threading.Lock()

            def run(self):
                self.fill(0, self.n, 1)
                return float(self.values.sum())

            def fill(self, start, end, step):
                with self.lock:
                    self.members.add(ctx.get_thread_id())
                for i in range(start, end, step):
                    self.values[i] = i * 2.0

        weaver.weave(TaskLoopAspect(call("App.fill"), grainsize=4), App)
        weaver.weave(ParallelRegion(call("App.run"), threads=3), App)
        app = App(60)
        total = app.run()
        assert total == float(sum(i * 2.0 for i in range(60)))
        assert app.values.tolist() == [i * 2.0 for i in range(60)]
        # Tiles executed within the region's team (distribution across
        # members is timing-dependent and covered by the runtime suite).
        assert app.members and app.members <= {0, 1, 2}

    def test_taskloop_requires_for_method_signature(self, weaver):
        class App:
            def not_a_loop(self):
                return 1

        weaver.weave(TaskLoopAspect(call("App.not_a_loop"), grainsize=1), App)
        with pytest.raises(SchedulingError):
            App().not_a_loop()

    def test_taskloop_sequential_outside_region(self, weaver):
        class App:
            def __init__(self):
                self.calls = []

            def fill(self, start, end, step):
                self.calls.append((start, end, step))

        weaver.weave(TaskLoopAspect(call("App.fill"), grainsize=2), App)
        app = App()
        app.fill(0, 10, 1)
        assert app.calls == [(0, 10, 1)]  # untouched full range — sequential semantics

    def test_future_task_and_future_result(self, weaver):
        class Result:
            def __init__(self, value):
                self.value = value

            def get_value(self):
                return self.value

        class App:
            def compute(self):
                time.sleep(0.05)
                return Result(99)

        weaver.weave(FutureTaskAspect(call("App.compute")), App)
        weaver.weave(FutureResultAspect(call("Result.get_value"), attribute=None), Result)
        future = App().compute()
        assert isinstance(future, FutureResult)
        assert future.get(timeout=5).get_value() == 99


class TestDataAspects:
    def test_thread_local_field_isolates_threads(self, weaver):
        class Accumulator:
            def __init__(self):
                self.partial = 0.0
                self.totals = {}
                self.lock = threading.Lock()

            def region(self):
                tid = ctx.get_thread_id()
                self.partial = 0.0
                for i in range(10):
                    self.partial += tid + 1
                with self.lock:
                    self.totals[tid] = self.partial

        weaver.weave(ThreadLocalFieldAspect("partial", classes=[Accumulator]), Accumulator)
        weaver.weave(ParallelRegion(call("Accumulator.region"), threads=3), Accumulator)
        acc = Accumulator()
        acc.region()
        assert acc.totals == {0: 10.0, 1: 20.0, 2: 30.0}

    def test_reduce_aspect_merges_thread_locals(self, weaver):
        class Histogram:
            def __init__(self):
                self.counts = np.zeros(4)

            def region(self):
                self.fill()

            def fill(self):
                local = self.counts
                local = local + 1.0
                self.counts = local

        field_aspect = ThreadLocalFieldAspect("counts", classes=[Histogram], copy_value=np.copy)
        weaver.weave(field_aspect, Histogram)
        weaver.weave(
            ReduceAspect(call("Histogram.fill"), field_aspect=field_aspect, reducer=ArrayReducer(), include_shared=False),
            Histogram,
        )
        weaver.weave(ParallelRegion(call("Histogram.region"), threads=4), Histogram)
        histogram = Histogram()
        histogram.region()
        assert histogram.counts.tolist() == [4.0, 4.0, 4.0, 4.0]

    def test_thread_local_outside_region_behaves_normally(self, weaver):
        class Plain:
            def __init__(self):
                self.value = 5

        weaver.weave(ThreadLocalFieldAspect("value", classes=[Plain]), Plain)
        obj = Plain()
        assert obj.value == 5
        obj.value = 7
        assert obj.value == 7

    def test_programmatic_reduce(self, weaver):
        class Summed:
            def __init__(self):
                self.total = 0

            def region(self):
                self.total = ctx.get_thread_id() + 1

        field_aspect = ThreadLocalFieldAspect("total", classes=[Summed])
        weaver.weave(field_aspect, Summed)
        weaver.weave(ParallelRegion(call("Summed.region"), threads=4), Summed)
        obj = Summed()
        obj.region()
        merged = field_aspect.reduce(obj, SumReducer(), include_shared=False)
        assert merged == 1 + 2 + 3 + 4
        assert obj.total == 10


class TestCollapseAspect:
    def make_grid_app(self):
        class GridApp:
            def __init__(self, rows=6, cols=5):
                self.rows = rows
                self.cols = cols
                self.hits = np.zeros((rows, cols), dtype=np.int64)
                self.lock = threading.Lock()

            def region(self):
                self.tiles(0, self.rows, 1, 0, self.cols, 1)

            def tiles(self, r0, r1, rs, c0, c1, cs):
                with self.lock:
                    for r in range(r0, r1, rs):
                        for c in range(c0, c1, cs):
                            self.hits[r, c] += 1

        return GridApp

    @pytest.mark.parametrize("schedule", ["staticBlock", "dynamic", "guided"])
    def test_collapse2_covers_grid_once(self, weaver, schedule, recorder):
        GridApp = self.make_grid_app()
        weaver.weave(ForWorkSharing(call("GridApp.tiles"), schedule=schedule, collapse=2), GridApp)
        weaver.weave(ParallelRegion(call("GridApp.region"), threads=3, recorder=recorder), GridApp)
        app = GridApp()
        app.region()
        assert (app.hits == 1).all()
        # CHUNK events cover the flat 6x5 space exactly.
        from repro.runtime.trace import EventKind

        chunk_events = recorder.events(EventKind.CHUNK)
        covered = sorted(
            i for e in chunk_events for i in range(e.data["start"], e.data["end"], e.data["step"])
        )
        assert covered == list(range(app.rows * app.cols))

    def test_collapse_arity_checked(self, weaver):
        class Bad:
            def region(self):
                self.tiles(0, 4, 1)

            def tiles(self, r0, r1, rs):
                pass

        weaver.weave(ForWorkSharing(call("Bad.tiles"), collapse=2), Bad)
        weaver.weave(ParallelRegion(call("Bad.region"), threads=2), Bad)
        with pytest.raises(BrokenTeamError) as excinfo:
            Bad().region()
        assert "collapse(2)" in str(excinfo.value.__cause__)


class TestSectionAspect:
    def make_pipeline_app(self):
        class Pipeline:
            def __init__(self):
                self.log = []
                self.lock = threading.Lock()

            def region(self):
                results = (self.stage_a(), self.stage_b(), self.stage_c())
                return results

            def stage_a(self):
                with self.lock:
                    self.log.append(("a", ctx.get_thread_id()))
                return "a"

            def stage_b(self):
                with self.lock:
                    self.log.append(("b", ctx.get_thread_id()))
                return "b"

            def stage_c(self):
                with self.lock:
                    self.log.append(("c", ctx.get_thread_id()))
                return "c"

        return Pipeline

    def test_each_section_executes_once(self, weaver):
        from repro.core.aspects.worksharing import SectionAspect

        Pipeline = self.make_pipeline_app()
        for stage in ("stage_a", "stage_b", "stage_c"):
            weaver.weave(SectionAspect(call(f"Pipeline.{stage}"), group="pipeline"), Pipeline)
        weaver.weave(ParallelRegion(call("Pipeline.region"), threads=3), Pipeline)
        app = Pipeline()
        app.region()
        assert sorted(stage for stage, _ in app.log) == ["a", "b", "c"]

    def test_winner_gets_value_others_none(self, weaver):
        from repro.core.aspects.worksharing import SectionAspect

        Pipeline = self.make_pipeline_app()
        weaver.weave(SectionAspect(call("Pipeline.stage_a")), Pipeline)
        weaver.weave(ParallelRegion(call("Pipeline.region"), threads=3), Pipeline)
        app = Pipeline()
        app.region()
        # Exactly one member executed the woven stage_a (the unwoven stages
        # stay replicated on every member — sequential base behaviour).
        assert len([entry for entry in app.log if entry[0] == "a"]) == 1

    def test_sequential_semantics_outside_region(self, weaver):
        from repro.core.aspects.worksharing import SectionAspect

        Pipeline = self.make_pipeline_app()
        weaver.weave(SectionAspect(call("Pipeline.stage_a")), Pipeline)
        app = Pipeline()
        assert app.stage_a() == "a"
        assert app.log == [("a", 0)]

    def test_section_trace_events(self, weaver, recorder):
        from repro.core.aspects.worksharing import SectionAspect
        from repro.runtime.trace import EventKind

        Pipeline = self.make_pipeline_app()
        weaver.weave(SectionAspect(call("Pipeline.stage_a"), group="traced"), Pipeline)
        weaver.weave(ParallelRegion(call("Pipeline.region"), threads=2, recorder=recorder), Pipeline)
        Pipeline().region()
        events = recorder.events(EventKind.SECTION)
        assert len(events) == 1
        assert events[0].data["sections"] == "traced"
        assert events[0].data["method"] == "Pipeline.stage_a"
