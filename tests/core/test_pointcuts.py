"""Tests for the pointcut DSL."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import critical, parallel
from repro.core.weaver.joinpoint import MethodDescriptor
from repro.core.weaver.pointcut import (
    EverythingPointcut,
    NothingPointcut,
    all_of,
    annotated,
    any_of,
    args,
    call,
    calls,
    execution,
    implements,
    name,
    subtype_of,
    within,
)
from repro.runtime.exceptions import PointcutError


class Particle:
    def force(self, x):
        return x

    def domove(self):
        pass


class ChargedParticle(Particle):
    def force(self, x):
        return 2 * x


class Simulation:
    def force(self, x):
        return -x

    def run_iters(self, start, end, step):
        pass

    @parallel
    def annotated_region(self):
        pass

    @critical(id="lock")
    def guarded(self):
        pass


def descriptor(cls, method_name):
    return MethodDescriptor(owner=cls, name=method_name, func=vars(cls)[method_name])


class TestCallPointcut:
    def test_plain_name(self):
        pc = call("force")
        assert pc.matches(descriptor(Particle, "force"))
        assert pc.matches(descriptor(Simulation, "force"))
        assert not pc.matches(descriptor(Particle, "domove"))

    def test_qualified_name(self):
        pc = call("Particle.force")
        assert pc.matches(descriptor(Particle, "force"))
        assert not pc.matches(descriptor(Simulation, "force"))

    def test_wildcards(self):
        assert call("Particle.*").matches(descriptor(Particle, "domove"))
        assert call("*.force").matches(descriptor(Simulation, "force"))
        assert call("do*").matches(descriptor(Particle, "domove"))
        assert not call("Sim*.domove").matches(descriptor(Particle, "domove"))

    def test_function_object(self):
        pc = call(Particle.force)
        assert pc.matches(descriptor(Particle, "force"))
        assert not pc.matches(descriptor(ChargedParticle, "force"))
        assert not pc.matches(descriptor(Simulation, "force"))

    def test_execution_is_alias(self):
        assert execution("force").matches(descriptor(Particle, "force"))

    def test_empty_pattern_rejected(self):
        with pytest.raises(PointcutError):
            call("")
        with pytest.raises(PointcutError):
            call("Particle.")

    def test_calls_union(self):
        pc = calls(["domove", "run_iters"])
        assert pc.matches(descriptor(Particle, "domove"))
        assert pc.matches(descriptor(Simulation, "run_iters"))
        assert not pc.matches(descriptor(Particle, "force"))


class TestWithinPointcut:
    def test_class_scope_includes_subclasses(self):
        pc = within(Particle)
        assert pc.matches(descriptor(Particle, "force"))
        assert pc.matches(descriptor(ChargedParticle, "force"))
        assert not pc.matches(descriptor(Simulation, "force"))

    def test_module_scope(self):
        import repro.runtime.scheduler as sched_mod

        pc = within(sched_mod)
        desc = MethodDescriptor(owner=sched_mod, name="make_scheduler", func=sched_mod.make_scheduler)
        assert pc.matches(desc)
        assert not pc.matches(descriptor(Particle, "force"))


class TestAnnotatedPointcut:
    def test_matches_annotation(self):
        pc = annotated("parallel")
        assert pc.matches(descriptor(Simulation, "annotated_region"))
        assert not pc.matches(descriptor(Simulation, "force"))

    def test_matches_parameterised_annotation(self):
        assert annotated("critical").matches(descriptor(Simulation, "guarded"))


class TestSubtypeAndInterface:
    def test_subtype_matching(self):
        pc = subtype_of(Particle)
        assert pc.matches(descriptor(Particle, "force"))
        assert pc.matches(descriptor(ChargedParticle, "force"))
        assert not pc.matches(descriptor(Simulation, "force"))

    def test_subtype_with_method_filter(self):
        pc = subtype_of(Particle, "force")
        assert pc.matches(descriptor(ChargedParticle, "force"))
        assert not pc.matches(descriptor(Particle, "domove"))

    def test_protocol_structural_matching(self):
        from typing import Protocol

        class HasForce(Protocol):
            def force(self, x): ...

        pc = implements(HasForce, "force")
        assert pc.matches(descriptor(Particle, "force"))
        assert pc.matches(descriptor(Simulation, "force"))
        assert not pc.matches(descriptor(Particle, "domove"))

    def test_non_class_rejected(self):
        with pytest.raises(PointcutError):
            subtype_of(42)  # type: ignore[arg-type]


class TestArgsPointcut:
    def test_for_method_signature(self):
        pc = args(min_args=3)
        assert pc.matches(descriptor(Simulation, "run_iters"))
        assert not pc.matches(descriptor(Particle, "force"))

    def test_max_args(self):
        pc = args(min_args=0, max_args=0)
        assert pc.matches(descriptor(Particle, "domove"))
        assert not pc.matches(descriptor(Particle, "force"))


class TestCombinators:
    def test_and_or_not(self):
        force_everywhere = call("force")
        in_particles = within(Particle)
        both = force_everywhere & in_particles
        either = force_everywhere | name("domove")
        neither = ~force_everywhere

        assert both.matches(descriptor(ChargedParticle, "force"))
        assert not both.matches(descriptor(Simulation, "force"))
        assert either.matches(descriptor(Particle, "domove"))
        assert neither.matches(descriptor(Particle, "domove"))
        assert not neither.matches(descriptor(Particle, "force"))

    def test_any_of_all_of_degenerate(self):
        assert isinstance(any_of(), NothingPointcut)
        assert isinstance(all_of(), EverythingPointcut)
        assert not any_of().matches(descriptor(Particle, "force"))
        assert all_of().matches(descriptor(Particle, "force"))

    def test_describe_strings(self):
        text = (call("a") & ~name("b")).describe()
        assert "a" in text and "b" in text


# -- property-based: combinator laws -----------------------------------------

_DESCRIPTORS = [
    descriptor(Particle, "force"),
    descriptor(Particle, "domove"),
    descriptor(ChargedParticle, "force"),
    descriptor(Simulation, "force"),
    descriptor(Simulation, "run_iters"),
    descriptor(Simulation, "annotated_region"),
]

_POINTCUTS = [
    call("force"),
    call("Particle.*"),
    within(Particle),
    annotated("parallel"),
    args(min_args=3),
    name("do*"),
    NothingPointcut(),
    EverythingPointcut(),
]


@settings(max_examples=200, deadline=None)
@given(
    a=st.sampled_from(_POINTCUTS),
    b=st.sampled_from(_POINTCUTS),
    d=st.sampled_from(_DESCRIPTORS),
)
def test_combinator_semantics_match_boolean_logic(a, b, d):
    assert (a & b).matches(d) == (a.matches(d) and b.matches(d))
    assert (a | b).matches(d) == (a.matches(d) or b.matches(d))
    assert (~a).matches(d) == (not a.matches(d))
    # De Morgan
    assert (~(a & b)).matches(d) == ((~a) | (~b)).matches(d)
    assert (~(a | b)).matches(d) == ((~a) & (~b)).matches(d)
