"""Shared pytest fixtures for the PyAOmpLib test suite."""

from __future__ import annotations

import pytest

from repro.runtime.backend import ThreadBackend, set_backend
from repro.runtime.config import RuntimeConfig, set_config
from repro.runtime.locks import global_locks
from repro.runtime.threadlocal import global_thread_locals
from repro.runtime.trace import TraceRecorder, set_global_recorder
from repro.tune import reset_tuner


@pytest.fixture(autouse=True)
def _clean_runtime_state():
    """Reset global runtime state around every test.

    Tests freely change the global configuration, backend, lock registry and
    trace recorder; this fixture guarantees isolation.
    """
    previous_backend = set_backend(ThreadBackend())
    previous_recorder = set_global_recorder(None)
    set_config(RuntimeConfig(num_threads=4, tracing=True, default_schedule="static_block", tune_cache=None))
    global_locks.clear()
    reset_tuner()
    yield
    set_backend(previous_backend)
    set_global_recorder(previous_recorder)
    set_config(RuntimeConfig())
    global_locks.clear()
    reset_tuner()
    # The thread-local store is keyed by object identity; dropping references
    # is enough, but clear defensively to keep memory bounded across the run.
    global_thread_locals._values.clear()  # noqa: SLF001 - test-only cleanup


@pytest.fixture
def recorder():
    """A trace recorder installed as the global recorder for the test."""
    rec = TraceRecorder()
    set_global_recorder(rec)
    yield rec
    set_global_recorder(None)
