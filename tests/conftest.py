"""Shared pytest fixtures for the PyAOmpLib test suite."""

from __future__ import annotations

import faulthandler
import sys
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

import repro.obs.registry as obs_registry
from repro.runtime.backend import ThreadBackend, set_backend
from repro.runtime.config import RuntimeConfig, set_config
from repro.runtime.locks import global_locks
from repro.runtime.threadlocal import global_thread_locals
from repro.runtime.trace import TraceRecorder, set_global_recorder
from repro.tune import reset_tuner


@pytest.fixture(autouse=True)
def _clean_runtime_state():
    """Reset global runtime state around every test.

    Tests freely change the global configuration, backend, lock registry and
    trace recorder; this fixture guarantees isolation.
    """
    previous_backend = set_backend(ThreadBackend())
    previous_recorder = set_global_recorder(None)
    set_config(RuntimeConfig(num_threads=4, tracing=True, default_schedule="static_block", tune_cache=None))
    global_locks.clear()
    reset_tuner()
    obs_registry.reset()
    yield
    set_backend(previous_backend)
    set_global_recorder(previous_recorder)
    set_config(RuntimeConfig())
    global_locks.clear()
    reset_tuner()
    # The thread-local store is keyed by object identity; dropping references
    # is enough, but clear defensively to keep memory bounded across the run.
    global_thread_locals._values.clear()  # noqa: SLF001 - test-only cleanup


#: wall-clock budget for watchdog-guarded scenarios (seconds); generous
#: compared to the expected runtimes (<2s each) but below the runtime's own
#: 120s barrier timeouts, so the watchdog reports first with a useful message.
WATCHDOG_TIMEOUT = 60.0


def run_with_watchdog(fn, timeout: float = WATCHDOG_TIMEOUT):
    """Run ``fn`` on a worker thread; fail the calling test if it hangs.

    The shared watchdog behind the stress tier and the nested-team
    conformance tests (marker ``nested``): a deadlocked or livelocked team —
    including an inner team of a team-of-teams — turns into a test failure
    with a stack dump instead of hanging tier-1.  The runtime's own barrier
    timeouts (:data:`repro.runtime.barrier.DEFAULT_BARRIER_TIMEOUT`,
    :data:`repro.runtime.shm.BARRIER_TIMEOUT`) are the backstop that
    eventually unblocks the abandoned worker thread.
    """
    pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="watchdog")
    future = pool.submit(fn)
    try:
        result = future.result(timeout=timeout)
    except FutureTimeoutError:  # pragma: no cover - only on deadlock/livelock
        faulthandler.dump_traceback(file=sys.stderr)
        pool.shutdown(wait=False)
        pytest.fail(f"scenario did not finish within {timeout}s (deadlock/livelock?)")
    pool.shutdown(wait=True)
    return result


@pytest.fixture
def watchdog():
    """The :func:`run_with_watchdog` helper as a fixture (stress + nested tests)."""
    return run_with_watchdog


@pytest.fixture
def recorder():
    """A trace recorder installed as the global recorder for the test."""
    rec = TraceRecorder()
    set_global_recorder(rec)
    yield rec
    set_global_recorder(None)
