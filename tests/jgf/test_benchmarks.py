"""Cross-version correctness tests for the JGF benchmark ports.

The key property for the reproduction: for every benchmark, the sequential
base program, the invasive JGF-MT parallelisation and the AOmp (aspect)
parallelisation produce the same results — the paper's claim that aspects
preserve program semantics while adding parallelism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.jgf import BENCHMARKS
from repro.runtime.trace import EventKind, TraceRecorder

TOLERANCE = 1e-6


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestAllBenchmarks:
    def test_threaded_matches_sequential(self, name):
        module = BENCHMARKS[name]
        sequential = module.run_sequential("tiny")
        threaded = module.run_threaded("tiny", num_threads=3)
        assert sequential.validates_against(threaded, TOLERANCE)

    def test_aomp_matches_sequential(self, name):
        module = BENCHMARKS[name]
        sequential = module.run_sequential("tiny")
        aomp = module.run_aomp("tiny", num_threads=3)
        assert sequential.validates_against(aomp, TOLERANCE)

    def test_aomp_single_thread_matches_sequential(self, name):
        """Sequential semantics: a team of one reproduces the sequential result."""
        module = BENCHMARKS[name]
        sequential = module.run_sequential("tiny")
        aomp = module.run_aomp("tiny", num_threads=1)
        assert sequential.validates_against(aomp, TOLERANCE)

    def test_aomp_leaves_kernel_unwoven(self, name):
        """After the AOmp driver finishes, the kernel class is back to sequential."""
        module = BENCHMARKS[name]
        module.run_aomp("tiny", num_threads=2)
        sequential = module.run_sequential("tiny")
        again = module.run_sequential("tiny")
        assert sequential.validates_against(again, 0.0) or sequential.validates_against(again, 1e-12)

    def test_info_declares_refactorings_and_abstractions(self, name):
        info = BENCHMARKS[name].INFO
        assert info.name == name
        assert len(info.refactorings) >= 1
        assert any("PR" in a for a in info.abstractions)

    def test_sizes_include_tiny_and_small(self, name):
        sizes = BENCHMARKS[name].SIZES
        assert "tiny" in sizes and "small" in sizes and "a" in sizes

    def test_aomp_records_trace(self, name):
        recorder = TraceRecorder()
        BENCHMARKS[name].run_aomp("tiny", num_threads=3, recorder=recorder)
        assert recorder.events(EventKind.REGION_BEGIN)
        assert recorder.events(EventKind.CHUNK)


class TestAdaptiveScheduleDrivers:
    """``schedule="auto"`` modes of the sor/sparse/moldyn drivers.

    The adaptive tuner may run any candidate (including the serial fallback)
    on any invocation, so these are the strongest semantics checks the drivers
    have: whatever it picks, results must match sequential — on every
    backend.  (Kernels that need a shared heap are routed to the process
    backend's thread fallback by the weaver, exactly like their default
    parallelisations.)
    """

    BENCH_NAMES = ("SOR", "Sparse", "MolDyn")

    @pytest.mark.parametrize("name", BENCH_NAMES)
    @pytest.mark.parametrize("backend_name", ("serial", "threads", "processes"))
    def test_auto_matches_sequential_on_every_backend(self, name, backend_name):
        from repro.runtime.backend import backend_by_name, set_backend

        module = BENCHMARKS[name]
        sequential = module.run_sequential("tiny")
        previous = set_backend(backend_by_name(backend_name))
        try:
            auto = module.run_aomp("tiny", num_threads=3, schedule="auto")
        finally:
            set_backend(previous)
        assert sequential.validates_against(auto, TOLERANCE)

    @pytest.mark.parametrize("name", BENCH_NAMES)
    def test_auto_single_thread_matches_sequential(self, name):
        module = BENCHMARKS[name]
        sequential = module.run_sequential("tiny")
        auto = module.run_aomp("tiny", num_threads=1, schedule="auto")
        assert sequential.validates_against(auto, TOLERANCE)

    @pytest.mark.parametrize("name", BENCH_NAMES)
    def test_auto_records_tune_decisions(self, name):
        recorder = TraceRecorder()
        BENCHMARKS[name].run_aomp("tiny", num_threads=3, recorder=recorder, schedule="auto")
        decisions = recorder.events(EventKind.TUNE_DECISION)
        assert decisions
        assert all(e.data["schedule"] for e in decisions)

    def test_sparse_row_loop_matches_nonzero_loop(self):
        """The row-range for method computes exactly what multiply_range does."""
        from repro.jgf.sparse.kernel import SparseMatmult

        by_nonzeros = SparseMatmult(64, 320, iterations=3)
        by_rows = SparseMatmult(64, 320, iterations=3)
        value_nz = by_nonzeros.run()
        value_rows = by_rows.run_rows()
        assert value_rows == pytest.approx(value_nz, abs=1e-12)
        assert np.allclose(by_rows.y, by_nonzeros.y)

    def test_sparse_row_pointers_cover_all_nonzeros(self):
        from repro.jgf.sparse.kernel import SparseMatmult

        kernel = SparseMatmult(64, 320)
        assert kernel.row_ptr[0] == 0
        assert kernel.row_ptr[-1] == kernel.nz
        assert all(
            int(kernel.row[k]) == r
            for r in range(kernel.n)
            for k in range(int(kernel.row_ptr[r]), int(kernel.row_ptr[r + 1]))
        )


class TestTaskloopDrivers:
    """The irregular case studies ported to taskloop (work-stealing tasks)."""

    BENCH_NAMES = ("RayTracer", "MonteCarlo")

    @pytest.mark.parametrize("name", BENCH_NAMES)
    @pytest.mark.parametrize("backend_name", ("serial", "threads", "processes"))
    def test_taskloop_matches_sequential_on_every_backend(self, name, backend_name):
        from repro.runtime.backend import backend_by_name, set_backend

        module = BENCHMARKS[name]
        sequential = module.run_sequential("tiny")
        previous = set_backend(backend_by_name(backend_name))
        try:
            tasked = module.run_aomp_taskloop("tiny", num_threads=3)
        finally:
            set_backend(previous)
        assert sequential.validates_against(tasked, TOLERANCE)
        assert tasked.mode == "aomp-taskloop"

    @pytest.mark.parametrize("name", BENCH_NAMES)
    def test_taskloop_single_thread_matches_sequential(self, name):
        module = BENCHMARKS[name]
        sequential = module.run_sequential("tiny")
        tasked = module.run_aomp_taskloop("tiny", num_threads=1)
        assert sequential.validates_against(tasked, TOLERANCE)

    @pytest.mark.parametrize("name", BENCH_NAMES)
    def test_taskloop_records_task_spawns_and_chunks(self, name):
        module = BENCHMARKS[name]
        recorder = TraceRecorder()
        module.run_aomp_taskloop("tiny", num_threads=3, recorder=recorder, grainsize=1)
        assert recorder.events(EventKind.REGION_BEGIN)
        assert recorder.events(EventKind.TASK_SPAWN)
        chunks = recorder.events(EventKind.CHUNK)
        assert chunks
        # Every tile appears exactly once across members.
        starts = sorted(e.data["start"] for e in chunks)
        assert starts == sorted(set(starts))

    @pytest.mark.parametrize("name", BENCH_NAMES)
    def test_taskloop_grainsize_controls_tile_count(self, name):
        module = BENCHMARKS[name]
        recorder = TraceRecorder()
        module.run_aomp_taskloop("tiny", num_threads=2, recorder=recorder, grainsize=2)
        chunks = recorder.events(EventKind.CHUNK)
        assert all(e.data["count"] <= 2 for e in chunks)


class TestSeriesDetails:
    def test_first_coefficients_are_stable(self):
        from repro.jgf.series.kernel import FourierSeries

        kernel = FourierSeries(8)
        kernel.run()
        pairs = kernel.reference_first_pairs()
        # a0 = (1/2) * integral of (x+1)^x over [0,2] = 2.88192 (scipy.quad reference).
        assert pairs[0][0] == pytest.approx(2.88192, rel=1e-3)
        assert pairs[0][1] == 0.0

    def test_invalid_size(self):
        from repro.jgf.series.kernel import FourierSeries

        with pytest.raises(ValueError):
            FourierSeries(1)


class TestCryptDetails:
    def test_round_trip_and_keys(self):
        from repro.jgf.crypt.kernel import CryptBenchmark, IDEACipher

        kernel = CryptBenchmark(8 * 16)
        kernel.run()
        assert kernel.validate()
        assert len(kernel.cipher.encrypt_keys) == IDEACipher.KEYS
        assert len(kernel.cipher.decrypt_keys) == IDEACipher.KEYS

    def test_encryption_changes_data(self):
        from repro.jgf.crypt.kernel import CryptBenchmark

        kernel = CryptBenchmark(8 * 16)
        kernel.run()
        assert not np.array_equal(kernel.plain, kernel.encrypted)

    def test_size_rounded_to_blocks(self):
        from repro.jgf.crypt.kernel import CryptBenchmark

        kernel = CryptBenchmark(13)
        assert kernel.size % 8 == 0

    def test_bad_key_rejected(self):
        from repro.jgf.crypt.kernel import IDEACipher

        with pytest.raises(ValueError):
            IDEACipher([1, 2, 3])


class TestLinpackDetails:
    def test_residual_small(self):
        from repro.jgf.lufact.kernel import Linpack

        kernel = Linpack(48)
        residual = kernel.run()
        assert residual < 20.0

    def test_solution_close_to_ones(self):
        from repro.jgf.lufact.kernel import Linpack

        kernel = Linpack(32)
        kernel.dgefa()
        solution = kernel.dgesl()
        assert np.allclose(solution, 1.0, atol=1e-6)

    def test_matches_numpy_solve(self):
        from repro.jgf.lufact.kernel import Linpack

        kernel = Linpack(24)
        dense = kernel.a_original.T.copy()
        rhs = kernel.b_original.copy()
        kernel.dgefa()
        solution = kernel.dgesl()
        assert np.allclose(solution, np.linalg.solve(dense, rhs), atol=1e-8)


class TestSorDetails:
    def test_relaxation_reduces_residual_vs_initial(self):
        from repro.jgf.sor.kernel import SORBenchmark

        kernel = SORBenchmark(24, iterations=8)
        before = kernel.grid.copy()
        kernel.run()
        assert not np.allclose(before, kernel.grid)

    def test_grid_size_validation(self):
        from repro.jgf.sor.kernel import SORBenchmark

        with pytest.raises(ValueError):
            SORBenchmark(2)


class TestSparseDetails:
    def test_matches_dense_reference(self):
        from repro.jgf.sparse.kernel import SparseMatmult

        kernel = SparseMatmult(32, 200, iterations=3)
        dense = np.zeros((32, 32))
        np.add.at(dense, (kernel.row, kernel.col), kernel.values)
        expected = np.zeros(32)
        for _ in range(3):
            expected += dense @ kernel.x
        kernel.run()
        assert np.allclose(kernel.y, expected, atol=1e-9)

    def test_row_blocks_never_split_rows(self):
        from repro.jgf.sparse.kernel import SparseMatmult

        kernel = SparseMatmult(64, 400, iterations=1)
        bounds = kernel.row_block_bounds(5)
        assert bounds[0][0] == 0 and bounds[-1][1] == kernel.nz
        for (start_a, end_a), (start_b, end_b) in zip(bounds, bounds[1:]):
            assert end_a == start_b
            if end_a < kernel.nz and end_a > 0:
                assert kernel.row[end_a - 1] != kernel.row[end_a]

    def test_nz_validation(self):
        from repro.jgf.sparse.kernel import SparseMatmult

        with pytest.raises(ValueError):
            SparseMatmult(100, 50)


class TestMolDynDetails:
    def test_energy_is_finite_and_negative(self):
        from repro.jgf.moldyn.kernel import MolDyn, fcc_particle_count

        kernel = MolDyn(fcc_particle_count(3), moves=2)
        value = kernel.runiters()
        assert np.isfinite(value)

    def test_momentum_roughly_conserved(self):
        from repro.jgf.moldyn.kernel import MolDyn, fcc_particle_count

        kernel = MolDyn(fcc_particle_count(3), moves=3)
        kernel.runiters()
        momentum = kernel.velocities.sum(axis=0)
        assert np.allclose(momentum, 0.0, atol=1e-8)

    def test_strategies_agree(self):
        from repro.jgf.moldyn import run_variant
        from repro.jgf.moldyn.kernel import MolDyn, fcc_particle_count

        n = fcc_particle_count(3)
        reference = MolDyn(n, moves=2).runiters()
        for strategy in ("jgf", "critical", "locks"):
            _, value = run_variant(strategy, n, num_threads=3, moves=2, lock_mode="exact")
            assert value == pytest.approx(reference, rel=1e-6)

    def test_unknown_strategy_rejected(self):
        from repro.jgf.moldyn import build_aspects

        with pytest.raises(ValueError):
            build_aspects("magic", 4)

    def test_locks_modelled_records_aggregate_acquisitions(self):
        from repro.jgf.moldyn import run_variant
        from repro.jgf.moldyn.kernel import fcc_particle_count

        recorder = TraceRecorder()
        run_variant("locks", fcc_particle_count(3), num_threads=2, moves=1, recorder=recorder, lock_mode="modelled")
        lock_events = recorder.events(EventKind.LOCK_ACQUIRE)
        assert lock_events
        assert all(e.data["count"] >= 1 for e in lock_events)

    def test_critical_strategy_records_serialisation(self):
        from repro.jgf.moldyn import run_variant
        from repro.jgf.moldyn.kernel import fcc_particle_count

        recorder = TraceRecorder()
        run_variant("critical", fcc_particle_count(3), num_threads=2, moves=1, recorder=recorder)
        assert recorder.events(EventKind.CRITICAL)


class TestMonteCarloDetails:
    def test_deterministic_per_run(self):
        from repro.jgf.montecarlo.kernel import MonteCarloPaths

        a = MonteCarloPaths(10)
        b = MonteCarloPaths(10)
        a.run()
        b.run()
        assert np.allclose(a.results, b.results)

    def test_results_are_reasonable_returns(self):
        from repro.jgf.montecarlo.kernel import MonteCarloPaths

        kernel = MonteCarloPaths(50)
        kernel.run()
        assert np.all(np.isfinite(kernel.results))
        assert abs(kernel.aggregate()) < 5.0


class TestRayTracerDetails:
    def test_image_has_lit_pixels(self):
        from repro.jgf.raytracer.kernel import RayTracer

        kernel = RayTracer(32)
        kernel.render()
        assert kernel.image.max() > 0.0
        assert kernel.checksum == pytest.approx(kernel.image_checksum())

    def test_small_image_rejected(self):
        from repro.jgf.raytracer.kernel import RayTracer

        with pytest.raises(ValueError):
            RayTracer(2)


class TestNestedWorksharingDrivers:
    """The collapse(2) LUFact and sectioned MolDyn ports (acceptance drivers)."""

    def test_lufact_collapse_identical_to_sequential_on_every_backend(self):
        from repro.jgf.lufact.parallel import run_collapse, run_sequential

        reference = run_sequential("tiny").value
        for backend in ("serial", "threads", "processes"):
            result = run_collapse("tiny", num_threads=4, backend=backend)
            # Bit-identical: the collapsed daxpy is elementwise, so 2D tiling
            # cannot change a single rounding.
            assert result.value == reference, backend
            assert result.details["valid"]

    @pytest.mark.parametrize("schedule", ["dynamic", "guided", "staticCyclic", "auto"])
    def test_lufact_collapse_identical_under_every_schedule(self, schedule):
        from repro.jgf.lufact.parallel import run_collapse, run_sequential

        reference = run_sequential("tiny").value
        result = run_collapse("tiny", num_threads=3, backend="threads", schedule=schedule)
        assert result.value == reference, schedule

    def test_lufact_collapse_auto_on_processes(self):
        from repro.jgf.lufact.parallel import run_collapse, run_sequential

        reference = run_sequential("tiny").value
        result = run_collapse("tiny", num_threads=3, backend="processes", schedule="auto")
        assert result.value == reference

    def test_moldyn_sections_match_sequential_on_every_backend(self):
        from repro.jgf.moldyn.parallel import run_sequential
        from repro.jgf.moldyn.sections import run_aomp_sections

        reference = run_sequential("tiny").value
        for backend in ("serial", "threads", "processes"):
            result = run_aomp_sections("tiny", num_threads=4, backend=backend)
            assert result.value == pytest.approx(reference, rel=1e-12), backend

    def test_moldyn_sections_auto_schedule(self):
        from repro.jgf.moldyn.parallel import run_sequential
        from repro.jgf.moldyn.sections import run_aomp_sections

        reference = run_sequential("tiny").value
        for backend in ("threads", "processes"):
            result = run_aomp_sections("tiny", num_threads=3, backend=backend, schedule="auto")
            assert result.value == pytest.approx(reference, rel=1e-12), backend

    def test_moldyn_sections_records_section_events(self):
        from repro.jgf.moldyn.sections import SectionedMolDyn
        from repro.runtime.team import parallel_region
        from repro.runtime.trace import set_global_recorder

        recorder = TraceRecorder()
        set_global_recorder(recorder)
        try:
            kernel = SectionedMolDyn(32, moves=1, num_sections=3)
            parallel_region(kernel.run_spmd, num_threads=2, name="sections-trace")
            events = recorder.events(EventKind.SECTION)
            assert sorted(e.data["index"] for e in events) == [0, 1, 2]
        finally:
            set_global_recorder(None)
