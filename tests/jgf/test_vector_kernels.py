"""Equivalence tests for the opt-in vectorised kernel path (``kernel="vector"``).

The vector bodies exist to release the GIL inside each work-sharing chunk;
their *contract* is numerical: chunk-shape independence (a vectorised serial
run and any chunked/parallel vectorised run are bit-identical) and agreement
with the paper-faithful pure-Python path within ``values_match`` tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.jgf.common import values_match
from repro.jgf.series import parallel as series
from repro.jgf.series.kernel import FourierSeries
from repro.jgf.sor import parallel as sor
from repro.jgf.sor.kernel import SORBenchmark
from repro.jgf.sparse import parallel as sparse
from repro.jgf.sparse.kernel import SparseMatmult


@pytest.mark.parametrize(
    "factory",
    [
        lambda kernel: FourierSeries(8, kernel=kernel),
        lambda kernel: SORBenchmark(8, kernel=kernel),
        lambda kernel: SparseMatmult(8, 16, kernel=kernel),
    ],
    ids=["series", "sor", "sparse"],
)
def test_unknown_kernel_name_rejected(factory):
    with pytest.raises(ValueError, match="unknown kernel"):
        factory("simd")


class TestSeriesVector:
    N = 64

    def test_matches_python_path(self):
        python = FourierSeries(self.N, kernel="python")
        vector = FourierSeries(self.N, kernel="vector")
        python.run()
        vector.run()
        assert np.allclose(python.coefficients, vector.coefficients, rtol=0, atol=1e-10)
        assert values_match(float(np.abs(python.coefficients).sum()), float(np.abs(vector.coefficients).sum()))

    def test_chunking_is_bitwise_invariant(self):
        whole = FourierSeries(self.N, kernel="vector")
        whole.run()
        chunked = FourierSeries(self.N, kernel="vector")
        chunked.compute_coefficients(0, 20, 1)
        chunked.compute_coefficients(20, 45, 1)
        chunked.compute_coefficients(45, self.N, 1)
        assert np.array_equal(np.asarray(whole.coefficients), np.asarray(chunked.coefficients))
        strided = FourierSeries(self.N, kernel="vector")
        strided.compute_coefficients(0, self.N, 2)
        strided.compute_coefficients(1, self.N, 2)
        assert np.array_equal(np.asarray(whole.coefficients), np.asarray(strided.coefficients))


class TestSORVector:
    N = 20

    def test_matches_python_path_bitwise(self):
        python = SORBenchmark(self.N, iterations=5, kernel="python")
        vector = SORBenchmark(self.N, iterations=5, kernel="vector")
        python.run()
        vector.run()
        # Same per-element arithmetic in the same order: exactly equal.
        assert np.array_equal(np.asarray(python.grid), np.asarray(vector.grid))

    def test_chunking_is_bitwise_invariant(self):
        whole = SORBenchmark(self.N, iterations=3, kernel="vector")
        whole.run()
        chunked = SORBenchmark(self.N, iterations=3, kernel="vector")
        for _ in range(3):
            # Red rows split across two step-2 chunks, then black likewise —
            # the shapes static worksharing would produce for a team of two.
            chunked.relax_rows(1, 9, 2)
            chunked.relax_rows(9, self.N - 1, 2)
            chunked.relax_rows(2, 10, 2)
            chunked.relax_rows(10, self.N - 1, 2)
        assert np.array_equal(np.asarray(whole.grid), np.asarray(chunked.grid))


class TestSparseVector:
    N, NZ = 60, 300

    def test_matches_python_path(self):
        python = SparseMatmult(self.N, self.NZ, iterations=3, kernel="python")
        vector = SparseMatmult(self.N, self.NZ, iterations=3, kernel="vector")
        python.run_rows()
        vector.run_rows()
        assert np.allclose(python.y, vector.y, rtol=0, atol=1e-10)
        assert values_match(python.total(), vector.total())

    def test_chunking_is_bitwise_invariant(self):
        whole = SparseMatmult(self.N, self.NZ, kernel="vector")
        whole.multiply_rows(0, self.N, 1)
        chunked = SparseMatmult(self.N, self.NZ, kernel="vector")
        chunked.multiply_rows(0, 17, 1)
        chunked.multiply_rows(17, 40, 1)
        chunked.multiply_rows(40, self.N, 1)
        assert np.array_equal(np.asarray(whole.y), np.asarray(chunked.y))

    def test_strided_path_matches_contiguous(self):
        whole = SparseMatmult(self.N, self.NZ, kernel="vector")
        whole.multiply_rows(0, self.N, 1)
        strided = SparseMatmult(self.N, self.NZ, kernel="vector")
        strided.multiply_rows(0, self.N, 2)
        strided.multiply_rows(1, self.N, 2)
        assert np.array_equal(np.asarray(whole.y), np.asarray(strided.y))

    def test_empty_rows_handled(self):
        # With nz == n and random row indices, collisions guarantee empty
        # rows (deterministic under the fixed default seed) — the reduceat
        # quirk this guards against: a zero-length segment would contribute
        # ``products[offset]`` instead of 0.
        python = SparseMatmult(50, 50, kernel="python")
        vector = SparseMatmult(50, 50, kernel="vector")
        counts = np.diff(python.row_ptr)
        assert (counts == 0).any(), "fixture must contain empty rows"
        python.multiply_rows(0, 50, 1)
        vector.multiply_rows(0, 50, 1)
        assert np.allclose(python.y, vector.y, rtol=0, atol=1e-12)
        # Rows with no non-zeros stay exactly zero.
        assert not np.asarray(vector.y)[counts == 0].any()


class TestVectorDrivers:
    """The ``kernel=`` knob through the benchmark drivers themselves."""

    @pytest.mark.parametrize("module", [series, sor, sparse], ids=["series", "sor", "sparse"])
    def test_sequential_vector_matches_python(self, module):
        python = module.run_sequential("tiny", kernel="python")
        vector = module.run_sequential("tiny", kernel="vector")
        assert values_match(python.value, vector.value)

    @pytest.mark.parametrize("module", [series, sor, sparse], ids=["series", "sor", "sparse"])
    def test_run_backend_vector_path(self, module):
        reference = module.run_sequential("tiny", kernel="vector")
        result = module.run_backend("tiny", num_threads=2, backend="threads", kernel="vector")
        assert result.details["kernel"] == "vector"
        assert values_match(result.value, reference.value)
