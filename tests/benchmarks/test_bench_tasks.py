"""Tier-1 smoke test: the task benchmark runs end-to-end and its JSON is schema-valid."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _validate_payload(payload: dict) -> None:
    assert payload["schema_version"] == 1
    assert payload["generated_by"] == "benchmarks/bench_tasks.py"
    assert payload["mode"] in ("smoke", "quick", "full")
    assert payload["tracing"] is False
    metrics = payload["metrics"]

    spawn = metrics["task_spawn"]
    assert spawn["tasks"] >= 1
    assert spawn["overhead_seconds_per_task"] >= 0.0

    loop = metrics["taskloop_dispatch"]
    # grainsize=1: exactly one task per iteration — the headline metric.
    assert loop["tasks"] == loop["iterations"]
    assert loop["overhead_seconds_per_task"] >= 0.0

    claims = metrics["steal_claim"]
    assert claims["seconds_per_local_claim"] > 0.0
    assert claims["seconds_per_steal"] > 0.0

    chain = metrics["dependency_chain"]
    assert chain["length"] >= 2
    assert chain["seconds_per_task"] > 0.0


def test_benchmark_runs_and_emits_schema_valid_json(tmp_path):
    output = tmp_path / "BENCH_tasks.json"
    result = subprocess.run(
        [sys.executable, "benchmarks/bench_tasks.py", "--mode", "smoke", "--json", "--output", str(output)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 0, f"benchmark failed:\n{result.stderr}"
    _validate_payload(json.loads(result.stdout))
    _validate_payload(json.loads(output.read_text()))


def test_check_bench_gate_passes_against_committed_reference():
    """The regression gate must be green on the committed BENCH_overhead.json."""
    result = subprocess.run(
        [sys.executable, "scripts/check_bench.py", "--mode", "smoke", "--runs", "2"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 0, f"gate failed:\n{result.stdout}\n{result.stderr}"
    assert "no construct regressed" in result.stdout
