"""Tier-1 smoke test: the tune benchmark runs end-to-end and its JSON is schema-valid."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _validate_payload(payload: dict) -> None:
    assert payload["schema_version"] == 1
    assert payload["generated_by"] == "benchmarks/bench_tune.py"
    assert payload["mode"] in ("smoke", "quick", "full")
    assert payload["tracing"] is False
    metrics = payload["metrics"]

    assert set(metrics["workloads"]) == {"uniform", "triangular", "random"}
    for name, workload in metrics["workloads"].items():
        assert workload["iterations"] >= 1, name
        assert workload["static_seconds"], name
        assert all(value > 0 for value in workload["static_seconds"].values()), name
        assert workload["best_static"]["seconds"] <= workload["worst_static"]["seconds"], name
        auto = workload["auto"]
        assert auto["seconds"] > 0, name
        assert auto["converged"] is True, name
        assert auto["invocations_to_converge"] >= 1, name
        assert workload["auto_vs_best_ratio"] > 0, name

    cache = metrics["cache"]
    assert cache["cache_file_written"] is True
    assert cache["cold_invocations"] >= 1
    # The headline persistence property: a warmed tuner reconverges in <= 2.
    assert cache["warm_invocations"] <= 2

    targets = metrics["targets"]
    assert set(targets) == {
        "uniform_within_10pct",
        "triangular_within_10pct",
        "random_speedup_vs_worst",
        "random_target_met",
        "cache_warm_within_2_invocations",
    }
    assert targets["cache_warm_within_2_invocations"] is True


def test_benchmark_runs_and_emits_schema_valid_json(tmp_path):
    output = tmp_path / "BENCH_tune.json"
    result = subprocess.run(
        [sys.executable, "benchmarks/bench_tune.py", "--mode", "smoke", "--json", "--output", str(output)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=240,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 0, f"benchmark failed:\n{result.stderr}"
    _validate_payload(json.loads(result.stdout))
    _validate_payload(json.loads(output.read_text()))
