"""Tier-1 smoke test: the overhead benchmark runs end-to-end and its JSON is schema-valid."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

REQUIRED_CHUNK_FIELDS = {
    "iterations",
    "chunks",
    "seconds_total",
    "baseline_seconds_total",
    "overhead_seconds_per_chunk",
}


def _validate_run_payload(payload: dict) -> None:
    assert payload["schema_version"] == 1
    assert payload["generated_by"] == "benchmarks/bench_overhead.py"
    assert payload["mode"] in ("smoke", "quick", "full")
    assert payload["tracing"] is False
    metrics = payload["metrics"]

    woven = metrics["woven_call"]
    for field in ("baseline_seconds_per_call", "woven_seconds_per_call", "overhead_seconds_per_call"):
        assert isinstance(woven[field], float) and woven[field] >= 0.0

    dispatch = metrics["chunk_dispatch"]
    assert set(dispatch) == {"static_block", "static_cyclic", "dynamic", "guided"}
    for schedule, row in dispatch.items():
        assert REQUIRED_CHUNK_FIELDS <= set(row), f"{schedule} missing fields"
        assert row["chunks"] >= 1
        assert row["overhead_seconds_per_chunk"] >= 0.0
    # Dynamic with chunk=1 dispatches one chunk per iteration — the headline metric.
    assert dispatch["dynamic"]["chunks"] == dispatch["dynamic"]["iterations"]

    assert metrics["barrier"]["seconds_per_barrier"] > 0.0
    assert metrics["critical"]["seconds_per_call"] > 0.0
    assert metrics["region_spawn"]["seconds_per_region"] > 0.0


def test_benchmark_runs_and_emits_schema_valid_json(tmp_path):
    output = tmp_path / "BENCH_overhead.json"
    result = subprocess.run(
        [sys.executable, "benchmarks/bench_overhead.py", "--smoke", "--json", "--output", str(output)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 0, f"benchmark failed:\n{result.stderr}"

    _validate_run_payload(json.loads(result.stdout))

    document = json.loads(output.read_text())
    assert set(document) == {"schema_version", "baseline", "current", "speedup_vs_baseline"}
    _validate_run_payload(document["current"])
    _validate_run_payload(document["baseline"])
    ratios = document["speedup_vs_baseline"]
    assert {"woven_call_overhead", "barrier", "critical", "region_spawn"} <= set(ratios)
    assert {f"chunk_dispatch.{s}" for s in ("static_block", "static_cyclic", "dynamic", "guided")} <= set(ratios)


def test_metrics_mode_measures_the_guard_site_cost():
    """``--metrics`` emits paired metrics-off/metrics-on suites plus deltas."""
    result = subprocess.run(
        [sys.executable, "benchmarks/bench_overhead.py", "--smoke", "--json", "--metrics"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 0, f"benchmark failed:\n{result.stderr}"
    payload = json.loads(result.stdout)
    assert set(payload) == {"metrics_off", "metrics_on", "metrics_added_seconds"}
    _validate_run_payload(payload["metrics_off"])
    _validate_run_payload(payload["metrics_on"])
    assert payload["metrics_off"]["metrics_enabled"] is False
    assert payload["metrics_on"]["metrics_enabled"] is True
    added = payload["metrics_added_seconds"]
    expected_keys = {f"chunk_dispatch.{s}" for s in ("static_block", "static_cyclic", "dynamic", "guided")}
    expected_keys |= {"barrier", "region_spawn"}
    assert set(added) == expected_keys
    assert all(isinstance(v, float) and v >= 0.0 for v in added.values())


def test_committed_document_carries_the_metrics_overhead_bound():
    """check_bench.py gates metrics-on cost against this documented bound."""
    document = json.loads((REPO_ROOT / "BENCH_overhead.json").read_text())
    section = document["metrics_overhead"]
    bound = section["bound_seconds_per_chunk"]
    assert isinstance(bound, float) and 0.0 < bound <= 1e-5
    measured = section["measured_seconds_added"]
    for key in ("static_block", "static_cyclic", "dynamic", "guided"):
        assert measured[f"chunk_dispatch.{key}"] <= bound


def test_committed_baseline_document_is_schema_valid():
    """The committed BENCH_overhead.json must stay loadable and well-formed.

    The ratios divide a preserved ``baseline`` section by a refreshable
    ``current`` section, which may have been measured on different hardware —
    so this test checks structure and sanity (finite, positive, not a trivial
    self-comparison), not a specific speedup.  The >= 3x dynamic-dispatch
    reduction this file originally recorded is documented in README.md.
    """
    committed = REPO_ROOT / "BENCH_overhead.json"
    assert committed.exists(), "BENCH_overhead.json missing from repo root"
    document = json.loads(committed.read_text())
    _validate_run_payload(document["baseline"])
    _validate_run_payload(document["current"])
    ratios = document["speedup_vs_baseline"]
    assert ratios, "speedup_vs_baseline section empty"
    for name, ratio in ratios.items():
        assert ratio > 0.0 and ratio != float("inf"), f"ratio {name} not sane: {ratio}"
    # Baseline must be a real measurement, not a copy of current.
    assert document["baseline"]["metrics"] != document["current"]["metrics"]
