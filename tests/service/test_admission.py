"""Admission control unit tests: bounds, caps, coalescing, cancellation.

These drive :class:`repro.service.admission.AdmissionQueue` directly —
no sockets, no dispatch threads — so every backpressure and fairness rule
is pinned at the layer that implements it.  The end-to-end behaviours ride
on top in ``test_service.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.admission import (
    CANCELLED,
    DONE,
    HISTORY_LIMIT,
    QUEUED,
    RUNNING,
    AdmissionQueue,
    Draining,
    QueueFull,
)
from repro.service.config import ServiceConfig
from repro.service.kernels import KERNELS


def make_queue(*, queue_limit: int = 4, tenant_cap: int = 2) -> AdmissionQueue:
    return AdmissionQueue(queue_limit=queue_limit, tenant_cap=tenant_cap)


def submit(queue: AdmissionQueue, *, tenant: str = "t", kernel: str = "series",
           params: "dict | None" = None, coalescable: bool = False):
    return queue.submit(
        tenant=tenant, kernel=kernel, params=params or {"size": "tiny"}, coalescable=coalescable
    )


class TestBackpressure:
    def test_submits_past_the_bound_are_rejected(self):
        queue = make_queue(queue_limit=2)
        submit(queue)
        submit(queue, params={"size": "small"})
        with pytest.raises(QueueFull, match="admission queue is full"):
            submit(queue, params={"size": "a"})

    def test_running_requests_do_not_count_against_the_bound(self):
        queue = make_queue(queue_limit=1)
        request, _ = submit(queue)
        assert queue.claim(timeout=0.1) is request  # now running, not waiting
        submit(queue, params={"size": "small"})  # the single waiting slot is free again

    def test_draining_rejects_all_new_work(self):
        queue = make_queue()
        queue.drain()
        with pytest.raises(Draining):
            submit(queue)

    def test_finish_frees_the_tenant_slot_and_wakes_idle_waiters(self):
        queue = make_queue(queue_limit=8)
        request, _ = submit(queue)
        assert queue.claim(timeout=0.1) is request
        done = threading.Event()

        def waiter():
            assert queue.wait_idle(timeout=5.0)
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        queue.finish(request, value=1.0, elapsed=0.01)
        thread.join(timeout=5.0)
        assert done.is_set()
        assert request.state == DONE


class TestTenantCap:
    def test_a_tenant_at_cap_is_skipped_in_favour_of_others(self):
        queue = make_queue(queue_limit=8, tenant_cap=1)
        first, _ = submit(queue, tenant="a")
        second, _ = submit(queue, tenant="a", params={"size": "small"})
        third, _ = submit(queue, tenant="b")
        assert queue.claim(timeout=0.1) is first
        # tenant "a" is at its cap of 1 — FIFO would pick `second`, fairness
        # dispatches tenant "b" past it.
        assert queue.claim(timeout=0.1) is third
        assert queue.claim(timeout=0.1) is None
        queue.finish(first, value=0.0)
        assert queue.claim(timeout=0.1) is second

    def test_snapshot_reports_running_by_tenant(self):
        queue = make_queue(queue_limit=8, tenant_cap=2)
        request, _ = submit(queue, tenant="acme")
        queue.claim(timeout=0.1)
        snap = queue.snapshot()
        assert snap["running_by_tenant"] == {"acme": 1}
        assert snap["tenant_cap"] == 2
        queue.finish(request, value=0.0)
        assert queue.snapshot()["running_by_tenant"] == {}


class TestCoalescing:
    def test_identical_coalescable_submits_share_the_leader(self):
        queue = make_queue()
        leader, coalesced = submit(queue, coalescable=True)
        follower, follower_coalesced = submit(queue, coalescable=True)
        assert not coalesced and follower_coalesced
        assert follower is leader
        assert leader.merged == 1
        assert queue.snapshot()["queued"] == 1  # one execution for two submits

    def test_different_params_do_not_coalesce(self):
        queue = make_queue()
        leader, _ = submit(queue, coalescable=True)
        other, coalesced = submit(queue, coalescable=True, params={"size": "small"})
        assert other is not leader and not coalesced

    def test_non_coalescable_submissions_never_merge(self):
        queue = make_queue()
        first, _ = submit(queue)
        second, coalesced = submit(queue)
        assert second is not first and not coalesced

    def test_a_cancel_requested_leader_stops_attracting_followers(self):
        queue = make_queue()
        leader, _ = submit(queue, coalescable=True)
        assert queue.claim(timeout=0.1) is leader
        queue.cancel(leader.id)
        fresh, coalesced = submit(queue, coalescable=True)
        assert fresh is not leader and not coalesced

    def test_a_finished_leader_stops_attracting_followers(self):
        queue = make_queue()
        leader, _ = submit(queue, coalescable=True)
        queue.claim(timeout=0.1)
        queue.finish(leader, value=42.0)
        fresh, coalesced = submit(queue, coalescable=True)
        assert fresh is not leader and not coalesced


class TestCancellation:
    def test_cancel_queued_is_immediate(self):
        queue = make_queue()
        request, _ = submit(queue)
        assert request.state == QUEUED
        assert queue.cancel(request.id) == CANCELLED
        assert request.state == CANCELLED
        assert queue.claim(timeout=0.1) is None  # removed from the queue

    def test_cancel_running_marks_and_invokes_the_abort_hook(self):
        queue = make_queue()
        request, _ = submit(queue)
        queue.claim(timeout=0.1)
        aborted = []
        assert queue.cancel(request.id, abort_running=aborted.append) == "cancelling"
        assert request.cancel_requested
        assert aborted == [request]
        assert request.state == RUNNING  # the dispatch worker records the final state
        queue.finish(request, cancelled=True)
        assert request.state == CANCELLED

    def test_cancel_unknown_and_finished(self):
        queue = make_queue()
        assert queue.cancel("r-999") == "unknown"
        request, _ = submit(queue)
        queue.claim(timeout=0.1)
        queue.finish(request, value=0.0)
        assert queue.cancel(request.id) == DONE  # already finished: reported, not re-cancelled


class TestHistory:
    def test_finished_requests_stay_pollable(self):
        queue = make_queue()
        request, _ = submit(queue)
        queue.claim(timeout=0.1)
        queue.finish(request, value=3.5, elapsed=0.2)
        fetched = queue.get(request.id)
        assert fetched is request
        payload = fetched.payload()
        assert payload["status"] == DONE and payload["value"] == 3.5

    def test_history_is_trimmed_but_live_requests_survive(self):
        queue = make_queue(queue_limit=HISTORY_LIMIT + 16)
        keeper, _ = submit(queue, tenant="keeper")
        for index in range(HISTORY_LIMIT + 8):
            request, _ = submit(queue, tenant=f"t{index}")
            queue.claim(timeout=0.1)
            queue.finish(request, value=0.0)
        assert queue.get(keeper.id) is keeper  # queued request outlives the trim
        snap = queue.snapshot()
        total = sum(snap["requests_by_state"].values())
        assert total <= HISTORY_LIMIT + 1

    def test_trim_drops_stale_coalesce_keys(self):
        queue = make_queue(queue_limit=HISTORY_LIMIT + 16)
        leader, _ = submit(queue, coalescable=True)
        queue.claim(timeout=0.1)
        queue.finish(leader, value=0.0)
        for index in range(HISTORY_LIMIT + 8):
            request, _ = submit(queue, tenant=f"t{index}")
            queue.claim(timeout=0.1)
            queue.finish(request, value=0.0)
        # the leader was trimmed; a new identical submission starts fresh
        fresh, coalesced = submit(queue, coalescable=True)
        assert fresh is not leader and not coalesced


class TestServiceConfig:
    def test_defaults_are_sane(self):
        config = ServiceConfig()
        assert config.host == "127.0.0.1"
        assert config.port == 0
        assert config.workers >= 1
        assert config.queue_limit >= 1
        assert config.tenant_cap >= 1

    def test_with_overrides_returns_a_new_frozen_snapshot(self):
        config = ServiceConfig()
        tuned = config.with_overrides(port=9465, workers=3)
        assert (tuned.port, tuned.workers) == (9465, 3)
        assert config.port == 0  # original untouched
        with pytest.raises(Exception):
            tuned.port = 1  # frozen


class TestKernelCatalogue:
    def test_catalogue_covers_the_jgf_drivers_plus_sleep(self):
        assert set(KERNELS) == {"series", "crypt", "sor", "sparse", "sleep"}

    def test_descriptions_are_wire_safe(self):
        import json

        json.dumps([kernel.describe() for kernel in KERNELS.values()])

    def test_series_run_matches_its_reference(self):
        kernel = KERNELS["series"]
        outcome = kernel.run(size="tiny", num_threads=2, backend="threads")
        assert outcome["value"] == pytest.approx(kernel.reference("tiny"))
        assert outcome["elapsed"] > 0

    def test_only_deterministic_kernels_advertise_coalescing(self):
        assert not KERNELS["sleep"].deterministic
        assert all(KERNELS[name].deterministic for name in ("series", "crypt", "sor", "sparse"))
