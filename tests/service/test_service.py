"""End-to-end compute-service tests: real sockets, real teams, real scrapes.

Each test starts a :class:`repro.service.server.ServiceThread` on an
ephemeral port and drives it through :class:`ServiceClient` sockets — the
same wire path ``scripts/aomp_serve.py`` serves.  Failure paths are asserted
against team/pool state (no leaked workers, clean drains), not just wire
responses.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.request

import pytest

import repro.obs.exposition as expo
from repro.runtime import shm
from repro.runtime.config import config_override
from repro.service.client import ServiceClient, ServiceError
from repro.service.kernels import KERNELS
from repro.service.server import ServiceThread

requires_fork = pytest.mark.skipif(not shm.fork_available(), reason="process scenarios need fork")


@pytest.fixture
def service():
    """A running threads-backend service; drained (if still up) at teardown."""
    threads = [None]

    def start(**overrides) -> ServiceThread:
        defaults = dict(
            backend="threads", workers=2, port=0, queue_limit=8, tenant_cap=2, tune_dir=None
        )
        defaults.update(overrides)
        thread = ServiceThread(**defaults)
        thread.start()
        threads[0] = thread
        return thread

    yield start
    thread = threads[0]
    if thread is not None and not thread.service._drained.is_set():
        thread.drain()


def client_for(thread: ServiceThread) -> ServiceClient:
    host, port = thread.address
    return ServiceClient(host, port, timeout=60.0)


class TestProtocol:
    def test_ping_kernels_and_error_codes(self, service):
        thread = service()
        with client_for(thread) as client:
            assert client.ping()["pong"] is True
            names = {entry["name"] for entry in client.kernels()}
            assert names == set(KERNELS)
            with pytest.raises(ServiceError) as excinfo:
                client.call("warp")
            assert excinfo.value.code == "unknown_op"
            with pytest.raises(ServiceError) as excinfo:
                client.submit("linpack")
            assert excinfo.value.code == "unknown_kernel"
            with pytest.raises(ServiceError) as excinfo:
                client.poll("r-404")
            assert excinfo.value.code == "not_found"

    def test_malformed_json_gets_an_error_not_a_hangup(self, service):
        thread = service()
        host, port = thread.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response == {"ok": False, "error": "request is not valid JSON", "code": "bad_json"}

    def test_submit_poll_roundtrip(self, service):
        thread = service()
        with client_for(thread) as client:
            submitted = client.submit("series", size="tiny", num_threads=2)
            assert submitted["status"] in ("queued", "running")
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                polled = client.poll(submitted["id"])
                if polled["status"] == "done":
                    break
                time.sleep(0.05)
            assert polled["status"] == "done"
            assert polled["value"] == pytest.approx(KERNELS["series"].reference("tiny"))


class TestConcurrentClients:
    def test_four_clients_get_serial_identical_results(self, service):
        thread = service(workers=2, queue_limit=32)
        jobs = [("series", "tiny"), ("sor", "tiny"), ("sparse", "tiny"), ("crypt", "tiny")]
        results: "list[tuple[str, object]]" = []
        failures: "list[BaseException]" = []

        def one_client(kernel: str, size: str) -> None:
            try:
                with client_for(thread) as client:
                    response = client.submit(
                        kernel, size=size, num_threads=2, wait=True, timeout=60, coalesce=False
                    )
                    assert response["status"] == "done", response
                    results.append((kernel, response["value"]))
            except BaseException as exc:  # surfaced by the main thread
                failures.append(exc)

        workers = [threading.Thread(target=one_client, args=job) for job in jobs]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=90)
        assert not failures, failures
        assert len(results) == len(jobs)
        for kernel, value in results:
            assert value == pytest.approx(KERNELS[kernel].reference("tiny")), kernel

    def test_coalesced_submissions_share_one_result(self, service):
        thread = service()
        with client_for(thread) as first, client_for(thread) as second:
            leader = first.submit("series", size="tiny", num_threads=2)
            follower = second.submit("series", size="tiny", num_threads=2)
            assert follower["id"] == leader["id"]
            assert follower["coalesced"] is True
            done = first.wait(leader["id"], timeout=60)
            assert done["status"] == "done"
            assert done["merged"] >= 1


class TestBackpressure:
    def test_queue_full_rejection_is_loud_and_recoverable(self, service):
        thread = service(workers=1, queue_limit=2, tenant_cap=1)
        with client_for(thread) as client:
            # one running + two queued fills the worker and the wait queue
            ids = [
                client.submit("sleep", size="small", num_threads=2, coalesce=False)["id"]
                for _ in range(3)
            ]
            with pytest.raises(ServiceError) as excinfo:
                client.submit("sleep", size="small", num_threads=2, coalesce=False)
            assert excinfo.value.code == "queue_full"
            for request_id in ids:
                client.cancel(request_id)
            # the queue drains; new work is admitted again
            done = client.submit("series", size="tiny", num_threads=2, wait=True, timeout=60)
            assert done["status"] == "done"

    def test_stats_op_reports_queue_shape(self, service):
        thread = service(queue_limit=8, tenant_cap=2)
        with client_for(thread) as client:
            stats = client.stats()
            assert stats["service"]["queue_limit"] == 8
            assert stats["service"]["tenant_cap"] == 2
            assert stats["workers"] == 2
            assert stats["service"]["draining"] is False


class TestCancellation:
    def test_cancel_in_flight_aborts_the_team_promptly(self, service):
        thread = service(workers=1)
        with client_for(thread) as client:
            # ~5s of work-shared sleeping on a 2-member team
            request_id = client.submit("sleep", size="a", num_threads=2, coalesce=False)["id"]
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.poll(request_id)["status"] == "running":
                    break
                time.sleep(0.02)
            cancelled = client.cancel(request_id)
            assert cancelled["status"] in ("cancelling", "cancelled")
            began = time.monotonic()
            final = client.wait(request_id, timeout=30)
            assert final["status"] == "cancelled"
            # the abort-aware claim loop unwinds within a batch, not the
            # remaining ~5s of the loop
            assert time.monotonic() - began < 3.0
            assert final["error_code"] == "cancelled"
            # the worker is healthy again: the next request completes
            done = client.submit("series", size="tiny", num_threads=2, wait=True, timeout=60)
            assert done["status"] == "done"

    def test_cancel_queued_never_runs(self, service):
        thread = service(workers=1, tenant_cap=1, queue_limit=8)
        with client_for(thread) as client:
            running = client.submit("sleep", size="small", num_threads=2, coalesce=False)["id"]
            queued = client.submit("series", size="tiny", coalesce=False)["id"]
            assert client.cancel(queued)["status"] == "cancelled"
            assert client.poll(queued)["status"] == "cancelled"
            client.cancel(running)


class TestClientDisconnect:
    def test_disconnect_mid_wait_leaves_the_request_running(self, service):
        thread = service(workers=1)
        with client_for(thread) as submitter:
            request_id = submitter.submit("sleep", size="small", num_threads=2, coalesce=False)["id"]
        # a second connection starts a blocking wait, then drops mid-wait
        host, port = thread.address
        waiter = socket.create_connection((host, port), timeout=10)
        waiter.sendall((json.dumps({"op": "wait", "id": request_id}) + "\n").encode())
        time.sleep(0.2)
        waiter.close()
        # the request is unaffected: pollable and completing from a fresh socket
        with client_for(thread) as observer:
            final = observer.wait(request_id, timeout=60)
        assert final["status"] == "done"
        assert final["value"] == pytest.approx(KERNELS["sleep"].reference("small"))


class TestDrain:
    def test_drain_with_inflight_work_finishes_it_first(self, service):
        thread = service(workers=1, drain_timeout=30.0)
        with client_for(thread) as client:
            request_id = client.submit("sleep", size="small", num_threads=2, coalesce=False)["id"]
            time.sleep(0.2)  # ensure it is in flight when the drain starts
        result = thread.drain()
        assert result["drained"] is True and result["forced_cancels"] == 0
        request = thread.service.queue.get(request_id)
        assert request is not None and request.state == "done"
        self._assert_clean(thread)

    def test_drain_past_its_timeout_cancels_stragglers(self, service):
        thread = service(workers=1, drain_timeout=0.2)
        with client_for(thread) as client:
            request_id = client.submit("sleep", size="a", num_threads=2, coalesce=False)["id"]
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.poll(request_id)["status"] == "running":
                    break
                time.sleep(0.02)
        began = time.monotonic()
        result = thread.drain()
        assert result["drained"] is True and result["forced_cancels"] == 1
        assert time.monotonic() - began < 15.0  # not the ~5s loop plus margins
        request = thread.service.queue.get(request_id)
        assert request is not None and request.state == "cancelled"
        self._assert_clean(thread)

    def test_drain_rejects_new_submissions(self, service):
        thread = service()
        with client_for(thread) as client:
            client.submit("series", size="tiny", wait=True, timeout=60)
        thread.drain()
        assert thread.service.queue.draining
        from repro.service.admission import Draining

        with pytest.raises(Draining) as excinfo:
            thread.service.queue.submit(tenant="late", kernel="series", params={"size": "tiny"})
        assert excinfo.value.code == "draining"

    @staticmethod
    def _assert_clean(thread: ServiceThread) -> None:
        """Post-drain invariants: no dispatch threads, no pool processes."""
        assert thread.service.dispatch.leaked_workers() == []
        for worker in thread.service.dispatch.workers:
            assert not worker.is_alive()


class TestMetricsScrape:
    def test_counters_and_latency_surface_on_a_real_scrape(self, service):
        with config_override(metrics=True, metrics_port=0):
            thread = service(workers=2)
            port = thread.service.metrics_port
            assert port and port > 0
            try:
                with client_for(thread) as client:
                    assert client.stats()["metrics_port"] == port
                    for _ in range(3):
                        done = client.submit(
                            "series", size="tiny", num_threads=2, wait=True,
                            timeout=60, coalesce=False,
                        )
                        assert done["status"] == "done"
                    with pytest.raises(ServiceError):
                        client.poll("r-404")  # not a lifecycle metric; sanity only
                    url = f"http://127.0.0.1:{port}/metrics"
                    with urllib.request.urlopen(url, timeout=10) as response:
                        body = response.read().decode("utf-8")
                assert 'aomp_service_requests_total{event="accepted"} 3' in body
                assert 'aomp_service_requests_total{event="completed"} 3' in body
                assert "aomp_service_request_seconds_count 3" in body
                assert "aomp_service_queue_depth 0" in body
                assert "aomp_service_workers 2" in body
            finally:
                thread.drain()
                expo.stop_exporter()
        # the drain unregistered the service's gauge collector
        rendered = expo.render_prometheus()
        assert "aomp_service_queue_depth" not in rendered


@requires_fork
class TestProcessBackendService:
    def test_warm_pool_serves_and_drains_without_leaks(self, service):
        thread = service(backend="processes", workers=1, num_threads=2)
        worker = thread.service.dispatch.workers[0]
        pool = getattr(worker.backend, "_pool", None)
        assert pool is not None and pool.healthy  # pre-spawned at start
        with client_for(thread) as client:
            for _ in range(2):  # second request reuses the warm pool
                done = client.submit(
                    "crypt", size="tiny", num_threads=2, wait=True, timeout=120, coalesce=False
                )
                assert done["status"] == "done"
                assert done["value"] == pytest.approx(KERNELS["crypt"].reference("tiny"))
        assert worker.backend._pool is pool  # same pool instance: no respawn churn
        thread.drain()
        assert thread.service.dispatch.leaked_workers() == []
