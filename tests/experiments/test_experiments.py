"""Tests for the experiment drivers (Figure 13, Table 2, Figure 15)."""

from __future__ import annotations

import pytest

from repro.experiments import figure13, figure15, table2
from repro.experiments.harness import (
    aspect_interception_cost,
    calibrate_cost_model_from_trace,
    count_advice_activations,
    estimate_jgf_and_aomp,
)
from repro.jgf import BENCHMARKS
from repro.perf.machines import INTEL_I7
from repro.runtime.config import config_override
from repro.runtime.trace import TraceRecorder


class TestHarness:
    def test_calibration_builds_loop_costs(self):
        recorder = TraceRecorder()
        with config_override(num_threads=1):
            BENCHMARKS["Series"].run_aomp("tiny", num_threads=1, recorder=recorder)
        model = calibrate_cost_model_from_trace(recorder)
        assert model.loops
        for cost in model.loops.values():
            assert cost.seconds_per_unit > 0

    def test_interception_cost_positive_and_cached(self):
        first = aspect_interception_cost(samples=2000)
        second = aspect_interception_cost(samples=2000)
        assert first > 0
        assert first == second

    def test_estimate_jgf_and_aomp_ordering(self):
        recorder = TraceRecorder()
        with config_override(num_threads=1):
            BENCHMARKS["Series"].run_aomp("tiny", num_threads=1, recorder=recorder)
        cost_model = calibrate_cost_model_from_trace(recorder)
        parallel = TraceRecorder()
        BENCHMARKS["Series"].run_aomp("tiny", num_threads=4, recorder=parallel)
        estimate = estimate_jgf_and_aomp("Series", parallel, cost_model, INTEL_I7, 4)
        assert estimate.aomp.speedup <= estimate.jgf.speedup
        assert estimate.relative_difference >= 0.0
        assert count_advice_activations(parallel) > 0


class TestFigure13:
    @pytest.fixture(scope="class")
    def report(self):
        return figure13.run(size="tiny", benchmarks=["Series", "SOR"])

    def test_report_covers_both_machines_and_styles(self, report):
        configurations = report.configurations()
        assert any(c.startswith("JGF i7") for c in configurations)
        assert any(c.startswith("AOmp xeon") for c in configurations)
        assert set(report.benchmarks()) == {"Series", "SOR"}

    def test_speedups_are_positive_and_bounded(self, report):
        for entry in report.entries:
            assert 0 < entry["speedup"] <= entry["threads"]

    def test_aomp_close_to_jgf(self, report):
        """The headline Figure 13 claim: AOmp tracks the hand-written version."""
        for benchmark in report.benchmarks():
            for machine_key in ("i7-8threads", "xeon-24threads"):
                jgf = report.speedup(f"JGF {machine_key}", benchmark)
                aomp = report.speedup(f"AOmp {machine_key}", benchmark)
                assert aomp <= jgf + 1e-9
                assert (jgf - aomp) / jgf < 0.10  # tiny workloads; < 1% at realistic sizes

    def test_embarrassingly_parallel_scales_better_than_memory_bound(self, report):
        """Series must out-scale SOR on the big machine (the paper's locality remark)."""
        assert report.speedup("JGF xeon-24threads", "Series") > report.speedup("JGF xeon-24threads", "SOR")

    def test_paper_reference_values_present(self):
        assert figure13.PAPER_REPORTED[("Series", "xeon-24threads")] > figure13.PAPER_REPORTED[("LUFact", "xeon-24threads")]


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2.run(num_threads=4)

    def test_all_benchmarks_present(self, rows):
        assert {row.benchmark for row in rows} == set(BENCHMARKS)

    def test_every_row_has_region_and_loop(self, rows):
        for row in rows:
            assert "PR" in row.abstractions
            assert "FOR" in row.abstractions or "CS" in row.abstractions

    def test_schedules_match_paper(self, rows):
        by_name = {row.benchmark: row for row in rows}
        assert "FOR(block)" in by_name["Crypt"].abstractions
        assert "FOR(cyclic)" in by_name["MonteCarlo"].abstractions
        assert "FOR(cyclic)" in by_name["RayTracer"].abstractions
        assert "CS" in by_name["Sparse"].abstractions
        assert "2xTLF" in by_name["MolDyn"].abstractions
        assert "4xBR" in by_name["LUFact"].abstractions and "2xMA" in by_name["LUFact"].abstractions

    def test_refactorings_match_paper(self, rows):
        for row in rows:
            assert row.refactorings.replace(" ", "") == row.paper_refactorings.replace(" ", "")

    def test_table_renders(self, rows):
        text = table2.to_table(rows)
        assert "MolDyn" in text and "paper abstractions" in text


class TestFigure15:
    @pytest.fixture(scope="class")
    def calibration(self):
        return figure15.calibrate(neighbour_sample_particles=256)

    @pytest.fixture(scope="class")
    def report(self, calibration):
        return figure15.run(calibration=calibration)

    def test_report_has_all_points(self, report):
        assert len(report.entries) == len(figure15.STRATEGIES) * len(figure15.PAPER_PARTICLE_COUNTS) * len(
            figure15.PAPER_THREAD_COUNTS
        )

    def test_speedups_bounded_by_threads(self, report):
        for entry in report.entries:
            assert 0 < entry["speedup"] <= entry["threads"] + 1e-9

    def test_locks_beat_jgf_at_12_threads_for_large_sizes(self, report):
        """Paper: 'a lock per particle provides better performance than the JGF base implementation for 12 threads'."""
        for particles in ("256000", "500000"):
            locks = report.speedup("locks-12threads", particles)
            jgf = report.speedup("jgf-12threads", particles)
            assert locks > jgf

    def test_critical_best_for_largest_sizes_at_4_threads(self, report):
        """Paper: 'for larger number of particles (256k and 500k) and a small number of threads the critical region approach is the best strategy'."""
        for particles in ("500000",):
            critical = report.speedup("critical-4threads", particles)
            assert critical >= report.speedup("jgf-4threads", particles)
            assert critical >= report.speedup("locks-4threads", particles)

    def test_critical_does_not_scale_to_12_threads(self, report):
        """Serialisation keeps the critical variant far from ideal at 12 threads."""
        assert report.speedup("critical-12threads", "8788") < 8.0

    def test_jgf_competitive_at_reference_size(self, report):
        """At the JGF reference size (8788) the thread-local variant is competitive at 4 threads."""
        assert report.speedup("jgf-4threads", "8788") > 3.0

    def test_calibration_measures_neighbours(self, calibration):
        assert calibration.average_neighbours > 0
        assert calibration.seconds_per_pair > 0

    def test_python_calibration_source(self):
        calibration = figure15.calibrate(neighbour_sample_particles=108, source="python")
        assert calibration.seconds_per_update > 0
        with pytest.raises(ValueError):
            figure15.calibrate(source="nope")

    def test_unknown_strategy_rejected(self, calibration):
        with pytest.raises(ValueError):
            figure15.build_scenario("magic", 864, 4, calibration)
