"""Unit and property-based tests for the loop schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.exceptions import SchedulingError
from repro.runtime.scheduler import (
    DynamicScheduler,
    GuidedScheduler,
    LoopChunk,
    Schedule,
    StaticBlockScheduler,
    StaticCyclicScheduler,
    make_scheduler,
    parse_schedule_spec,
)


def expand(chunks):
    """Expand a list of LoopChunk into the explicit iteration indices."""
    indices = []
    for chunk in chunks:
        indices.extend(chunk.indices())
    return indices


class TestLoopChunk:
    def test_count_simple(self):
        assert LoopChunk(0, 10, 1).count == 10
        assert LoopChunk(0, 10, 3).count == 4
        assert LoopChunk(5, 5, 1).count == 0
        assert LoopChunk(10, 0, 1).count == 0

    def test_count_negative_step(self):
        assert LoopChunk(10, 0, -1).count == 10
        assert LoopChunk(10, 0, -3).count == 4

    def test_zero_step_rejected(self):
        with pytest.raises(SchedulingError):
            LoopChunk(0, 10, 0).count

    def test_indices_match_range(self):
        chunk = LoopChunk(3, 17, 2)
        assert list(chunk.indices()) == list(range(3, 17, 2))
        assert chunk.count == len(list(chunk.indices()))

    def test_is_empty(self):
        assert LoopChunk(4, 4, 1).is_empty()
        assert not LoopChunk(4, 5, 1).is_empty()


class TestSchedule:
    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("staticBlock", Schedule.STATIC_BLOCK),
            ("static", Schedule.STATIC_BLOCK),
            ("block", Schedule.STATIC_BLOCK),
            ("staticCyclic", Schedule.STATIC_CYCLIC),
            ("cyclic", Schedule.STATIC_CYCLIC),
            ("dynamic", Schedule.DYNAMIC),
            ("guided", Schedule.GUIDED),
            (Schedule.DYNAMIC, Schedule.DYNAMIC),
        ],
    )
    def test_parse_aliases(self, alias, expected):
        assert Schedule.parse(alias) is expected

    def test_parse_unknown(self):
        with pytest.raises(SchedulingError):
            Schedule.parse("round-robin")

    def test_parse_unknown_lists_valid_names(self):
        """The error must name every valid schedule so the fix is self-evident."""
        with pytest.raises(SchedulingError) as excinfo:
            Schedule.parse("round-robin")
        message = str(excinfo.value)
        assert "'round-robin'" in message
        for member in Schedule:
            assert member.value in message
        assert "staticblock" in message  # aliases are listed too

    def test_parse_non_string_rejected_with_valid_names(self):
        with pytest.raises(SchedulingError) as excinfo:
            Schedule.parse(42)
        message = str(excinfo.value)
        assert "int" in message
        for member in Schedule:
            assert member.value in message

    def test_factory_returns_right_types(self):
        assert isinstance(make_scheduler("staticBlock"), StaticBlockScheduler)
        assert isinstance(make_scheduler("staticCyclic"), StaticCyclicScheduler)
        assert isinstance(make_scheduler("dynamic"), DynamicScheduler)
        assert isinstance(make_scheduler("guided"), GuidedScheduler)

    @pytest.mark.parametrize("alias", ["auto", "AUTO", "adaptive"])
    def test_parse_auto_aliases(self, alias):
        assert Schedule.parse(alias) is Schedule.AUTO

    def test_make_scheduler_auto_raises_pointed_error(self):
        """'auto' has no standalone scheduler; the error must say where it lives."""
        with pytest.raises(SchedulingError) as excinfo:
            make_scheduler("auto")
        message = str(excinfo.value)
        assert "auto" in message
        assert "tuner" in message
        # Every concrete alternative is named so the fix is self-evident.
        for member in Schedule:
            if member is not Schedule.AUTO:
                assert member.value in message

    def test_parse_schedule_spec_with_chunk(self):
        assert parse_schedule_spec("dynamic,4") == (Schedule.DYNAMIC, 4)
        assert parse_schedule_spec("guided") == (Schedule.GUIDED, None)
        assert parse_schedule_spec("auto") == (Schedule.AUTO, None)
        assert parse_schedule_spec(Schedule.STATIC_CYCLIC) == (Schedule.STATIC_CYCLIC, None)
        with pytest.raises(SchedulingError):
            parse_schedule_spec("dynamic,zero")
        with pytest.raises(SchedulingError):
            parse_schedule_spec("dynamic,0")


class TestScheduleSpecHardening:
    """Environment-shaped specs (``OMP_SCHEDULE`` style) parse leniently on
    form, strictly on content — malformed specs fail naming the valid forms
    instead of half-applying."""

    def test_whitespace_and_case_accepted(self):
        assert parse_schedule_spec("  DYNAMIC , 4 ") == (Schedule.DYNAMIC, 4)
        assert parse_schedule_spec("Guided") == (Schedule.GUIDED, None)
        assert parse_schedule_spec("STATIC-BLOCK") == (Schedule.STATIC_BLOCK, None)
        assert parse_schedule_spec("\tcyclic,8\n") == (Schedule.STATIC_CYCLIC, 8)

    @pytest.mark.parametrize(
        "spec,detail",
        [
            ("dynamic,", "trailing comma"),
            ("dynamic,4,8", "too many comma-separated fields"),
            ("dynamic,four", "chunk must be an integer"),
            ("dynamic,0", "chunk must be >= 1"),
            ("dynamic,-3", "chunk must be >= 1"),
        ],
    )
    def test_malformed_specs_name_the_valid_forms(self, spec, detail):
        with pytest.raises(SchedulingError) as excinfo:
            parse_schedule_spec(spec)
        message = str(excinfo.value)
        assert detail in message
        # Every error teaches the fix: the spec grammar and the valid kinds.
        assert 'expected "kind" or "kind,chunk"' in message
        assert "valid kinds" in message

    @settings(max_examples=200, deadline=None)
    @given(
        member=st.sampled_from(list(Schedule)),
        chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
        pads=st.lists(st.sampled_from(["", " ", "  ", "\t"]), min_size=4, max_size=4),
        upper=st.booleans(),
    )
    def test_round_trip_property(self, member, chunk, pads, upper):
        kind = member.value.upper() if upper else member.value
        if chunk is None:
            spec = f"{pads[0]}{kind}{pads[1]}"
        else:
            spec = f"{pads[0]}{kind}{pads[1]},{pads[2]}{chunk}{pads[3]}"
        assert parse_schedule_spec(spec) == (member, chunk)


class TestStaticBlock:
    def test_even_split(self):
        sched = StaticBlockScheduler()
        parts = sched.partition(4, 0, 8, 1)
        assert [expand(p) for p in parts] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_split_assigns_extras_to_first_threads(self):
        sched = StaticBlockScheduler()
        parts = sched.partition(3, 0, 10, 1)
        sizes = [len(expand(p)) for p in parts]
        assert sizes == [4, 3, 3]
        assert expand(parts[0]) == [0, 1, 2, 3]

    def test_strided_loop(self):
        sched = StaticBlockScheduler()
        parts = sched.partition(2, 1, 20, 3)
        all_indices = sorted(i for p in parts for i in expand(p))
        assert all_indices == list(range(1, 20, 3))

    def test_more_threads_than_iterations(self):
        sched = StaticBlockScheduler()
        parts = sched.partition(8, 0, 3, 1)
        sizes = [len(expand(p)) for p in parts]
        assert sum(sizes) == 3
        assert sizes[:3] == [1, 1, 1]
        assert all(s == 0 for s in sizes[3:])

    def test_empty_range(self):
        sched = StaticBlockScheduler()
        assert expand(list(sched.chunks_for(0, 4, 5, 5, 1))) == []

    def test_bad_thread_id(self):
        sched = StaticBlockScheduler()
        with pytest.raises(SchedulingError):
            list(sched.chunks_for(4, 4, 0, 10, 1))
        with pytest.raises(SchedulingError):
            list(sched.chunks_for(-1, 4, 0, 10, 1))


class TestStaticCyclic:
    def test_cyclic_unit_chunk(self):
        sched = StaticCyclicScheduler()
        parts = sched.partition(3, 0, 7, 1)
        assert expand(parts[0]) == [0, 3, 6]
        assert expand(parts[1]) == [1, 4]
        assert expand(parts[2]) == [2, 5]

    def test_block_cyclic(self):
        sched = StaticCyclicScheduler(chunk=2)
        parts = sched.partition(2, 0, 10, 1)
        assert expand(parts[0]) == [0, 1, 4, 5, 8, 9]
        assert expand(parts[1]) == [2, 3, 6, 7]

    def test_strided(self):
        sched = StaticCyclicScheduler()
        parts = sched.partition(2, 0, 20, 2)
        assert expand(parts[0]) == [0, 4, 8, 12, 16]
        assert expand(parts[1]) == [2, 6, 10, 14, 18]

    def test_invalid_chunk(self):
        with pytest.raises(SchedulingError):
            StaticCyclicScheduler(chunk=0)


class TestDynamic:
    def test_covers_all_iterations_once(self):
        sched = DynamicScheduler(chunk=3)
        state = sched.new_state(0, 10, 1)
        claimed = []
        claimed.extend(expand(list(sched.chunks_from(state, 0, 10, 1))))
        assert sorted(claimed) == list(range(10))

    def test_shared_state_splits_work(self):
        sched = DynamicScheduler(chunk=2)
        state = sched.new_state(0, 10, 1)
        gen_a = sched.chunks_from(state, 0, 10, 1)
        gen_b = sched.chunks_from(state, 0, 10, 1)
        # Interleave claims from two logical consumers.
        chunks = [next(gen_a), next(gen_b), next(gen_a), next(gen_b), next(gen_a)]
        assert sorted(expand(chunks)) == list(range(10))
        assert list(gen_a) == [] and list(gen_b) == []

    def test_no_static_partition(self):
        with pytest.raises(SchedulingError):
            DynamicScheduler().partition(4, 0, 10, 1)

    def test_fallback_single_consumer(self):
        sched = DynamicScheduler(chunk=4)
        assert sorted(expand(list(sched.chunks_for(0, 4, 0, 11, 1)))) == list(range(11))


class TestGuided:
    def test_covers_all_iterations(self):
        sched = GuidedScheduler(min_chunk=2)
        chunks = list(sched.chunks_for(0, 4, 0, 100, 1))
        assert sorted(expand(chunks)) == list(range(100))

    def test_chunk_sizes_decay(self):
        sched = GuidedScheduler(min_chunk=1)
        chunks = list(sched.chunks_for(0, 4, 0, 64, 1))
        counts = [c.count for c in chunks]
        assert counts[0] >= counts[-1]
        assert counts[0] == 16  # 64 / 4 threads


# -- property-based tests ----------------------------------------------------

range_strategy = st.tuples(
    st.integers(min_value=-50, max_value=50),   # start
    st.integers(min_value=0, max_value=200),    # trip count
    st.integers(min_value=1, max_value=7),      # step magnitude
).map(lambda t: (t[0], t[0] + t[1] * t[2], t[2]))


@settings(max_examples=200, deadline=None)
@given(rng=range_strategy, num_threads=st.integers(min_value=1, max_value=9),
       schedule=st.sampled_from(["staticBlock", "staticCyclic"]),
       chunk=st.integers(min_value=1, max_value=5))
def test_static_schedules_partition_exactly(rng, num_threads, schedule, chunk):
    """Every iteration is executed exactly once, by exactly one thread."""
    start, end, step = rng
    sched = make_scheduler(schedule, chunk=chunk)
    parts = sched.partition(num_threads, start, end, step)
    expected = list(range(start, end, step))
    combined = sorted(i for p in parts for i in expand(p))
    assert combined == sorted(expected)
    # No overlap between threads.
    seen = set()
    for part in parts:
        for index in expand(part):
            assert index not in seen
            seen.add(index)


@settings(max_examples=100, deadline=None)
@given(rng=range_strategy, chunk=st.integers(min_value=1, max_value=5))
def test_dynamic_schedule_claims_every_iteration_once(rng, chunk):
    start, end, step = rng
    sched = DynamicScheduler(chunk=chunk)
    state = sched.new_state(start, end, step)
    claimed = expand(list(sched.chunks_from(state, start, end, step)))
    assert sorted(claimed) == sorted(range(start, end, step))


@settings(max_examples=100, deadline=None)
@given(rng=range_strategy, num_threads=st.integers(min_value=1, max_value=8))
def test_block_schedule_is_balanced(rng, num_threads):
    """Static block assigns between floor and ceil of total/threads iterations."""
    start, end, step = rng
    sched = StaticBlockScheduler()
    parts = sched.partition(num_threads, start, end, step)
    total = len(range(start, end, step))
    low, high = total // num_threads, -(-total // num_threads)
    for part in parts:
        assert low <= len(expand(part)) <= high
