"""Capability-matrix tests for ``Backend.resolve_for_region`` and friends.

Covers the full backend × region-shape matrix (team size, nesting level,
``requires_shared_locals``), the documented fallback order, the live
``true_parallel`` capability on every backend, and the loud fork-requirement
error of the components that cannot degrade (satellites of the GIL-free
execution tier).
"""

from __future__ import annotations

import pytest

from repro.runtime import backend as backend_mod
from repro.runtime import shm
from repro.runtime import subinterp
from repro.runtime.backend import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    backend_by_name,
    free_threaded_build,
    gil_enabled,
)
from repro.runtime.exceptions import BackendError
from repro.runtime.subinterp import SubinterpreterBackend

#: the (size, nesting_level, requires_shared_locals) shapes the matrix covers
REGION_SHAPES = [
    (1, 0, False),
    (1, 0, True),
    (4, 0, False),
    (4, 0, True),
    (4, 1, False),
    (4, 1, True),
]


class TestRegistry:
    def test_all_four_backends_registered(self):
        assert {"serial", "threads", "processes", "subinterp"} <= set(available_backends())

    def test_subinterp_resolves_to_backend_instance(self):
        backend = backend_by_name("subinterp")
        assert isinstance(backend, SubinterpreterBackend)
        assert backend_by_name("subinterp") is backend  # cached singleton

    def test_capability_flags_per_backend(self):
        expectations = {
            "serial": (True, 1.0),
            "threads": (True, 1.0),
            "processes": (False, 4.0),
            "subinterp": (False, 6.0),
        }
        for name, (shared_locals, spinup) in expectations.items():
            backend = backend_by_name(name)
            assert backend.supports_shared_locals == shared_locals, name
            assert backend.spinup_cost_scale == spinup, name

    def test_spinup_cost_ordering(self):
        # Isolated-heap teams cost more to spin up; the tuner's serial cutoff
        # scales with this, so the ordering is semantically meaningful.
        assert (
            ThreadBackend().spinup_cost_scale
            < ProcessBackend().spinup_cost_scale
            < SubinterpreterBackend().spinup_cost_scale
        )


class TestInProcessBackends:
    """Backends with one shared heap never need to fall back."""

    @pytest.mark.parametrize("size,nesting,shared_locals", REGION_SHAPES)
    def test_thread_backend_always_resolves_to_self(self, size, nesting, shared_locals):
        backend = ThreadBackend()
        assert (
            backend.resolve_for_region(size=size, nesting_level=nesting, requires_shared_locals=shared_locals)
            is backend
        )

    @pytest.mark.parametrize("size,nesting,shared_locals", REGION_SHAPES)
    def test_serial_backend_always_resolves_to_self(self, size, nesting, shared_locals):
        backend = SerialBackend()
        assert (
            backend.resolve_for_region(size=size, nesting_level=nesting, requires_shared_locals=shared_locals)
            is backend
        )


@pytest.mark.skipif(not shm.fork_available(), reason="process backend needs the fork start method")
class TestProcessResolution:
    def test_matrix(self):
        backend = ProcessBackend()
        # Teams of one stay on the backend (no workers to isolate).
        assert backend.resolve_for_region(size=1, nesting_level=0, requires_shared_locals=True) is backend
        # Plain top-level SPMD regions are the backend's home turf.
        assert backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False) is backend
        # Nested regions become thread sub-teams (designed hierarchy, silent).
        assert backend.resolve_for_region(size=4, nesting_level=1, requires_shared_locals=False) is backend.fallback
        # Shared-heap constructs fall back loudly.
        with pytest.warns(RuntimeWarning, match="ProcessBackend.*shared Python heap"):
            resolved = backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=True)
        assert resolved is backend.fallback

    def test_fallback_is_a_thread_backend(self):
        assert isinstance(ProcessBackend().fallback, ThreadBackend)

    def test_no_fork_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setattr(shm, "fork_available", lambda: False)
        backend = ProcessBackend()
        with pytest.warns(RuntimeWarning, match="ProcessBackend.*fork"):
            resolved = backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False)
        assert resolved is backend.fallback


class TestSubinterpResolution:
    @pytest.mark.parametrize("shared_locals", [False, True])
    def test_size_one_resolves_to_self(self, shared_locals):
        backend = SubinterpreterBackend()
        assert (
            backend.resolve_for_region(size=1, nesting_level=0, requires_shared_locals=shared_locals) is backend
        )

    def test_matrix_when_available(self, monkeypatch):
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: True)
        backend = SubinterpreterBackend()
        assert backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False) is backend
        assert backend.resolve_for_region(size=4, nesting_level=1, requires_shared_locals=False) is backend.fallback
        with pytest.warns(RuntimeWarning, match="SubinterpreterBackend.*shared Python heap"):
            resolved = backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=True)
        assert resolved is backend.fallback

    def test_matrix_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: False)
        backend = SubinterpreterBackend()
        with pytest.warns(RuntimeWarning, match="SubinterpreterBackend"):
            for nesting in (0, 1):
                for shared_locals in (False, True):
                    resolved = backend.resolve_for_region(
                        size=4, nesting_level=nesting, requires_shared_locals=shared_locals
                    )
                    assert resolved is backend.fallback

    def test_fallback_is_a_thread_backend(self):
        assert isinstance(SubinterpreterBackend().fallback, ThreadBackend)


class TestTrueParallel:
    def test_serial_is_never_parallel(self):
        assert SerialBackend().true_parallel is False

    def test_threads_follow_the_live_gil_state(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "gil_enabled", lambda: True)
        assert ThreadBackend().true_parallel is False
        monkeypatch.setattr(backend_mod, "gil_enabled", lambda: False)
        assert ThreadBackend().true_parallel is True

    def test_processes_follow_fork_availability(self, monkeypatch):
        assert ProcessBackend().true_parallel == shm.fork_available()
        monkeypatch.setattr(shm, "fork_available", lambda: False)
        assert ProcessBackend().true_parallel is False

    def test_subinterp_follows_the_probe(self, monkeypatch):
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: True)
        assert SubinterpreterBackend().true_parallel is True
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: False)
        assert SubinterpreterBackend().true_parallel is False

    def test_build_introspection_is_consistent(self):
        assert isinstance(free_threaded_build(), bool)
        assert isinstance(gil_enabled(), bool)
        if not free_threaded_build():
            # A regular build cannot have its GIL disabled.
            assert gil_enabled() is True


class TestForkRequirement:
    """Components whose contract is fork inheritance fail loudly, not subtly."""

    def test_require_fork_passes_where_fork_exists(self):
        if shm.fork_available():
            shm.require_fork("a test component")  # must not raise

    def test_require_fork_raises_backend_error(self, monkeypatch):
        monkeypatch.setattr(shm, "fork_available", lambda: False)
        with pytest.raises(BackendError, match="fork.*start method") as excinfo:
            shm.require_fork("the persistent process pool")
        message = str(excinfo.value)
        assert "the persistent process pool" in message
        # The error points at the backends that do work here.
        assert "threads or subinterp" in message

    def test_persistent_pool_refuses_to_build_without_fork(self, monkeypatch):
        from repro.runtime.procpool import PersistentProcessPool

        monkeypatch.setattr(shm, "fork_available", lambda: False)
        with pytest.raises(BackendError, match="persistent process pool"):
            PersistentProcessPool(2)
