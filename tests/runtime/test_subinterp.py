"""Tests for the PEP-734 subinterpreter backend and its sync primitives.

The backend's *plumbing* — the pipe-token lock, the polling barrier, the
shareable sync bundle, the length-prefixed result channel — is exercised
in-process with plain threads (file descriptors and shared-memory cells
behave identically there), so these tests run on every interpreter.  The
end-to-end worker-interpreter path additionally runs where
``subinterpreters_available()`` holds and skips cleanly elsewhere.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import warnings
from types import SimpleNamespace

import numpy as np
import pytest

from repro.runtime import context as ctx
from repro.runtime.barrier import BrokenBarrierError
from repro.runtime import shm
from repro.runtime import subinterp
from repro.runtime.backend import SerialBackend, ThreadBackend
from repro.runtime.subinterp import (
    SubinterpreterBackend,
    _bootstrap_source,
    _read_payload,
    subinterpreters_available,
)
from repro.runtime.team import parallel_region


class SharedFillKernel:
    """Minimal ``process_safe`` SPMD body: picklable, state in shared memory."""

    process_safe = True

    def __init__(self, array: shm.SharedArray) -> None:
        self.array = array

    def fill(self) -> None:
        tid = ctx.get_thread_id()
        self.array[tid] = tid + 1.0


class TestAvailability:
    def test_probe_is_cached_and_boolean(self):
        first = subinterpreters_available()
        assert isinstance(first, bool)
        # Cached: repeated calls agree (and don't re-pay the probe).
        assert subinterpreters_available() is first

    def test_true_parallel_mirrors_probe(self):
        backend = SubinterpreterBackend()
        assert backend.true_parallel == subinterpreters_available()

    def test_api_adapter_consistency(self):
        api = subinterp.interpreters_api()
        if subinterpreters_available():
            assert api is not None
        # Either way a second resolution returns the same cached answer.
        assert subinterp.interpreters_api() is api


class TestResolution:
    def test_size_one_always_resolves_to_self(self):
        backend = SubinterpreterBackend()
        resolved = backend.resolve_for_region(size=1, nesting_level=0, requires_shared_locals=True)
        assert resolved is backend

    @pytest.mark.skipif(subinterpreters_available(), reason="needs an interpreter without PEP-734 workers")
    def test_unavailable_platform_falls_back_with_warning(self):
        backend = SubinterpreterBackend()
        with pytest.warns(RuntimeWarning, match="SubinterpreterBackend.*interpreters module"):
            resolved = backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False)
        assert resolved is backend.fallback
        assert isinstance(resolved, ThreadBackend)

    def test_available_matrix(self, monkeypatch):
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: True)
        backend = SubinterpreterBackend()
        # Plain top-level SPMD region: the backend takes it.
        assert backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False) is backend
        # Nested regions run as thread sub-teams (designed hierarchy, no warning).
        assert backend.resolve_for_region(size=4, nesting_level=1, requires_shared_locals=False) is backend.fallback
        # Shared-heap constructs fall back loudly.
        with pytest.warns(RuntimeWarning, match="SubinterpreterBackend.*shared Python heap"):
            resolved = backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=True)
        assert resolved is backend.fallback

    def test_custom_fallback_is_honoured(self, monkeypatch):
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: False)
        fallback = SerialBackend()
        backend = SubinterpreterBackend(fallback=fallback)
        with pytest.warns(RuntimeWarning):
            assert backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False) is fallback


class TestProbeFailureFallback:
    """A failed availability probe degrades gracefully — on *every* platform.

    These monkeypatch the cached probe result itself (not the wrapper
    function), so the real ``subinterpreters_available()`` logic runs against
    a build where the one-time probe came back ``False`` — the exact path a
    3.11 interpreter or a numpy-without-subinterpreter-support build takes.
    """

    @pytest.fixture(autouse=True)
    def _failed_probe(self, monkeypatch):
        monkeypatch.setattr(subinterp, "_probe_result", False)

    def test_true_parallel_is_false(self):
        backend = SubinterpreterBackend()
        assert subinterpreters_available() is False
        assert backend.true_parallel is False

    def test_first_resolution_warns_and_falls_back_to_threads(self):
        backend = SubinterpreterBackend()
        with pytest.warns(RuntimeWarning, match="SubinterpreterBackend.*interpreters module"):
            resolved = backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False)
        assert resolved is backend.fallback
        assert isinstance(resolved, ThreadBackend)

    def test_warning_fires_once_then_resolution_is_silent(self):
        backend = SubinterpreterBackend()
        with pytest.warns(RuntimeWarning):
            backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False)
        # Second resolution: same fallback, no second warning (warn-once key).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = backend.resolve_for_region(size=4, nesting_level=0, requires_shared_locals=False)
        assert resolved is backend.fallback

    def test_region_still_produces_correct_results(self):
        seen = []
        lock = threading.Lock()

        def body():
            with lock:
                seen.append(ctx.get_thread_id())

        with pytest.warns(RuntimeWarning):
            parallel_region(body, num_threads=3, backend=SubinterpreterBackend(), name="probe.fallback")
        assert sorted(seen) == [0, 1, 2]

    def test_no_process_sync_without_workers(self):
        backend = SubinterpreterBackend()
        assert backend.create_process_sync(4, lambda: None) is None


class TestProcessSync:
    def test_non_process_safe_body_yields_no_sync(self, monkeypatch):
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: True)
        backend = SubinterpreterBackend()
        with pytest.warns(RuntimeWarning, match="SubinterpreterBackend.*process_safe"):
            assert backend.create_process_sync(4, lambda: None) is None

    def test_unavailable_yields_no_sync_silently(self, monkeypatch):
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: False)
        backend = SubinterpreterBackend()
        assert backend.create_process_sync(4, lambda: None) is None

    def test_shareable_bundle_round_trips_and_cleans_up(self, monkeypatch):
        monkeypatch.setattr(subinterp, "subinterpreters_available", lambda: True)
        backend = SubinterpreterBackend()
        array = shm.shared_zeros(3)
        try:
            kernel = SharedFillKernel(array)
            sync = backend.create_process_sync(3, kernel.fill)
            assert sync is not None
            assert set(sync.shareable) == {"barrier", "arena", "steal", "tune", "heartbeat"}
            assert sync.barrier.parties == 3
            assert isinstance(sync.body_bytes, bytes)

            # A worker-side attach built purely from the shareable primitives
            # sees the *same* state: aborting through the attached barrier
            # breaks the master's.
            descriptor = dict(sync.shareable)
            attached = subinterp._attach_sync(descriptor)
            assert attached.barrier.parties == 3
            attached.barrier.abort()
            assert sync.barrier.broken

            segment_names = [res.name for res in sync.resources if isinstance(res, shm.SharedArray)]
            assert len(segment_names) == 5
            backend.finish_region(SimpleNamespace(process_sync=sync))
            for name in segment_names:
                with pytest.raises(FileNotFoundError):
                    shm._attach_shared_array(name, (1,), "<i8")
        finally:
            array.close()


class TestRegionExecution:
    def test_region_runs_under_subinterp_name_everywhere(self):
        """``backend="subinterp"`` is a safe setting on every interpreter.

        A closure body is never ``process_safe``, so this exercises the thread
        fallback on builds with workers and the platform fallback without —
        identical observable semantics either way.
        """
        seen = []
        lock = threading.Lock()

        def body():
            with lock:
                seen.append(ctx.get_thread_id())

        parallel_region(body, num_threads=3, backend="subinterp")
        assert sorted(seen) == [0, 1, 2]

    def test_master_result_returned_via_fallback(self):
        assert parallel_region(lambda: "master", num_threads=2, backend="subinterp") == "master"

    @pytest.mark.skipif(not subinterpreters_available(), reason="subinterpreter workers unavailable on this build")
    def test_end_to_end_worker_interpreters(self):
        """A real multi-interpreter region produces the sequential answer."""
        from repro.jgf.common import values_match
        from repro.jgf.crypt import parallel as crypt

        reference = crypt.run_sequential("tiny")
        result = crypt.run_backend("tiny", num_threads=2, backend="subinterp")
        assert result.details["valid"]
        assert values_match(result.value, reference.value)


class TestPipeLock:
    def test_mutual_exclusion_under_contention(self):
        lock = shm.PipeLock()
        counter = [0]
        try:
            def hammer():
                for _ in range(200):
                    with lock:
                        counter[0] += 1

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert counter[0] == 800
        finally:
            lock.close()

    def test_attached_lock_shares_the_token(self):
        lock = shm.PipeLock()
        try:
            attached = shm.PipeLock(fds=lock.fds)
            lock.acquire()
            acquired = threading.Event()

            def contender():
                attached.acquire()
                acquired.set()
                attached.release()

            thread = threading.Thread(target=contender, daemon=True)
            thread.start()
            assert not acquired.wait(0.1)  # held through the other handle
            lock.release()
            assert acquired.wait(5)
            thread.join(timeout=5)
        finally:
            lock.close()

    def test_close_is_creator_only(self):
        lock = shm.PipeLock()
        attached = shm.PipeLock(fds=lock.fds)
        attached.close()  # non-owner: must not invalidate the shared fds
        with lock:
            pass
        lock.close()


class TestInterpBarrier:
    def test_releases_all_parties_with_distinct_indices(self):
        barrier = shm.InterpBarrier(3)
        indices = []
        lock = threading.Lock()

        def party():
            index = barrier.wait()
            with lock:
                indices.append(index)

        threads = [threading.Thread(target=party) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sorted(indices) == [0, 1, 2]

    def test_cyclic_reuse_across_rounds(self):
        barrier = shm.InterpBarrier(2)
        rounds = []

        def party():
            for round_number in range(3):
                barrier.wait()
                rounds.append(round_number)

        threads = [threading.Thread(target=party) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sorted(rounds) == [0, 0, 1, 1, 2, 2]

    def test_abort_breaks_waiters(self):
        barrier = shm.InterpBarrier(2)
        failed = threading.Event()

        def waiter():
            try:
                barrier.wait()
            except BrokenBarrierError:
                failed.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        barrier.abort()
        assert failed.wait(5)
        assert barrier.broken
        with pytest.raises(BrokenBarrierError):
            barrier.wait()

    def test_timeout_marks_broken(self):
        barrier = shm.InterpBarrier(2)
        with pytest.raises(BrokenBarrierError):
            barrier.wait(timeout=0.05)
        assert barrier.broken

    def test_reset_restores_and_changes_parties(self):
        barrier = shm.InterpBarrier(2)
        barrier.abort()
        barrier.reset(3)
        assert not barrier.broken
        assert barrier.parties == 3

    def test_attached_instance_shares_state(self):
        cells = shm.SharedArray.zeros(shm.InterpBarrier.CELLS, np.int64)
        lock = shm.PipeLock()
        try:
            master = shm.InterpBarrier(cells=cells, lock=lock)
            master.reset(2)
            attached = shm.InterpBarrier(
                cells=shm._attach_shared_array(cells.name, (shm.InterpBarrier.CELLS,), "<i8"),
                lock=shm.PipeLock(fds=lock.fds),
            )
            released = threading.Event()

            def party():
                attached.wait()
                released.set()

            thread = threading.Thread(target=party, daemon=True)
            thread.start()
            master.wait(timeout=10)
            assert released.wait(5)
            thread.join(timeout=5)
        finally:
            cells.close()
            lock.close()

    def test_external_cells_require_external_lock(self):
        cells = shm.SharedArray.zeros(shm.InterpBarrier.CELLS, np.int64)
        try:
            with pytest.raises(ValueError, match="external lock"):
                shm.InterpBarrier(cells=cells)
        finally:
            cells.close()


class TestResultChannel:
    def _framed(self, data: bytes) -> bytes:
        return struct.pack("<I", len(data)) + data

    def test_round_trip(self):
        read_fd, write_fd = os.pipe()
        try:
            os.write(write_fd, self._framed(b"payload-bytes"))
            assert _read_payload(read_fd, time.monotonic() + 5) == b"payload-bytes"
        finally:
            os.close(read_fd)
            os.close(write_fd)

    def test_eof_returns_none(self):
        read_fd, write_fd = os.pipe()
        os.close(write_fd)
        try:
            assert _read_payload(read_fd, time.monotonic() + 5) is None
        finally:
            os.close(read_fd)

    def test_timeout_returns_none(self):
        read_fd, write_fd = os.pipe()
        try:
            assert _read_payload(read_fd, time.monotonic() + 0.05) is None
        finally:
            os.close(read_fd)
            os.close(write_fd)

    def test_split_writes_reassemble(self):
        read_fd, write_fd = os.pipe()
        framed = self._framed(b"x" * 1000)

        def trickle():
            for offset in range(0, len(framed), 100):
                os.write(write_fd, framed[offset : offset + 100])
                time.sleep(0.002)

        writer = threading.Thread(target=trickle, daemon=True)
        writer.start()
        try:
            assert _read_payload(read_fd, time.monotonic() + 10) == b"x" * 1000
            writer.join(timeout=5)
        finally:
            os.close(read_fd)
            os.close(write_fd)


class TestBootstrap:
    def test_source_compiles_and_embeds_descriptor(self):
        descriptor = {"thread_id": 2, "result_fd": 7, "name": "region"}
        source = _bootstrap_source(descriptor)
        compile(source, "<bootstrap>", "exec")  # must be valid standalone source
        assert "_member_main" in source
        assert repr(descriptor) in source

    def test_path_prelude_replays_sys_path(self):
        namespace: dict = {}
        exec(subinterp._path_prelude(), namespace)  # noqa: S102 - test fixture
        import sys

        replayed = namespace["sys"].path
        for entry in sys.path:
            if entry:
                assert entry in replayed
