"""Property-based scheduler tests.

For randomly generated ``(start, end, step, num_threads, chunk)`` tuples,
every schedule must partition ``range(start, end, step)`` into chunks that
are *disjoint* (no iteration assigned twice) and *exhaustive* (no iteration
dropped) — the invariant every backend relies on.  A seeded ``random.Random``
keeps the cases reproducible without external property-testing dependencies.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.exceptions import SchedulingError
from repro.runtime.scheduler import (
    CollapsedRange,
    DynamicScheduler,
    GuidedScheduler,
    Schedule,
    StaticBlockScheduler,
    StaticCyclicScheduler,
    make_scheduler,
)
from repro.runtime.shm import ProcessDynamicState, ProcessGuidedState, SyncArena

CASES = 150


def _random_cases(seed: int):
    rng = random.Random(seed)
    for _ in range(CASES):
        start = rng.randint(-50, 50)
        step = rng.choice([-7, -3, -2, -1, 1, 2, 3, 5, 8])
        span = rng.randint(0, 120)
        end = start + (span if step > 0 else -span)
        num_threads = rng.randint(1, 9)
        chunk = rng.randint(1, 10)
        yield start, end, step, num_threads, chunk


def _expected(start, end, step):
    return sorted(range(start, end, step))


def _assert_disjoint_exhaustive(per_thread_chunks, start, end, step, label):
    seen: list[int] = []
    for chunks in per_thread_chunks:
        for piece in chunks:
            indices = list(piece.indices())
            assert len(indices) == piece.count, f"{label}: count mismatch on {piece}"
            seen.extend(indices)
    assert sorted(seen) == _expected(start, end, step), (
        f"{label}: partition of range({start}, {end}, {step}) not disjoint+exhaustive"
    )


@pytest.mark.parametrize("schedule", [Schedule.STATIC_BLOCK, Schedule.STATIC_CYCLIC])
def test_static_schedules_partition_any_range(schedule):
    for start, end, step, num_threads, chunk in _random_cases(seed=20260729):
        scheduler = make_scheduler(schedule, chunk=chunk)
        per_thread = [
            list(scheduler.chunks_for(t, num_threads, start, end, step)) for t in range(num_threads)
        ]
        _assert_disjoint_exhaustive(per_thread, start, end, step, f"{schedule.value}[chunk={chunk}]")


def test_dynamic_schedule_partitions_under_interleaved_claims():
    """Simulate team members draining one shared claim state round-robin."""
    for start, end, step, num_threads, chunk in _random_cases(seed=1357):
        scheduler = DynamicScheduler(chunk=chunk)
        state = scheduler.new_state(start, end, step)
        iterators = [scheduler.chunks_from(state, start, end, step) for _ in range(num_threads)]
        per_thread = [[] for _ in range(num_threads)]
        live = set(range(num_threads))
        while live:
            for t in sorted(live):
                piece = next(iterators[t], None)
                if piece is None:
                    live.discard(t)
                else:
                    per_thread[t].append(piece)
        _assert_disjoint_exhaustive(per_thread, start, end, step, f"dynamic[chunk={chunk}]")


def test_guided_schedule_partitions_under_interleaved_claims():
    for start, end, step, num_threads, chunk in _random_cases(seed=2468):
        scheduler = GuidedScheduler(min_chunk=chunk)
        state = scheduler.new_guided_state(start, end, step, num_threads)
        iterators = [scheduler.chunks_from_guided(state, start, end, step) for _ in range(num_threads)]
        per_thread = [[] for _ in range(num_threads)]
        live = set(range(num_threads))
        while live:
            for t in sorted(live):
                piece = next(iterators[t], None)
                if piece is None:
                    live.discard(t)
                else:
                    per_thread[t].append(piece)
        _assert_disjoint_exhaustive(per_thread, start, end, step, f"guided[min_chunk={chunk}]")


def test_process_states_partition_like_thread_states():
    """The cross-process claim states must produce the same partitions as the
    in-process ones for identical claim sequences."""
    arena = SyncArena(capacity=512)
    ordinal = 0
    for start, end, step, num_threads, chunk in _random_cases(seed=97531):
        scheduler = DynamicScheduler(chunk=chunk)
        total = len(range(start, end, step))
        total_chunks = (total + chunk - 1) // chunk
        state = ProcessDynamicState(arena.slot(ordinal), total_chunks)
        pieces = list(scheduler.chunks_from(state, start, end, step))
        _assert_disjoint_exhaustive([pieces], start, end, step, f"proc-dynamic[chunk={chunk}]")

        guided = GuidedScheduler(min_chunk=chunk)
        guided_state = ProcessGuidedState(arena.slot(ordinal + 1), total, chunk, num_threads)
        pieces = list(guided.chunks_from_guided(guided_state, start, end, step))
        _assert_disjoint_exhaustive([pieces], start, end, step, f"proc-guided[min_chunk={chunk}]")
        ordinal += 2


def test_static_block_is_contiguous_and_balanced():
    for start, end, step, num_threads, _ in _random_cases(seed=8642):
        scheduler = StaticBlockScheduler()
        sizes = []
        cursor = start
        for t in range(num_threads):
            chunks = list(scheduler.chunks_for(t, num_threads, start, end, step))
            assert len(chunks) <= 1
            count = chunks[0].count if chunks else 0
            sizes.append(count)
            if chunks:
                assert chunks[0].start == cursor  # blocks are contiguous and ordered
                cursor = chunks[0].end
        if sizes:
            assert max(sizes) - min(sizes) <= 1  # balanced to within one iteration


def test_cyclic_stride_matches_team_size():
    for start, end, step, num_threads, chunk in _random_cases(seed=11223):
        scheduler = StaticCyclicScheduler(chunk=chunk)
        for t in range(num_threads):
            blocks = list(scheduler.chunks_for(t, num_threads, start, end, step))
            for first, second in zip(blocks, blocks[1:]):
                logical_gap = (second.start - first.start) // step
                assert logical_gap == num_threads * chunk


# ---------------------------------------------------------------------------
# collapse(n) linearisation properties (hypothesis)
# ---------------------------------------------------------------------------

#: one (start, end, step) loop range with 0..9 iterations, any step direction
_range_st = st.builds(
    lambda start, count, step: (start, start + count * step, step),
    st.integers(-20, 20),
    st.integers(0, 9),
    st.sampled_from([-3, -2, -1, 1, 2, 3]),
)

_dims_st = st.lists(_range_st, min_size=2, max_size=3).map(tuple)

_ALL_SCHEDULES = [
    Schedule.STATIC_BLOCK,
    Schedule.STATIC_CYCLIC,
    Schedule.DYNAMIC,
    Schedule.GUIDED,
]


def _expected_tuples(dims):
    return sorted(itertools.product(*(range(s, e, st_) for s, e, st_ in dims)))


def _chunks_for_flat(schedule, chunk, num_threads, total):
    """Flat chunks of range(total) per thread, interleaving dynamic claims."""
    scheduler = make_scheduler(schedule, chunk=chunk)
    if schedule in (Schedule.STATIC_BLOCK, Schedule.STATIC_CYCLIC):
        return [list(scheduler.chunks_for(t, num_threads, 0, total, 1)) for t in range(num_threads)]
    if schedule is Schedule.GUIDED:
        state = scheduler.new_guided_state(0, total, 1, num_threads)
        iterators = [scheduler.chunks_from_guided(state, 0, total, 1) for _ in range(num_threads)]
    else:
        state = scheduler.new_state(0, total, 1, num_threads)
        iterators = [scheduler.chunks_from(state, 0, total, 1) for _ in range(num_threads)]
    per_thread = [[] for _ in range(num_threads)]
    live = set(range(num_threads))
    while live:
        for t in sorted(live):
            piece = next(iterators[t], None)
            if piece is None:
                live.discard(t)
            else:
                per_thread[t].append(piece)
    return per_thread


def _decode_segment_tuples(params):
    """Expand one body-call parameter tuple into its index tuples."""
    ranges = [range(params[i], params[i + 1], params[i + 2]) for i in range(0, len(params), 3)]
    return list(itertools.product(*ranges))


@settings(max_examples=80, deadline=None)
@given(
    dims=_dims_st,
    schedule=st.sampled_from(_ALL_SCHEDULES),
    chunk=st.integers(1, 8),
    num_threads=st.integers(1, 6),
)
def test_collapse_every_tuple_visited_exactly_once(dims, schedule, chunk, num_threads):
    """Any schedule over the flat space visits every index tuple exactly once."""
    crange = CollapsedRange(dims)
    visited = []
    for chunks in _chunks_for_flat(schedule, chunk, num_threads, crange.total):
        for piece in chunks:
            for params in crange.segments(piece.start, piece.end):
                visited.extend(_decode_segment_tuples(params))
    assert sorted(visited) == _expected_tuples(dims)


@settings(max_examples=80, deadline=None)
@given(
    dims=_dims_st,
    schedule=st.sampled_from(_ALL_SCHEDULES),
    chunk=st.integers(1, 8),
    num_threads=st.integers(1, 6),
)
def test_collapse_row_pinned_never_splits_a_row(dims, schedule, chunk, num_threads):
    """Row-pinned (ordered) chunking keeps whole rows on one chunk.

    Every decoded body call must cover the *full* innermost range, every
    outer tuple must appear in exactly one chunk, and the union must still be
    the complete tuple space.
    """
    crange = CollapsedRange(dims)
    inner = dims[-1]
    inner_count = len(range(*inner))
    visited = []
    outer_owners = {}
    for thread, chunks in enumerate(
        _chunks_for_flat(schedule, chunk, num_threads, crange.outer_total)
    ):
        for piece in chunks:
            for params in crange.row_segments(piece.start, piece.end):
                assert params[-3:] == inner  # full inner range, never split
                for index_tuple in _decode_segment_tuples(params):
                    visited.append(index_tuple)
                    owner = outer_owners.setdefault(index_tuple[:-1], (thread, piece))
                    assert owner == (thread, piece), (
                        f"row {index_tuple[:-1]} split across chunks {owner} and {(thread, piece)}"
                    )
    if inner_count:
        assert sorted(visited) == _expected_tuples(dims)
    else:
        assert visited == []


@settings(max_examples=120, deadline=None)
@given(dims=_dims_st, data=st.data())
def test_collapse_tuple_at_round_trips(dims, data):
    """tuple_at agrees with the row-major expansion of the tuple space."""
    crange = CollapsedRange(dims)
    expected = list(itertools.product(*(range(s, e, st_) for s, e, st_ in dims)))
    assert crange.total == len(expected)
    if not expected:
        with pytest.raises(SchedulingError):
            crange.tuple_at(0)
        return
    flat = data.draw(st.integers(0, crange.total - 1))
    assert crange.tuple_at(flat) == expected[flat]


def test_collapse_rejects_single_dimension():
    with pytest.raises(SchedulingError):
        CollapsedRange(((0, 4, 1),))


def test_collapse_rejects_zero_step():
    with pytest.raises(SchedulingError):
        CollapsedRange(((0, 4, 1), (0, 4, 0)))
