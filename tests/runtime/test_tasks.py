"""Tests for the work-stealing task runtime: deques, pools, dependencies, taskloop.

Mirrors the cross-backend conformance pattern of ``test_team.py``: the same
taskloop program must produce identical results under the serial, thread and
process backends, with steal activity visible in traces where tracing exists.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.runtime import context as ctx
from repro.runtime import shm
from repro.runtime.backend import backend_by_name, set_backend
from repro.runtime.exceptions import BrokenTeamError, TaskError
from repro.runtime.tasks import (
    TaskHandle,
    TaskPool,
    WorkStealingDeque,
    _HeapTaskLoopState,
    resolve_grainsize,
    run_taskloop,
    spawn_task,
    task_wait,
)
from repro.runtime.subinterp import subinterpreters_available
from repro.runtime.team import Team, parallel_region
from repro.runtime.trace import EventKind, TraceRecorder

#: backend names runnable on this interpreter (iterated directly by the
#: all-backends-agree test)
AVAILABLE_BACKEND_NAMES = ("serial", "threads", "processes") + (
    ("subinterp",) if subinterpreters_available() else ()
)

#: every backend the conformance suite asserts identical behaviour on; the
#: subinterpreter entry skips where worker interpreters are unavailable.
CONFORMANCE_BACKENDS = (
    "serial",
    "threads",
    "processes",
    pytest.param(
        "subinterp",
        marks=pytest.mark.skipif(
            not subinterpreters_available(),
            reason="subinterpreter workers unavailable on this build",
        ),
    ),
)


class TestWorkStealingDeque:
    def test_owner_lifo_thief_fifo(self):
        dq = WorkStealingDeque()
        for item in (1, 2, 3):
            dq.push(item)
        assert dq.steal() == 1  # thief takes the oldest
        assert dq.pop() == 3   # owner takes the newest
        assert dq.pop() == 2
        assert dq.pop() is None
        assert dq.steal() is None

    def test_len_and_bool(self):
        dq = WorkStealingDeque()
        assert not dq and len(dq) == 0
        dq.push("t")
        assert dq and len(dq) == 1

    def test_concurrent_pop_and_steal_take_each_item_once(self):
        dq = WorkStealingDeque()
        total = 2000
        for i in range(total):
            dq.push(i)
        taken: list[int] = []
        lock = threading.Lock()

        def drain(op):
            got = []
            while True:
                item = op()
                if item is None:
                    if not dq:
                        break
                    continue
                got.append(item)
            with lock:
                taken.extend(got)

        thief = threading.Thread(target=drain, args=(dq.steal,))
        thief.start()
        drain(dq.pop)
        thief.join()
        assert sorted(taken) == list(range(total))


class TestTaskHandleJoin:
    def test_failure_chains_cause_and_spawn_site(self):
        def failing():
            raise ValueError("nope")

        handle = spawn_task(failing)
        with pytest.raises(TaskError) as excinfo:
            handle.join(timeout=5)
        err = excinfo.value
        assert isinstance(err.cause, ValueError)
        assert err.__cause__ is err.cause  # chained, not just stored
        # The spawn site (this test function) is attached to the message.
        assert "test_tasks.py" in str(err)
        assert "test_failure_chains_cause_and_spawn_site" in str(err)

    def test_second_join_reraises_consistently(self):
        def failing():
            raise ValueError("boom")

        handle = spawn_task(failing)
        with pytest.raises(TaskError) as first:
            handle.join(timeout=5)
        with pytest.raises(TaskError) as second:
            handle.join(timeout=5)
        # Both raises carry the same original exception and equivalent context.
        assert first.value.cause is second.value.cause
        assert isinstance(second.value.__cause__, ValueError)
        assert str(first.value) == str(second.value)

    def test_spawn_site_skips_aspect_machinery(self):
        """A task spawned through a woven @Task reports the user's call site."""
        from repro.core import TaskAspect, Weaver, call

        class App:
            def explode(self):
                raise ValueError("woven boom")

        weaver = Weaver()
        weaver.weave(TaskAspect(call("App.explode")), App)
        try:
            handle = App().explode()
            with pytest.raises(TaskError) as excinfo:
                handle.join(timeout=5)
        finally:
            weaver.unweave_all()
        message = str(excinfo.value)
        assert "test_tasks.py" in message
        assert "aspects/execution.py" not in message

    def test_join_timeout_still_raises(self):
        gate = threading.Event()
        handle = spawn_task(lambda: gate.wait(5))
        with pytest.raises(TaskError):
            handle.join(timeout=0.05)
        gate.set()
        assert handle.join(timeout=5) is True


class TestDependencies:
    def test_chain_executes_in_order(self):
        pool = TaskPool(workers=2, name="deps-chain")
        try:
            order: list[int] = []
            lock = threading.Lock()

            def step(i):
                with lock:
                    order.append(i)

            handle = pool.spawn(step, 0)
            for i in range(1, 6):
                handle = pool.spawn(step, i, depends=[handle])
            handle.join(timeout=10)
            assert order == [0, 1, 2, 3, 4, 5]
        finally:
            pool.shutdown()

    def test_diamond_runs_sink_last(self):
        pool = TaskPool(workers=3, name="deps-diamond")
        try:
            seen: list[str] = []
            lock = threading.Lock()

            def mark(label):
                with lock:
                    seen.append(label)

            top = pool.spawn(mark, "top")
            left = pool.spawn(mark, "left", depends=[top])
            right = pool.spawn(mark, "right", depends=[top])
            sink = pool.spawn(mark, "sink", depends=[left, right])
            sink.join(timeout=10)
            assert seen[0] == "top" and seen[-1] == "sink"
            assert set(seen) == {"top", "left", "right", "sink"}
        finally:
            pool.shutdown()

    def test_completed_dependency_does_not_defer(self):
        pool = TaskPool(workers=2, name="deps-done")
        try:
            done = pool.spawn(lambda: "first")
            done.join(timeout=5)
            dependent = pool.spawn(lambda: "second", depends=[done])
            assert dependent.join(timeout=5) == "second"
        finally:
            pool.shutdown()

    def test_failed_dependency_still_releases_dependent(self):
        pool = TaskPool(workers=2, name="deps-failed")
        try:
            def failing():
                raise RuntimeError("dep failed")

            dep = pool.spawn(failing)
            dependent = pool.spawn(lambda: "ran anyway", depends=[dep])
            assert dependent.join(timeout=5) == "ran anyway"
            with pytest.raises(TaskError):
                dep.join(timeout=5)
        finally:
            pool.shutdown()

    def test_slow_cross_pool_dependency_is_not_misreported_as_stuck(self):
        """Waiting on another pool's still-running task must not raise.

        Regression test: the stuck detector used to sample only the local
        pool's counters, flagging a slow external dependency as a cycle.
        """
        gate = threading.Event()
        external = TaskPool(workers=1, name="external")
        releaser = threading.Timer(0.25, gate.set)
        try:
            slow = external.spawn(lambda: gate.wait(10) and "slow done")
            results = []

            def body():
                if ctx.get_thread_id() == 0:
                    dependent = spawn_task(lambda: "released", depends=[slow])
                    releaser.start()
                    # join() sits in the help loop for ~250 ms — far longer
                    # than the detector's sampling window — while the only
                    # runnable work lives in the external pool.
                    results.append(dependent.join(timeout=10))

            parallel_region(body, num_threads=2, backend="threads")
            assert results == ["released"]
        finally:
            gate.set()
            releaser.cancel()
            external.shutdown()

    def test_unsatisfiable_dependency_detected_in_region(self):
        never_done = TaskHandle("external")  # nothing will ever complete this

        def body():
            spawn_task(lambda: "blocked", depends=[never_done])
            task_wait(timeout=10)

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=2, backend="threads")
        assert isinstance(excinfo.value.__cause__, TaskError)
        assert "stuck" in str(excinfo.value.__cause__)


class TestTeamTaskPool:
    def test_members_share_one_pool(self):
        pools = []
        lock = threading.Lock()

        def body():
            with lock:
                pools.append(TaskPool.for_team(ctx.current_team()))

        parallel_region(body, num_threads=3, backend="threads")
        assert len(pools) == 3
        assert all(p is pools[0] for p in pools)

    def test_unwaited_tasks_finish_before_region_ends(self):
        executed = []
        lock = threading.Lock()

        def body():
            tid = ctx.get_thread_id()
            spawn_task(lambda: (lock.acquire(), executed.append(tid), lock.release()))
            # No task_wait: the implicit end-of-region drain must run it.

        parallel_region(body, num_threads=3, backend="threads")
        assert sorted(executed) == [0, 1, 2]

    def test_task_wait_joins_only_own_scope(self):
        results = {}
        lock = threading.Lock()

        def body():
            tid = ctx.get_thread_id()
            spawn_task(lambda t=tid: t * 10)
            finished = task_wait(timeout=10)
            with lock:
                results[tid] = finished

        parallel_region(body, num_threads=3, backend="threads")
        assert results == {0: [0], 1: [10], 2: [20]}

    def test_join_inside_region_participates_in_stealing(self):
        """A member blocked in join() executes other queued tasks meanwhile."""
        ran_by: dict[str, int] = {}
        lock = threading.Lock()

        def body():
            tid = ctx.get_thread_id()
            if tid == 0:
                def record():
                    with lock:
                        ran_by["task"] = ctx.get_thread_id()

                handle = spawn_task(record)
                handle.join(timeout=10)

        parallel_region(body, num_threads=2, backend="threads")
        # The task was executed by whoever got to it — crucially, join()
        # returned because *someone* (possibly the joiner itself) ran it.
        assert "task" in ran_by


class TestTaskloopConformance:
    """Same taskloop program, identical results on every backend."""

    N = 97

    def _run(self, backend_name: str) -> np.ndarray:
        array = shm.shared_zeros(self.N)
        try:
            def tile_body(start, end, step):
                for i in range(start, end, step):
                    array[i] = i * 3.0 + 1.0

            def body():
                run_taskloop(tile_body, 0, self.N, 1, grainsize=5)

            previous = set_backend(backend_by_name(backend_name))
            try:
                parallel_region(body, num_threads=3)
            finally:
                set_backend(previous)
            return np.asarray(array).copy()
        finally:
            array.close()

    @pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
    def test_matches_sequential_reference(self, backend_name):
        reference = np.arange(self.N) * 3.0 + 1.0
        assert np.array_equal(self._run(backend_name), reference)

    def test_all_backends_agree(self):
        runs = {name: self._run(name) for name in AVAILABLE_BACKEND_NAMES}
        for name, result in runs.items():
            assert np.array_equal(result, runs["serial"]), name


class TestTaskloopExecution:
    def test_sequential_semantics_outside_region(self):
        seen = []
        run_taskloop(lambda s, e, st: seen.append((s, e, st)), 0, 30, 1, grainsize=4)
        assert seen == [(0, 30, 1)]  # one untouched full-range call

    def test_each_iteration_executed_exactly_once(self):
        counts = np.zeros(200, dtype=np.int64)
        lock = threading.Lock()

        def tile_body(start, end, step):
            with lock:
                for i in range(start, end, step):
                    counts[i] += 1

        def body():
            run_taskloop(tile_body, 0, 200, 1, grainsize=3)

        parallel_region(body, num_threads=4, backend="threads")
        assert counts.tolist() == [1] * 200

    def test_step_and_negative_ranges(self):
        for start, end, step in ((0, 50, 3), (50, 0, -7), (5, 5, 1)):
            expected = list(range(start, end, step))
            seen: list[int] = []
            lock = threading.Lock()

            def tile_body(s, e, st):
                with lock:
                    seen.extend(range(s, e, st))

            def body():
                run_taskloop(tile_body, start, end, step, grainsize=2)

            parallel_region(body, num_threads=3, backend="threads")
            assert sorted(seen) == sorted(expected), (start, end, step)

    def test_solo_member_steals_absent_members_tiles(self):
        """Deterministic stealing: member 0 of a 2-member team drains alone."""
        recorder = TraceRecorder()
        team = Team(2, name="steal-harness", recorder=recorder)
        frame = ctx.ExecutionContext(team=team, thread_id=0, nesting_level=0)
        executed = []
        ctx.push_context(frame)
        try:
            run_taskloop(
                lambda s, e, st: executed.extend(range(s, e, st)),
                0, 24, 1, grainsize=2, nowait=True,
            )
        finally:
            ctx.pop_context()
        assert sorted(executed) == list(range(24))
        steals = recorder.events(EventKind.TASK_STEAL)
        # 12 tiles, member 0 owned 6: the other 6 must appear as steals.
        assert len(steals) == 6
        assert all(event.data["victim"] == 1 for event in steals)
        spawns = recorder.events(EventKind.TASK_SPAWN)
        assert spawns and spawns[0].data["count"] == 6
        chunks = recorder.events(EventKind.CHUNK)
        assert len(chunks) == 12
        covered = sorted(i for e in chunks for i in range(e.data["start"], e.data["end"], e.data["step"]))
        assert covered == list(range(24))

    def test_steals_recorded_in_real_two_thread_run(self):
        recorder = TraceRecorder()
        uneven = threading.Event()

        def tile_body(start, end, step):
            # Member 0's first tile is slow, forcing member 1 to steal the rest.
            if start == 0 and not uneven.is_set():
                uneven.set()
                time.sleep(0.05)

        def body():
            run_taskloop(tile_body, 0, 40, 1, grainsize=1)

        parallel_region(body, num_threads=2, backend="threads", recorder=recorder)
        chunks = recorder.events(EventKind.CHUNK)
        covered = sorted(i for e in chunks for i in range(e.data["start"], e.data["end"], e.data["step"]))
        assert covered == list(range(40))
        # With one member stalled, the other must have stolen at least once.
        assert len(recorder.events(EventKind.TASK_STEAL)) >= 1

    def test_tasks_spawned_inside_tiles_finish_by_region_end(self):
        spawned_results = []
        lock = threading.Lock()

        def tile_body(start, end, step):
            for i in range(start, end, step):
                spawn_task(lambda i=i: (lock.acquire(), spawned_results.append(i), lock.release()))

        def body():
            run_taskloop(tile_body, 0, 12, 1, grainsize=4)

        parallel_region(body, num_threads=2, backend="threads")
        assert sorted(spawned_results) == list(range(12))

    def test_failing_tile_breaks_the_team_instead_of_hanging(self):
        """A tile body that raises must surface BrokenTeamError, not livelock.

        Regression test: the failing member used to skip mark_done, leaving
        siblings spinning forever on an incomplete deck.
        """
        def tile_body(start, end, step):
            if start == 0:
                raise ValueError("tile exploded")

        def body():
            run_taskloop(tile_body, 0, 20, 1, grainsize=2)

        with pytest.raises(BrokenTeamError):
            parallel_region(body, num_threads=2, backend="threads")

    def test_empty_range_is_a_barrier_only(self):
        def body():
            run_taskloop(lambda s, e, st: pytest.fail("must not run"), 0, 0, 1)
            return ctx.get_thread_id()

        assert parallel_region(body, num_threads=2, backend="threads") == 0


class TestGrainsize:
    def test_explicit_grainsize_wins(self):
        assert resolve_grainsize(100, 4, grainsize=7, num_tasks=3) == 7

    def test_num_tasks_divides_space(self):
        assert resolve_grainsize(100, 4, grainsize=None, num_tasks=10) == 10

    def test_default_tiles_per_member(self):
        grain = resolve_grainsize(640, 4, None, None)
        assert grain == 20  # 8 tiles/member * 4 members = 32 tiles of 20

    def test_small_loops_never_produce_empty_tiles(self):
        assert resolve_grainsize(3, 4, None, None) == 1

    def test_invalid_grainsize_rejected(self):
        with pytest.raises(ValueError):
            resolve_grainsize(10, 2, grainsize=0, num_tasks=None)


class TestHeapTaskLoopState:
    def test_partition_matches_block_distribution(self):
        state = _HeapTaskLoopState(3, 8)  # blocks: 3, 3, 2
        assert [state.claim_local(0) for _ in range(3)] == [0, 1, 2]
        assert [state.claim_local(1) for _ in range(3)] == [3, 4, 5]
        assert [state.claim_local(2) for _ in range(2)] == [6, 7]
        assert state.claim_local(0) is None

    def test_steal_takes_from_victims_tail(self):
        state = _HeapTaskLoopState(2, 8)  # member 1 owns tiles 4..7
        victim, tile = state.claim_steal(0)
        assert (victim, tile) == (1, 7)
        victim, tile = state.claim_steal(0)
        assert (victim, tile) == (1, 6)

    def test_finished_tracks_completions(self):
        state = _HeapTaskLoopState(2, 3)
        assert not state.finished()
        for _ in range(3):
            state.mark_done()
        assert state.finished()


class TestTaskStealArena:
    def test_layout_claims_and_steals(self):
        arena = shm.TaskStealArena(max_workers=4, capacity=8)
        slot = arena.slot(0, num_workers=2, ntiles=10)  # blocks: 5, 5
        assert [slot.claim_local(0) for _ in range(5)] == [0, 1, 2, 3, 4]
        assert slot.claim_local(0) is None
        assert slot.claim_steal(0) == (1, 9)  # victim's tail, descending
        assert slot.claim_steal(0) == (1, 8)
        assert slot.claim_local(1) == 5  # owner still ascends from its head

    def test_completion_counter(self):
        arena = shm.TaskStealArena(max_workers=2, capacity=8)
        slot = arena.slot(3, num_workers=2, ntiles=4)
        assert not slot.finished()
        for _ in range(4):
            slot.mark_done()
        assert slot.finished()

    def test_slots_recycle_by_ordinal_tag(self):
        # With capacity 8 every level-0 ordinal maps to the same cell; a new
        # ordinal arriving on a recycled cell must re-seed the deck.
        arena = shm.TaskStealArena(max_workers=2, capacity=8)
        first = arena.slot(0, num_workers=2, ntiles=4)
        assert first.claim_local(0) == 0
        recycled = arena.slot(2, num_workers=2, ntiles=6)
        assert recycled.claim_local(0) == 0
        assert recycled.claim_steal(0) == (1, 5)

    def test_levels_keep_separate_decks(self):
        # The same ordinal at different team levels must never share a deck.
        arena = shm.TaskStealArena(max_workers=2, capacity=16)
        outer = arena.slot(0, num_workers=2, ntiles=4, level=0)
        inner = arena.slot(0, num_workers=2, ntiles=6, level=1)
        assert outer.claim_local(0) == 0
        assert inner.claim_local(0) == 0
        assert outer.claim_local(0) == 1
        assert inner.claim_steal(0) == (1, 5)

    def test_attach_is_idempotent_across_members(self):
        arena = shm.TaskStealArena(max_workers=2, capacity=8)
        one = arena.slot(1, num_workers=2, ntiles=4)
        assert one.claim_local(0) == 0
        # A sibling member attaching the same ordinal must not re-seed.
        again = arena.slot(1, num_workers=2, ntiles=4)
        assert again.claim_local(0) == 1

    def test_oversized_team_rejected(self):
        arena = shm.TaskStealArena(max_workers=2, capacity=8)
        with pytest.raises(ValueError):
            arena.slot(0, num_workers=3, ntiles=6)

    def test_reset_frees_all_slots(self):
        arena = shm.TaskStealArena(max_workers=2, capacity=8)
        slot = arena.slot(1, num_workers=2, ntiles=4)
        slot.mark_done(4)
        arena.reset()
        fresh = arena.slot(1, num_workers=2, ntiles=4)
        assert not fresh.finished()


class TestProcessTeamTasks:
    def test_spawned_closures_execute_within_their_member(self):
        """On a process team each member's spawns run in its own process."""
        array = shm.shared_zeros(3)
        try:
            def body():
                tid = ctx.get_thread_id()
                spawn_task(lambda: array.np.__setitem__(tid, tid + 1.0))
                task_wait(timeout=30)

            parallel_region(body, num_threads=3, backend="processes")
            assert np.asarray(array).tolist() == [1.0, 2.0, 3.0]
        finally:
            array.close()
