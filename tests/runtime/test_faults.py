"""Fault injection, fast failure detection, and region-level recovery.

Covers the fault subsystem end to end:

* ``AOMP_FAULTS`` spec parsing (:func:`repro.runtime.faults.parse_fault_spec`);
* deterministic injection at the member / chunk / barrier sites, with the
  backend-aware ``kill`` degradation for in-process members;
* the :class:`~repro.runtime.shm.HeartbeatArena` data plane;
* the SIGKILL regression the subsystem exists for: a worker process killed
  mid-region must surface a diagnosed ``WorkerProcessError`` in seconds (not
  the 120s barrier timeout), on both the fork-per-region path and the
  persistent pool (which must then self-heal);
* the ``on_failure="retry"|"degrade"`` recovery policies, including the
  ``retry_safe`` gate and the non-recoverable (application error) veto.

Process-killing scenarios run in tier-1 but stay under a couple of seconds;
the broader multi-fault scenarios carry the ``chaos`` marker and run in the
dedicated (non-blocking) CI job.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.runtime import context as ctx
from repro.runtime import faults, shm
from repro.runtime.backend import ProcessBackend, SerialBackend
from repro.runtime.barrier import BrokenBarrierError
from repro.runtime.exceptions import (
    BrokenTeamError,
    FaultSpecError,
    InjectedFault,
    WorkerProcessError,
)
from repro.runtime.faults import FaultPlan, FaultRule, parse_fault_spec, set_fault_plan
from repro.runtime.team import parallel_region
from repro.runtime.trace import EventKind
from repro.runtime.worksharing import run_for

requires_fork = pytest.mark.skipif(not shm.fork_available(), reason="process scenarios need fork")

#: generous bound for "fast" detection — the acceptance criterion is < 5s
#: against a 120s barrier timeout; observed latency is well under 1s.
DETECTION_BOUND = 5.0


@pytest.fixture(autouse=True)
def _isolated_fault_plan():
    """No fault plan leaks into or out of a test (conftest doesn't cover this)."""
    previous = set_fault_plan(None)
    yield
    set_fault_plan(previous)


@pytest.fixture
def process_backend():
    backend = ProcessBackend()
    yield backend
    backend.shutdown()


def install(spec: str) -> FaultPlan:
    plan = parse_fault_spec(spec)
    set_fault_plan(plan)
    return plan


class SharedFillBody:
    """Picklable ``process_safe`` SPMD owner writing disjoint shared slots.

    Pool dispatch requires a *bound method* of a ``process_safe`` owner
    (``body.run``); the fork path takes anything, including closures.
    """

    process_safe = True
    retry_safe = True

    def __init__(self, n: int) -> None:
        self.out = shm.shared_zeros(n)

    def run(self) -> None:
        run_for(self.fill, 0, len(self.out.view()), 1, loop_name="faults.fill")

    def fill(self, start: int, end: int, step: int) -> None:
        view = self.out.view()
        for i in range(start, end, step):
            view[i] = i * 2.0

    def expected(self) -> np.ndarray:
        return np.arange(len(self.out.view())) * 2.0

    def close(self) -> None:
        self.out.close()


class TestParseFaultSpec:
    def test_member_rule(self):
        plan = parse_fault_spec("raise:member=1,region=2")
        (rule,) = plan.rules
        assert (rule.action, rule.site, rule.member, rule.region) == ("raise", "member", 1, 2)
        assert rule.times == 1 and rule.p is None

    def test_chunk_and_barrier_selectors_pick_the_site(self):
        chunk, barrier = parse_fault_spec("raise:chunk=3;stall:barrier=1,seconds=0.5").rules
        assert (chunk.site, chunk.index) == ("chunk", 3)
        assert (barrier.site, barrier.index, barrier.seconds) == ("barrier", 1, 0.5)

    def test_seed_rule_and_multiple_rules(self):
        plan = parse_fault_spec("seed:42; raise:member=0,p=0.5; kill:member=1,times=3")
        assert plan.seed == 42
        assert [r.action for r in plan.rules] == ["raise", "kill"]
        assert plan.rules[1].times == 3

    def test_repr_round_trips_through_the_parser(self):
        plan = parse_fault_spec("stall:member=1,region=0,seconds=2,times=2")
        (reparsed,) = parse_fault_spec(repr(plan.rules[0])).rules
        original = plan.rules[0]
        for slot in ("action", "site", "member", "region", "index", "seconds", "times", "p"):
            assert getattr(reparsed, slot) == getattr(original, slot)

    @pytest.mark.parametrize(
        "spec",
        [
            "",  # no rules
            "explode:member=1",  # unknown action
            "raise:wat=1",  # unknown selector
            "raise:member",  # missing value
            "raise:member=x",  # non-integer
            "raise:p=nope",  # non-number
            "raise:chunk=1,barrier=2",  # two sites
            "seed:xyz",  # malformed seed
            "raise:times=0",  # times < 1
            "raise:p=1.5",  # p out of range
            "stall:seconds=-1",  # negative stall
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_rule_validation_direct(self):
        with pytest.raises(FaultSpecError):
            FaultRule("raise", site="nowhere")


class TestInjectionInProcess:
    """Thread/serial-backend injection: everything shares the master's process."""

    def test_raise_fires_on_selected_member_and_region(self):
        install("raise:member=1,region=0")
        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(lambda: None, num_threads=2, name="inject")
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert [(m, type(e)) for m, e in excinfo.value.failures] == [(1, InjectedFault)]
        # region=0 was consumed (times=1 default): the next region is clean.
        parallel_region(lambda: None, num_threads=2, name="inject-after")

    def test_kill_degrades_to_injected_fault_in_process(self):
        # Threads share the plan's origin pid; a real SIGKILL would take the
        # test process down, so the action must degrade to InjectedFault.
        install("kill:member=1,region=0")
        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(lambda: None, num_threads=2, name="kill-threads")
        cause = excinfo.value.__cause__
        assert isinstance(cause, InjectedFault)
        assert cause.action == "kill"

    def test_region_selector_skips_earlier_regions(self):
        install("raise:member=0,region=1")
        parallel_region(lambda: None, num_threads=2, name="region-0")
        with pytest.raises(BrokenTeamError):
            parallel_region(lambda: None, num_threads=2, name="region-1")

    def test_backend_selector(self):
        install("raise:member=0,backend=serial")
        parallel_region(lambda: None, num_threads=2, name="not-serial")  # threads: no match
        with pytest.raises(BrokenTeamError):
            parallel_region(lambda: None, num_threads=1, backend=SerialBackend(), name="serial")

    def test_chunk_site_counts_per_member_dispatches(self):
        # static_cyclic with chunk=2 over [0, 8) gives member 0 exactly two
        # dispatches ([0,2) then [4,6)) — deterministic, unlike dynamic.
        install("raise:chunk=1,member=0")
        seen = []

        def body():
            run_for(
                lambda s, e, st: seen.append((ctx.get_thread_id(), s, e)),
                0,
                8,
                1,
                schedule="static_cyclic",
                chunk=2,
            )

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=2, name="chunk-site")
        cause = excinfo.value.__cause__
        assert isinstance(cause, InjectedFault) and cause.site == "chunk"
        # member 0 completed exactly its first chunk before its 2nd dispatch fired
        assert [(s, e) for tid, s, e in seen if tid == 0] == [(0, 2)]

    def test_barrier_site_fires_on_nth_arrival(self):
        install("raise:barrier=1,member=1")

        def body():
            team = ctx.current_team()
            team.barrier(label="first")  # arrival 0: no fault
            team.barrier(label="second")  # arrival 1: member 1 faults

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=2, name="barrier-site")
        assert any(isinstance(e, InjectedFault) and e.site == "barrier" for _, e in excinfo.value.failures)

    def test_stall_delays_but_does_not_fail(self):
        install("stall:member=1,region=0,seconds=0.2")
        start = time.monotonic()
        parallel_region(lambda: None, num_threads=2, name="stall")
        assert time.monotonic() - start >= 0.2

    def test_times_bounds_firing(self):
        install("raise:member=1,times=2")
        for name in ("t0", "t1"):
            with pytest.raises(BrokenTeamError):
                parallel_region(lambda: None, num_threads=2, name=name)
        parallel_region(lambda: None, num_threads=2, name="t2")  # rule exhausted

    def test_seeded_probability_is_deterministic(self):
        def fired_pattern() -> list[bool]:
            plan = parse_fault_spec("seed:7;raise:member=0,times=100,p=0.5")
            pattern = []
            for _ in range(20):
                try:
                    plan.fire("member", member=0, region=0, backend="threads")
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        first, second = fired_pattern(), fired_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_fault_injected_trace_event(self, recorder):
        install("raise:member=1,region=0")
        with pytest.raises(BrokenTeamError):
            parallel_region(lambda: None, num_threads=2, name="traced")
        events = [e for e in recorder.events() if e.kind is EventKind.FAULT_INJECTED]
        assert len(events) == 1
        assert events[0].data["action"] == "raise"
        assert events[0].data["member"] == 1

    def test_env_spec_is_resolved_lazily(self, monkeypatch):
        monkeypatch.setenv("AOMP_FAULTS", "raise:member=0,region=0")
        faults.reset_fault_plan()
        try:
            assert faults.active()
            with pytest.raises(BrokenTeamError):
                parallel_region(lambda: None, num_threads=2, name="env-spec")
        finally:
            monkeypatch.delenv("AOMP_FAULTS")
            faults.reset_fault_plan()


class TestHeartbeatArena:
    def test_register_beat_and_age(self):
        arena = shm.HeartbeatArena(capacity=4)
        arena.register(2)
        assert arena.pid(2) == os.getpid()
        assert arena.member_for_pid(os.getpid()) == 2
        age = arena.age(2)
        assert age is not None and 0 <= age < 1.0
        assert arena.age(1) is None  # never registered

    def test_arrivals_accumulate_and_reset(self):
        arena = shm.HeartbeatArena(capacity=4)
        arena.register(0)
        arena.note_arrival(0)
        arena.note_arrival(0)
        arena.note_arrival(1)
        assert arena.arrivals(4) == [2, 1, 0, 0]
        arena.reset()
        assert arena.arrivals(4) == [0, 0, 0, 0]
        assert arena.pid(0) == 0

    def test_out_of_capacity_members_are_ignored(self):
        arena = shm.HeartbeatArena(capacity=2)
        arena.register(5)  # silently ignored, not an IndexError
        arena.beat(5)
        arena.note_arrival(5)
        assert arena.pid(5) == 0 and arena.age(5) is None

    def test_attach_to_existing_cells(self):
        arena = shm.HeartbeatArena(capacity=4)
        arena.register(1)
        attached = shm.HeartbeatArena(capacity=4, cells=arena.cells, fresh=False)
        assert attached.pid(1) == os.getpid()


class TestBarrierDiagnostics:
    def test_broken_barrier_carries_team_context(self):
        def body():
            team = ctx.current_team()
            if ctx.get_thread_id() == 1:
                raise ValueError("member 1 exploded")
            team.barrier(label="sync")

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=2, name="diagnosed")
        # Primary cause prefers the application error over the broken barrier.
        assert isinstance(excinfo.value.__cause__, ValueError)
        broken = [e for _, e in excinfo.value.failures if isinstance(e, BrokenBarrierError)]
        assert broken, "the member stuck at the barrier must be reported too"
        message = str(broken[0])
        assert "team 'diagnosed'" in message
        assert "arrivals by member" in message

    def test_broken_team_message_names_team_and_members(self):
        install("raise:member=1,region=0")
        with pytest.raises(BrokenTeamError, match=r"team 'roster'.*member 1.*InjectedFault"):
            parallel_region(lambda: None, num_threads=2, name="roster")


@requires_fork
class TestWorkerDeathForkPath:
    def test_sigkill_mid_region_is_diagnosed_fast(self, process_backend, recorder):
        """The headline regression: SIGKILL surfaces in seconds, fully named."""
        install("kill:member=1,region=0")
        marker = object()  # closure capture forces the fork-per-region path

        def body():
            assert marker is not None
            time.sleep(0.05)

        start = time.monotonic()
        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=3, backend=process_backend, name="fork-kill")
        elapsed = time.monotonic() - start
        assert elapsed < DETECTION_BOUND, f"detection took {elapsed:.1f}s"

        cause = excinfo.value.__cause__
        assert isinstance(cause, WorkerProcessError)
        assert cause.member == 1
        assert cause.pid is not None
        assert "SIGKILL" in str(cause)
        assert "team 'fork-kill'" in str(cause)

        dead = [e for e in recorder.events() if e.kind is EventKind.WORKER_DEAD]
        assert dead and dead[0].data["member"] == 1
        assert dead[0].data["signal"] == "SIGKILL"

    def test_survivors_of_a_sibling_death_still_report(self, process_backend):
        install("kill:member=1,region=0")
        marker = object()

        def body():
            assert marker is not None

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=4, backend=process_backend, name="survivors")
        by_member = dict(excinfo.value.failures)
        assert isinstance(by_member[1], WorkerProcessError)
        # Members 2 and 3 were alive: they must not be misdiagnosed as dead.
        for member in (2, 3):
            if member in by_member:  # reported a broken barrier, not a death
                assert not isinstance(by_member[member], WorkerProcessError)


@requires_fork
class TestWorkerDeathPoolPath:
    def test_pool_worker_sigkill_is_diagnosed_and_pool_heals(self, process_backend):
        body = SharedFillBody(32)
        try:
            install("kill:member=1,region=0")
            start = time.monotonic()
            with pytest.raises(BrokenTeamError) as excinfo:
                parallel_region(body.run, num_threads=3, backend=process_backend, name="pool-kill")
            elapsed = time.monotonic() - start
            assert elapsed < DETECTION_BOUND, f"detection took {elapsed:.1f}s"
            cause = excinfo.value.__cause__
            assert isinstance(cause, WorkerProcessError)
            assert "SIGKILL" in str(cause)

            # The backend must replace/heal the poisoned pool: the next region
            # on the same backend instance runs to completion.
            set_fault_plan(None)
            body.out.view()[:] = 0.0
            parallel_region(body.run, num_threads=3, backend=process_backend, name="pool-after")
            assert np.array_equal(body.out.view(), body.expected())
        finally:
            body.close()

    def test_heal_respawns_worker_killed_mid_region(self, process_backend):
        """A worker killed *in the body* holds no locks: heal replaces it in place."""
        body = SharedFillBody(16)
        try:
            install("kill:member=1,region=0")
            with pytest.raises(BrokenTeamError):
                parallel_region(body.run, num_threads=3, backend=process_backend, name="heal-prep")
            pool = process_backend._pool
            dead_pids = {proc.pid for proc in pool._procs if not proc.is_alive()}
            assert dead_pids and not pool.healthy
            assert pool.heal()
            assert pool.healthy
            assert dead_pids.isdisjoint(proc.pid for proc in pool._procs)
        finally:
            body.close()

    def test_heal_replaces_a_worker_killed_while_idle(self):
        from repro.runtime.procpool import PersistentProcessPool

        # An idle worker dies blocked inside SimpleQueue.get(), possibly
        # holding the queue's reader lock — heal replaces the queues and the
        # whole worker generation, so the poison cannot carry over.
        pool = PersistentProcessPool(2)
        try:
            victim = pool._procs[0]
            os.kill(victim.pid, 9)
            victim.join(timeout=5.0)
            assert not pool.healthy
            assert pool.heal()
            assert pool.healthy
            assert victim.pid not in {proc.pid for proc in pool._procs}
        finally:
            pool.shutdown()

    def test_heal_vetoes_a_poisoned_arena_lock(self):
        from repro.runtime.procpool import PersistentProcessPool

        pool = PersistentProcessPool(1)
        try:
            # Simulate a worker that died holding the claim arena's lock.
            pool.arena._lock.acquire()
            try:
                assert not pool.heal()
            finally:
                pool.arena._lock.release()
            assert pool.heal()
        finally:
            pool.shutdown()

    def test_heal_refuses_after_shutdown(self):
        from repro.runtime.procpool import PersistentProcessPool

        pool = PersistentProcessPool(1)
        pool.shutdown()
        assert not pool.heal()


class TestRecoveryPolicy:
    def test_invalid_policy_is_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            parallel_region(lambda: None, num_threads=2, on_failure="panic")

    def test_retry_reruns_to_clean_result(self, recorder):
        install("raise:member=1,region=0")
        runs = []

        def body():
            runs.append(ctx.get_thread_id())

        body.retry_safe = True
        parallel_region(body, num_threads=2, name="retry-ok", on_failure="retry")
        # first attempt faulted on member 1; the retry ran the full team.
        assert runs.count(1) == 1 and runs.count(0) == 2
        retries = [e for e in recorder.events() if e.kind is EventKind.REGION_RETRY]
        assert len(retries) == 1
        assert retries[0].data["action"] == "retry"

    def test_retry_requires_retry_safe(self):
        install("raise:member=1,region=0")
        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(lambda: None, num_threads=2, name="unsafe", on_failure="retry")
        assert any("retry_safe" in note for note in getattr(excinfo.value, "__notes__", []))

    def test_retry_safe_attribute_on_body_owner(self):
        install("raise:member=1,region=0")
        body = SharedFillBody(8)  # class sets retry_safe = True
        try:
            parallel_region(body.run, num_threads=2, name="owner-safe", on_failure="retry")
            assert np.array_equal(body.out.view(), body.expected())
        finally:
            body.close()

    def test_application_errors_are_not_retried(self):
        attempts = []

        def body():
            if ctx.get_thread_id() == 1:
                attempts.append(1)
                raise ValueError("a real bug")

        body.retry_safe = True
        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=2, name="app-error", on_failure="retry")
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert attempts == [1], "an application error must not be replayed"

    def test_retries_are_bounded(self):
        install("raise:member=1,times=99")  # fires on every attempt

        def body():
            pass

        body.retry_safe = True
        start = time.monotonic()
        with pytest.raises(BrokenTeamError):
            parallel_region(
                body, num_threads=2, name="bounded", on_failure="retry", max_retries=2, retry_backoff=0.01
            )
        assert time.monotonic() - start < DETECTION_BOUND
        plan = faults.current_plan()
        assert plan.rules[0].fired == 3  # initial attempt + 2 retries

    def test_degrade_walks_the_fallback_chain_to_serial(self, recorder):
        install("raise:member=1,times=99")  # any team with a member 1 faults
        witness = []

        def body():
            witness.append((ctx.get_thread_id(), ctx.get_num_team_threads()))

        body.retry_safe = True
        parallel_region(body, num_threads=2, name="degrade", on_failure="degrade", max_retries=0)
        assert witness[-1] == (0, 1), "only the serial team-of-one can finish"
        degrades = [
            e for e in recorder.events() if e.kind is EventKind.REGION_RETRY and e.data["action"] == "degrade"
        ]
        assert degrades, "the degrade decision must be traced"
        assert degrades[-1].data["backend"] == "serial"

    def test_policy_default_comes_from_config(self, monkeypatch):
        from repro.runtime.config import RuntimeConfig, set_config

        install("raise:member=1,region=0")
        set_config(RuntimeConfig(num_threads=2, on_failure="retry"))

        def body():
            pass

        body.retry_safe = True
        parallel_region(body, num_threads=2, name="config-default")  # no explicit policy


@requires_fork
@pytest.mark.chaos
class TestChaosScenarios:
    """Broader fault scenarios for the non-blocking CI chaos job."""

    def test_pool_retry_after_sigkill_matches_serial(self, process_backend):
        """Acceptance scenario: kill a pool member, retry, compare to serial."""
        body = SharedFillBody(128)
        try:
            install("kill:member=1,region=0")
            parallel_region(body.run, num_threads=4, backend=process_backend, name="chaos-retry", on_failure="retry")
            assert np.array_equal(body.out.view(), body.expected())
        finally:
            body.close()

    def test_repeated_kills_degrade_to_completion(self, process_backend):
        body = SharedFillBody(64)
        try:
            install("kill:member=1,times=99")
            parallel_region(
                body.run,
                num_threads=3,
                backend=process_backend,
                name="chaos-degrade",
                on_failure="degrade",
                max_retries=1,
                retry_backoff=0.01,
            )
            assert np.array_equal(body.out.view(), body.expected())
        finally:
            body.close()

    def test_two_simultaneous_deaths(self, process_backend):
        install("kill:member=1,region=0;kill:member=2,region=0")
        marker = object()

        def body():
            assert marker is not None
            time.sleep(0.05)

        start = time.monotonic()
        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=4, backend=process_backend, name="chaos-two")
        assert time.monotonic() - start < DETECTION_BOUND
        dead = [m for m, e in excinfo.value.failures if isinstance(e, WorkerProcessError)]
        assert set(dead) == {1, 2}

    def test_stalled_worker_hits_heartbeat_timeout(self, process_backend, monkeypatch):
        monkeypatch.setenv("AOMP_HEARTBEAT_TIMEOUT", "0.5")
        monkeypatch.setenv("AOMP_HEARTBEAT_INTERVAL", "0.1")
        install("stall:member=1,region=0,seconds=30")
        marker = object()

        def body():
            assert marker is not None
            team = ctx.current_team()
            team.barrier(label="rendezvous")

        start = time.monotonic()
        with pytest.raises(BrokenTeamError):
            parallel_region(body, num_threads=3, backend=process_backend, name="chaos-stall")
        assert time.monotonic() - start < DETECTION_BOUND


class TestMonitorTeardown:
    """Services cycle WorkerMonitors per drain/restart — teardown must be
    idempotent and must never leave dead collectors in the registry."""

    def _monitor(self, metrics: bool = True):
        import repro.obs.registry as obsreg
        from repro.runtime.faults import WorkerMonitor
        from repro.runtime.team import Team

        team = Team(2, region_id=0, name="monitor-teardown")
        team.metrics = metrics
        return WorkerMonitor(team, lambda: [], interval=0.05), obsreg

    def test_stop_without_start_is_a_no_op(self):
        monitor, _ = self._monitor()
        monitor.stop()  # must not raise, nothing was registered

    def test_double_stop_is_idempotent(self):
        monitor, obsreg = self._monitor()
        monitor.start()
        monitor.stop()
        monitor.stop()  # second stop: no raise, no double-unregister
        assert monitor._thread is None

    def test_double_start_does_not_orphan_a_thread(self):
        import threading

        monitor, _ = self._monitor(metrics=False)
        monitor.start()
        first = monitor._thread
        monitor.start()  # idempotent: keeps the running thread
        assert monitor._thread is first
        monitor.stop()
        assert not any(
            t.name == "aomp-monitor-monitor-teardown" and t.is_alive()
            for t in threading.enumerate()
        )

    def test_repeated_cycles_keep_the_collector_count_stable(self):
        monitor, obsreg = self._monitor()
        baseline = len(obsreg.get_registry()._collectors)
        for _ in range(5):
            monitor.start()
            assert len(obsreg.get_registry()._collectors) == baseline + 1
            monitor.stop()
            assert len(obsreg.get_registry()._collectors) == baseline
