"""Tests for teams, parallel regions, contexts and backends."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.runtime import context as ctx
from repro.runtime import shm
from repro.runtime.backend import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_by_name,
    get_backend,
    resolve_backend,
    set_backend,
)
from repro.runtime.config import config_override, set_num_threads
from repro.runtime.exceptions import BrokenTeamError
from repro.runtime.subinterp import subinterpreters_available
from repro.runtime.team import Team, parallel_region
from repro.runtime.trace import EventKind, TraceRecorder

#: every backend the conformance suite asserts identical behaviour on; the
#: subinterpreter entry skips on builds whose worker interpreters cannot
#: import numpy (the backend would just exercise its thread fallback there,
#: which the "threads" entry already covers).
CONFORMANCE_BACKENDS = (
    "serial",
    "threads",
    "processes",
    pytest.param(
        "subinterp",
        marks=pytest.mark.skipif(
            not subinterpreters_available(),
            reason="subinterpreter workers unavailable on this build",
        ),
    ),
)


class TestParallelRegion:
    def test_every_member_executes_body(self):
        seen = []
        lock = threading.Lock()

        def body():
            with lock:
                seen.append((ctx.get_thread_id(), threading.get_ident()))

        parallel_region(body, num_threads=4)
        ids = sorted(tid for tid, _ in seen)
        assert ids == [0, 1, 2, 3]
        # The master runs on the calling thread; workers run on spawned
        # threads (OS thread identifiers may be recycled once a worker exits,
        # so only the master/worker distinction is asserted).
        master_os_id = next(os_id for tid, os_id in seen if tid == 0)
        assert master_os_id == threading.get_ident()
        assert any(os_id != master_os_id for tid, os_id in seen if tid != 0)

    def test_master_result_returned(self):
        def body():
            return ctx.get_thread_id() * 10

        assert parallel_region(body, num_threads=3) == 0

    def test_default_team_size_from_config(self):
        set_num_threads(5)
        sizes = []
        lock = threading.Lock()

        def body():
            with lock:
                sizes.append(ctx.get_num_team_threads())

        parallel_region(body)
        assert sizes == [5] * 5

    def test_single_thread_region_runs_inline(self):
        def body():
            return (ctx.get_thread_id(), ctx.in_parallel(), threading.get_ident())

        tid, inside, os_id = parallel_region(body, num_threads=1)
        assert tid == 0 and inside is True
        assert os_id == threading.get_ident()

    def test_context_cleared_after_region(self):
        parallel_region(lambda: None, num_threads=2)
        assert ctx.current_context() is None
        assert not ctx.in_parallel()
        assert ctx.get_thread_id() == 0
        assert ctx.get_num_team_threads() == 1

    def test_member_exception_becomes_broken_team(self):
        def body():
            if ctx.get_thread_id() == 1:
                raise ValueError("boom")
            return "ok"

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=3)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_master_exception_becomes_broken_team(self):
        def body():
            if ctx.get_thread_id() == 0:
                raise RuntimeError("master failed")

        with pytest.raises(BrokenTeamError):
            parallel_region(body, num_threads=3)

    def test_team_barrier_synchronises_members(self):
        order = []
        lock = threading.Lock()

        def body():
            team = ctx.current_team()
            with lock:
                order.append(("before", ctx.get_thread_id()))
            team.barrier()
            with lock:
                order.append(("after", ctx.get_thread_id()))

        parallel_region(body, num_threads=4)
        phases = [phase for phase, _ in order]
        # All "before" entries precede all "after" entries.
        assert phases.index("after") == 4
        assert phases[:4] == ["before"] * 4

    def test_nested_regions_create_nested_teams(self):
        observed = []
        lock = threading.Lock()

        def inner():
            with lock:
                observed.append((ctx.current_context().nesting_level, ctx.get_num_team_threads()))

        def outer():
            parallel_region(inner, num_threads=2)

        parallel_region(outer, num_threads=2)
        assert len(observed) == 4  # 2 outer members x 2 inner members
        assert all(level == 1 and size == 2 for level, size in observed)

    def test_nested_disabled_clamps_to_one(self):
        observed = []
        lock = threading.Lock()

        def inner():
            with lock:
                observed.append(ctx.get_num_team_threads())

        def outer():
            parallel_region(inner, num_threads=3)

        with config_override(nested=False):
            parallel_region(outer, num_threads=2)
        assert observed == [1, 1]

    def test_return_values_of_all_members_recorded(self):
        def body():
            return ctx.get_thread_id() * 2

        recorder = TraceRecorder()
        # Use the low-level API through parallel_region and inspect the trace
        # to ensure every member ran; results live on the Team but the Team is
        # internal — the observable contract is the master result plus traces.
        result = parallel_region(body, num_threads=3, recorder=recorder)
        assert result == 0
        begins = recorder.events(EventKind.REGION_BEGIN)
        assert len(begins) == 1 and begins[0].data["size"] == 3

    def test_num_threads_argument_overrides_config(self):
        set_num_threads(2)
        sizes = set()
        lock = threading.Lock()

        def body():
            with lock:
                sizes.add(ctx.get_num_team_threads())

        parallel_region(body, num_threads=6)
        assert sizes == {6}


class TestBackends:
    def test_serial_backend_clamps_to_one_member(self):
        observed = []

        def body():
            observed.append((ctx.get_thread_id(), ctx.get_num_team_threads()))

        parallel_region(body, num_threads=4, backend=SerialBackend())
        assert observed == [(0, 1)]

    def test_serial_backend_allow_multi_runs_all_members_inline(self):
        observed = []

        def body():
            observed.append(ctx.get_thread_id())

        parallel_region(body, num_threads=3, backend=SerialBackend(allow_multi=True))
        assert observed == [0, 1, 2]

    def test_set_backend_globally(self):
        previous = set_backend(SerialBackend())
        try:
            assert isinstance(get_backend(), SerialBackend)
            observed = []
            parallel_region(lambda: observed.append(ctx.get_thread_id()), num_threads=4)
            assert observed == [0]
        finally:
            set_backend(previous)

    def test_thread_backend_daemon_flag(self):
        backend = ThreadBackend(daemon=False)
        assert backend.daemon is False


@pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
class TestRegionConformance:
    """Every backend must produce the same observable region behaviour.

    Observations go through shared memory or the master's return value:
    both survive a process boundary, so one assertion body serves all
    three backends (the paper's sequential-semantics claim extended to the
    backend axis).
    """

    def test_master_result_returned(self, backend_name):
        def body():
            return ctx.get_thread_id() * 10 + 7

        assert parallel_region(body, num_threads=4, backend=backend_name) == 7

    def test_all_members_execute_body(self, backend_name):
        with shm.SharedArray.zeros(4, np.int64) as seen:

            def body():
                seen[ctx.get_thread_id()] = 1

            parallel_region(body, num_threads=4, backend=backend_name)
            expected = 1 if backend_name == "serial" else 4  # serial clamps to a team of 1
            assert int(seen.np.sum()) == expected

    def test_member_exception_becomes_broken_team(self, backend_name):
        def body():
            if ctx.get_thread_id() == max(0, ctx.get_num_team_threads() - 1):
                raise ValueError("boom")
            return "ok"

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=3, backend=backend_name)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_barrier_separates_phases(self, backend_name):
        """After the barrier, every member observes every other member's phase-1 write."""
        with shm.SharedArray.zeros(4, np.int64) as stamps:

            def body():
                team = ctx.current_team()
                stamps[ctx.get_thread_id()] = 1
                team.barrier()
                assert int(stamps.np[: team.size].sum()) == team.size

            parallel_region(body, num_threads=4, backend=backend_name)

    def test_nested_region_runs_correctly(self, backend_name):
        """Nested regions degrade gracefully on every backend (processes fall back to threads)."""
        with shm.SharedArray.zeros(2, np.int64) as marks:

            def outer():
                outer_tid = ctx.get_thread_id()

                def inner():
                    # Each outer member stamps its own cell: no cross-process
                    # read-modify-write, so no cross-process lock needed.
                    if ctx.get_thread_id() == 0:
                        marks[outer_tid] += 1

                parallel_region(inner, num_threads=2)

            parallel_region(outer, num_threads=2, backend=backend_name)
            expected = 1 if backend_name == "serial" else 2  # one inner region per outer member
            assert int(marks.np.sum()) == expected

    def test_member_results_shipped_to_parent(self, backend_name):
        """Non-master return values are recorded on the team for every backend."""
        captured = {}

        def body():
            return ctx.get_thread_id() * 2

        # Observe the team object the region used by wrapping run_team once.
        backend = resolve_backend(backend_name)
        original_run_team = backend.run_team

        def spy(team, run_member, body_fn=None):
            captured["team"] = team
            return original_run_team(team, run_member, body_fn)

        backend.run_team = spy  # type: ignore[method-assign]
        try:
            parallel_region(body, num_threads=3, backend=backend)
        finally:
            backend.run_team = original_run_team  # type: ignore[method-assign]
        team = captured["team"]
        expected = {0: 0} if backend_name == "serial" else {0: 0, 1: 2, 2: 4}
        assert {m.thread_id: m.result for m in team.members} == expected


class TestProcessBackendStrategy:
    """Capability-driven fallbacks specific to the process backend."""

    def test_requires_shared_locals_falls_back_to_threads(self):
        """A region declaring shared-locals constructs runs on threads: plain
        Python list mutations are visible to the parent afterwards, which is
        only possible in a shared address space."""
        seen = []
        lock = threading.Lock()

        def body():
            with lock:
                seen.append(ctx.get_thread_id())

        with pytest.warns(RuntimeWarning, match="shared Python heap"):
            parallel_region(
                body, num_threads=4, backend=ProcessBackend(), requires_shared_locals=True
            )
        assert sorted(seen) == [0, 1, 2, 3]

    def test_fork_workers_do_not_share_python_heap(self):
        """Without shared memory, worker mutations stay in the worker process."""
        seen = []

        def body():
            seen.append(ctx.get_thread_id())

        parallel_region(body, num_threads=4, backend="processes")
        assert seen == [0]  # only the master (runs inline in the parent)

    def test_capability_flags(self):
        processes = backend_by_name("processes")
        assert processes.is_process_based and not processes.supports_shared_locals
        threads = backend_by_name("threads")
        assert not threads.is_process_based and threads.supports_shared_locals

    def test_single_thread_region_stays_inline(self):
        def body():
            return (ctx.get_thread_id(), threading.get_ident())

        tid, os_id = parallel_region(body, num_threads=1, backend="processes")
        assert tid == 0 and os_id == threading.get_ident()

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="valid backends"):
            parallel_region(lambda: None, num_threads=2, backend="gpu")

    def test_backend_resolution_from_config(self):
        previous = set_backend(None)  # drop the test fixture's explicit override
        try:
            with config_override(backend="serial"):
                assert get_backend().name == "serial"
            with config_override(backend="processes"):
                assert get_backend().name == "processes"
        finally:
            set_backend(previous)


@pytest.mark.nested
@pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
class TestNestedTeamConformance:
    """Two-level teams-of-teams behave identically on every backend.

    All scenarios run under the conftest watchdog: a deadlocked inner team
    fails the test instead of hanging tier-1.  Observations go through shared
    memory (they survive the process boundary), and the computed values are
    team-size independent, so one assertion body serves every backend.
    """

    def test_two_level_grid_results_identical(self, backend_name, watchdog):
        """Outer region workshares rows, inner regions workshare columns."""
        rows, cols = 6, 8
        with shm.SharedArray.zeros((rows, cols), np.float64) as grid:

            def fill_cols(start, end, step, row):
                for col in range(start, end, step):
                    grid[row, col] = row * 100.0 + col

            def inner(row):
                from repro.runtime.worksharing import run_for

                run_for(fill_cols, 0, cols, 1, row, schedule="dynamic")

            def fill_rows(start, end, step):
                for row in range(start, end, step):
                    parallel_region(lambda r=row: inner(r), num_threads=2)

            def outer():
                from repro.runtime.worksharing import run_for

                run_for(fill_rows, 0, rows, 1)

            watchdog(lambda: parallel_region(outer, num_threads=2, backend=backend_name))
            expected = np.add.outer(np.arange(rows) * 100.0, np.arange(cols, dtype=np.float64))
            assert np.array_equal(np.asarray(grid), expected)

    def test_process_outer_spawns_thread_sub_teams(self, backend_name, watchdog):
        """Nested regions form real inner teams on every backend (the process
        backend resolves them to thread sub-teams inside each worker)."""
        inner_size = 3
        with shm.SharedArray.zeros((4, inner_size), np.int64) as marks:

            def outer():
                outer_tid = ctx.get_thread_id()

                def inner():
                    marks[outer_tid, ctx.get_thread_id()] += 1

                # Ask for the same backend: nested process regions must
                # transparently resolve to in-process sub-teams.
                parallel_region(inner, num_threads=inner_size, backend=backend_name)

            watchdog(lambda: parallel_region(outer, num_threads=4, backend=backend_name))
            outer_size = 1 if backend_name == "serial" else 4
            inner_effective = 1 if backend_name == "serial" else inner_size
            filled = np.asarray(marks)[:outer_size, :inner_effective]
            assert int(np.asarray(marks).sum()) == outer_size * inner_effective
            assert (filled == 1).all()

    def test_member_paths_identify_every_leaf(self, backend_name, watchdog):
        """Per-level member ids (the member path) are unique across the tree."""
        with shm.SharedArray.zeros((2, 2), np.int64) as seen:

            def outer():
                def inner():
                    path = ctx.get_member_path()
                    assert len(path) == 2
                    # OpenMP numbering: level 0 is the initial serial level,
                    # level 1 the outermost region, get_level() the caller's.
                    assert ctx.get_ancestor_thread_id(0) == 0
                    assert path[0] == ctx.get_ancestor_thread_id(1)
                    assert path[1] == ctx.get_ancestor_thread_id(ctx.get_level())
                    assert path[1] == ctx.get_thread_id()
                    assert ctx.get_ancestor_thread_id(ctx.get_level() + 1) == -1
                    seen[path[0], path[1]] += 1

                parallel_region(inner, num_threads=2)

            watchdog(lambda: parallel_region(outer, num_threads=2, backend=backend_name))
            outer_size = 1 if backend_name == "serial" else 2
            assert np.asarray(seen)[:outer_size].tolist() == [[1, 1]] * outer_size

    def test_nested_region_trace_tree(self, backend_name, watchdog, recorder):
        """Inner REGION_BEGIN events link to their parent region and level.

        Worker-process trace buffers stay in the workers, so on the process
        backend the tree is asserted for the master's lane only (the one
        whose events reach the parent recorder).
        """

        def outer():
            parallel_region(lambda: None, num_threads=2, name="inner")

        watchdog(
            lambda: parallel_region(outer, num_threads=2, backend=backend_name, name="outer")
        )
        begins = recorder.events(EventKind.REGION_BEGIN)
        outers = [e for e in begins if e.data["name"] == "outer"]
        inners = [e for e in begins if e.data["name"] == "inner"]
        assert len(outers) == 1
        outer_event = outers[0]
        assert outer_event.data["level"] == 0
        assert outer_event.data["parent_region"] is None
        expected_inners = {"serial": 1, "threads": 2, "processes": 1}[backend_name]
        assert len(inners) == expected_inners
        for event in inners:
            assert event.data["level"] == 1
            assert event.data["parent_region"] == outer_event.region
            assert 0 <= event.data["parent_thread"] < outer_event.data["size"]

    def test_collapse_loop_inside_nested_team(self, backend_name, watchdog):
        """collapse(2) worksharing is usable from an inner team."""
        n = 4
        with shm.SharedArray.zeros((n, n), np.int64) as hits:

            def tile(r0, r1, rs, c0, c1, cs, base):
                for r in range(r0, r1, rs):
                    for c in range(c0, c1, cs):
                        hits[r, c] += base

            def inner():
                from repro.runtime.worksharing import run_for

                run_for(tile, 0, n, 1, 0, n, 1, 1, collapse=2, schedule="dynamic")

            def outer():
                if ctx.get_thread_id() == 0:
                    parallel_region(inner, num_threads=2)

            watchdog(lambda: parallel_region(outer, num_threads=2, backend=backend_name))
            assert (np.asarray(hits) == 1).all()


class TestNestedConfiguration:
    """AOMP_NESTED / AOMP_MAX_ACTIVE_LEVELS configuration semantics."""

    def test_max_active_levels_serialises_deeper_teams(self):
        observed = []
        lock = threading.Lock()

        def level2():
            with lock:
                observed.append(ctx.get_num_team_threads())

        def level1():
            parallel_region(level2, num_threads=3)

        with config_override(max_active_levels=1):
            parallel_region(lambda: parallel_region(level1, num_threads=3), num_threads=2)
        # Level 0 is active (size 2), so both deeper levels serialise.
        assert observed == [1, 1]

    def test_serialised_levels_do_not_consume_the_budget(self):
        """A team-of-one level is inactive: parallelism reappears below it."""
        sizes = []
        lock = threading.Lock()

        def leaf():
            with lock:
                sizes.append(ctx.get_num_team_threads())

        def middle():
            parallel_region(leaf, num_threads=2)

        with config_override(max_active_levels=2):
            parallel_region(
                lambda: parallel_region(middle, num_threads=1), num_threads=2
            )
        # Outer active (2) -> middle serialised (1, by request) -> leaf may
        # still be active because only one level of the budget is used.
        assert sorted(sizes) == [2, 2, 2, 2]

    def test_nested_env_seeding(self, monkeypatch):
        from repro.runtime.config import RuntimeConfig

        monkeypatch.setenv("AOMP_NESTED", "0")
        assert RuntimeConfig().nested is False
        monkeypatch.setenv("AOMP_NESTED", "true")
        assert RuntimeConfig().nested is True

    def test_max_active_levels_env_seeding(self, monkeypatch):
        from repro.runtime.config import RuntimeConfig

        monkeypatch.setenv("AOMP_MAX_ACTIVE_LEVELS", "2")
        assert RuntimeConfig().max_active_levels == 2
        monkeypatch.setenv("AOMP_MAX_ACTIVE_LEVELS", "not-a-number")
        with pytest.raises(ValueError, match="AOMP_MAX_ACTIVE_LEVELS"):
            RuntimeConfig()  # garbage is rejected loudly, not defaulted

    def test_omp_spellings_accepted(self, monkeypatch):
        from repro.runtime.config import RuntimeConfig

        monkeypatch.delenv("AOMP_NESTED", raising=False)
        monkeypatch.setenv("OMP_NESTED", "false")
        monkeypatch.setenv("OMP_MAX_ACTIVE_LEVELS", "3")
        config = RuntimeConfig()
        assert config.nested is False
        assert config.max_active_levels == 3


class TestTeamObject:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Team(0)

    def test_shared_slot_created_once(self):
        team = Team(2)
        created = []

        def factory():
            created.append(1)
            return object()

        first = team.shared_slot("key", factory)
        second = team.shared_slot("key", factory)
        assert first is second
        assert len(created) == 1

    def test_drop_slot(self):
        team = Team(2)
        team.shared_slot("key", list)
        team.drop_slot("key")
        fresh = team.shared_slot("key", dict)
        assert isinstance(fresh, dict)

    def test_region_trace_events(self, recorder):
        parallel_region(lambda: None, num_threads=2, name="traced")
        kinds = [e.kind for e in recorder.events()]
        assert EventKind.REGION_BEGIN in kinds
        assert EventKind.REGION_END in kinds
        work = recorder.events(EventKind.PHASE_WORK)
        assert len(work) == 2  # one per member
