"""Table-driven coverage of every ``AOMP_*`` environment variable.

Contract under test, uniformly for each variable:

* **default** — unset (or empty) yields the documented default;
* **valid** — a well-formed value parses to the documented Python value,
  including the ``OMP_*`` fallback spellings where one exists;
* **garbage** — a malformed value is rejected *loudly* with an error naming
  the exact variable the user set, never silently replaced by the default
  (a typo'd setting that does nothing is worse than a crash at import).

Two variables are deliberately deferred-but-loud instead of parse-at-import:
``AOMP_BACKEND`` (validity depends on the backend registry, which plugins
may extend after import) and ``AOMP_SCHEDULE`` (validated by
``parse_schedule_spec`` at loop execution).  Their garbage cases assert the
*use-site* rejection names the valid forms.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Callable

import pytest

from repro.runtime.barrier import _default_barrier_timeout
from repro.runtime.config import (
    DEFAULT_METRICS_BUCKETS,
    ON_FAILURE_POLICIES,
    RuntimeConfig,
    _default_backend,
    _default_max_active_levels,
    _default_max_retries,
    _default_metrics,
    _default_metrics_buckets,
    _default_metrics_port,
    _default_nested,
    _default_num_threads,
    _default_on_failure,
    _default_retry_backoff,
    _default_schedule,
    _default_tune_cache,
)
from repro.runtime.exceptions import FaultSpecError
from repro.runtime.faults import heartbeat_interval, heartbeat_timeout, parse_fault_spec
from repro.service.config import (
    _default_service_backend,
    _default_service_host,
    _default_service_port,
    _default_service_queue,
    _default_service_tenant_cap,
    _default_service_tune_dir,
    _default_service_workers,
)

ALL_VARS = (
    "AOMP_NUM_THREADS",
    "OMP_NUM_THREADS",
    "AOMP_BACKEND",
    "AOMP_SCHEDULE",
    "OMP_SCHEDULE",
    "AOMP_TUNE_CACHE",
    "AOMP_NESTED",
    "OMP_NESTED",
    "AOMP_MAX_ACTIVE_LEVELS",
    "OMP_MAX_ACTIVE_LEVELS",
    "AOMP_ON_FAILURE",
    "AOMP_MAX_RETRIES",
    "AOMP_RETRY_BACKOFF",
    "AOMP_BARRIER_TIMEOUT",
    "AOMP_HEARTBEAT_INTERVAL",
    "AOMP_HEARTBEAT_TIMEOUT",
    "AOMP_METRICS",
    "AOMP_METRICS_PORT",
    "AOMP_METRICS_BUCKETS",
    "AOMP_SERVICE_HOST",
    "AOMP_SERVICE_PORT",
    "AOMP_SERVICE_WORKERS",
    "AOMP_SERVICE_QUEUE",
    "AOMP_SERVICE_TENANT_CAP",
    "AOMP_SERVICE_BACKEND",
    "AOMP_SERVICE_TUNE_DIR",
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for var in ALL_VARS:
        monkeypatch.delenv(var, raising=False)


@dataclass(frozen=True)
class EnvVarCase:
    """One row of the parsing contract: how a variable defaults/parses/rejects."""

    var: str
    read: Callable[[], Any]
    default: Any
    valid: "tuple[tuple[str, Any], ...]"
    garbage: "tuple[str, ...]"
    #: (fallback_var, raw, expected) rows for the OMP_* spelling, if any.
    fallback: "tuple[tuple[str, str, Any], ...]" = field(default=())
    #: garbage values for the fallback spelling (error must blame *it*).
    fallback_garbage: "tuple[tuple[str, str], ...]" = field(default=())


_CPU_DEFAULT = max(1, os.cpu_count() or 1)

CASES = (
    EnvVarCase(
        var="AOMP_NUM_THREADS",
        read=_default_num_threads,
        default=_CPU_DEFAULT,
        valid=(("3", 3), ("1", 1), ("64", 64)),
        garbage=("three", "0", "-2", "2.5", "4 threads"),
        fallback=(("OMP_NUM_THREADS", "5", 5),),
        fallback_garbage=(("OMP_NUM_THREADS", "junk"),),
    ),
    EnvVarCase(
        var="AOMP_NESTED",
        read=_default_nested,
        default=True,
        valid=(
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("false", False), ("No", False), ("off", False),
        ),
        garbage=("maybe", "2", "enabled"),
        fallback=(("OMP_NESTED", "false", False),),
        fallback_garbage=(("OMP_NESTED", "nope"),),
    ),
    EnvVarCase(
        var="AOMP_MAX_ACTIVE_LEVELS",
        read=_default_max_active_levels,
        default=4,
        valid=(("1", 1), ("8", 8)),
        garbage=("not-a-number", "0", "-1", "1.5"),
        fallback=(("OMP_MAX_ACTIVE_LEVELS", "3", 3),),
        fallback_garbage=(("OMP_MAX_ACTIVE_LEVELS", "deep"),),
    ),
    EnvVarCase(
        var="AOMP_ON_FAILURE",
        read=_default_on_failure,
        default="raise",
        valid=tuple((policy, policy) for policy in ON_FAILURE_POLICIES) + (("RETRY", "retry"),),
        garbage=("panic", "raise,retry"),
    ),
    EnvVarCase(
        var="AOMP_MAX_RETRIES",
        read=_default_max_retries,
        default=2,
        valid=(("0", 0), ("7", 7)),
        garbage=("many", "-1", "1.5"),
    ),
    EnvVarCase(
        var="AOMP_RETRY_BACKOFF",
        read=_default_retry_backoff,
        default=0.05,
        valid=(("0", 0.0), ("0.5", 0.5), ("2", 2.0)),
        garbage=("soon", "-0.1", "1s"),
    ),
    EnvVarCase(
        var="AOMP_BARRIER_TIMEOUT",
        read=_default_barrier_timeout,
        default=120.0,
        valid=(("300", 300.0), ("0", None), ("-1", None)),  # <= 0 disables the bound
        garbage=("junk", "2m", ""),
    ),
    EnvVarCase(
        var="AOMP_HEARTBEAT_INTERVAL",
        read=heartbeat_interval,
        default=0.25,
        valid=(("0.5", 0.5), ("2", 2.0)),
        garbage=("fast", "0", "-1"),  # a poll period must be > 0
    ),
    EnvVarCase(
        var="AOMP_HEARTBEAT_TIMEOUT",
        read=heartbeat_timeout,
        default=None,
        valid=(("2.5", 2.5), ("0", None), ("-3", None)),  # <= 0 disables explicitly
        garbage=("stale", "1 minute"),
    ),
    EnvVarCase(
        var="AOMP_METRICS",
        read=_default_metrics,
        default=False,
        valid=(
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("false", False), ("No", False), ("off", False),
        ),
        garbage=("maybe", "2", "metrics"),
    ),
    EnvVarCase(
        var="AOMP_METRICS_PORT",
        read=_default_metrics_port,
        default=None,  # unset means "no scrape endpoint"
        valid=(("0", 0), ("9464", 9464), ("65535", 65535)),
        garbage=("default", "-1", "65536", "8080http"),
    ),
    EnvVarCase(
        var="AOMP_METRICS_BUCKETS",
        read=_default_metrics_buckets,
        default=DEFAULT_METRICS_BUCKETS,
        valid=(
            ("0.001,0.01,0.1", (0.001, 0.01, 0.1)),
            ("1e-6,1e-3,1", (1e-6, 1e-3, 1.0)),
            ("0.5", (0.5,)),
        ),
        # must be increasing, positive, numeric
        garbage=("fast,slow", "0.1,0.1", "1,0.5", "0,1", "-1,1"),
    ),
    EnvVarCase(
        var="AOMP_SERVICE_HOST",
        read=_default_service_host,
        default="127.0.0.1",
        valid=(("0.0.0.0", "0.0.0.0"), ("service.internal", "service.internal")),
        garbage=(),  # free-form bind address; bind errors surface at listen
    ),
    EnvVarCase(
        var="AOMP_SERVICE_PORT",
        read=_default_service_port,
        default=0,  # 0 = ephemeral, the safe always-works default
        valid=(("0", 0), ("9465", 9465), ("65535", 65535)),
        garbage=("default", "-1", "65536", "9465tcp"),
    ),
    EnvVarCase(
        var="AOMP_SERVICE_WORKERS",
        read=_default_service_workers,
        default=max(1, min(4, (os.cpu_count() or 2) // 2)),
        valid=(("1", 1), ("8", 8)),
        garbage=("many", "0", "-1", "2.5"),
    ),
    EnvVarCase(
        var="AOMP_SERVICE_QUEUE",
        read=_default_service_queue,
        default=64,
        valid=(("1", 1), ("256", 256)),
        garbage=("unbounded", "0", "-1", "1.5"),
    ),
    EnvVarCase(
        var="AOMP_SERVICE_TENANT_CAP",
        read=_default_service_tenant_cap,
        default=2,
        valid=(("1", 1), ("16", 16)),
        garbage=("fair", "0", "-1"),
    ),
    EnvVarCase(
        var="AOMP_SERVICE_BACKEND",
        read=_default_service_backend,
        default="",  # empty = inherit AOMP_BACKEND; resolved loudly at use
        valid=(("threads", "threads"), ("PROCESSES", "processes")),
        garbage=(),  # deferred-but-loud, like AOMP_BACKEND itself
    ),
    EnvVarCase(
        var="AOMP_SERVICE_TUNE_DIR",
        read=_default_service_tune_dir,
        default=None,  # unset disables persistent per-tenant caches
        valid=(("/tmp/aomp-tune", "/tmp/aomp-tune"),),
        garbage=(),  # free-form path; IO errors surface at persist time
    ),
)

_IDS = [case.var for case in CASES]


@pytest.mark.parametrize("case", CASES, ids=_IDS)
class TestEnvVarTable:
    def test_default_when_unset(self, case):
        assert case.read() == case.default

    def test_valid_values_parse(self, case, monkeypatch):
        for raw, expected in case.valid:
            monkeypatch.setenv(case.var, raw)
            assert case.read() == expected, f"{case.var}={raw!r}"

    def test_garbage_is_rejected_naming_the_variable(self, case, monkeypatch):
        for raw in case.garbage:
            if not raw:
                continue  # empty means unset, covered by the default test
            monkeypatch.setenv(case.var, raw)
            with pytest.raises(ValueError, match=re.escape(case.var)):
                case.read()
            monkeypatch.delenv(case.var)

    def test_empty_value_means_unset(self, case, monkeypatch):
        monkeypatch.setenv(case.var, "")
        assert case.read() == case.default

    def test_fallback_spelling(self, case, monkeypatch):
        for fallback_var, raw, expected in case.fallback:
            monkeypatch.setenv(fallback_var, raw)
            assert case.read() == expected
            monkeypatch.delenv(fallback_var)

    def test_fallback_garbage_blames_the_fallback_variable(self, case, monkeypatch):
        for fallback_var, raw in case.fallback_garbage:
            monkeypatch.setenv(fallback_var, raw)
            with pytest.raises(ValueError, match=re.escape(fallback_var)):
                case.read()
            monkeypatch.delenv(fallback_var)

    def test_primary_spelling_wins_over_fallback(self, case, monkeypatch):
        for fallback_var, _raw, _expected in case.fallback:
            raw, expected = case.valid[0]
            monkeypatch.setenv(case.var, raw)
            monkeypatch.setenv(fallback_var, "garbage-the-primary-must-shadow")
            assert case.read() == expected


class TestDeferredButLoudVariables:
    """Registry/loop-time validated variables still reject garbage loudly at use."""

    def test_backend_default_and_normalisation(self, monkeypatch):
        assert _default_backend() == "threads"
        monkeypatch.setenv("AOMP_BACKEND", "PROCESSES")
        assert _default_backend() == "processes"

    def test_backend_garbage_rejected_at_resolution(self):
        from repro.runtime.backend import backend_by_name

        with pytest.raises(ValueError, match="no-such-backend"):
            backend_by_name("no-such-backend")

    def test_schedule_default_and_chunk_spec(self, monkeypatch):
        from repro.runtime.scheduler import Schedule, parse_schedule_spec

        assert _default_schedule() == "static_block"
        monkeypatch.setenv("AOMP_SCHEDULE", "dynamic,4")
        schedule, chunk = parse_schedule_spec(_default_schedule())
        assert schedule is Schedule.DYNAMIC and chunk == 4

    def test_schedule_garbage_rejected_at_parse(self, monkeypatch):
        from repro.runtime.exceptions import SchedulingError
        from repro.runtime.scheduler import parse_schedule_spec

        monkeypatch.setenv("AOMP_SCHEDULE", "sometimes,maybe")
        with pytest.raises(SchedulingError):
            parse_schedule_spec(_default_schedule())

    def test_omp_schedule_fallback(self, monkeypatch):
        monkeypatch.setenv("OMP_SCHEDULE", "guided,8")
        assert _default_schedule() == "guided,8"

    def test_tune_cache_is_free_form(self, monkeypatch):
        assert _default_tune_cache() is None
        monkeypatch.setenv("AOMP_TUNE_CACHE", "/tmp/tune.json")
        assert _default_tune_cache() == "/tmp/tune.json"

    def test_faults_spec_garbage_rejected_at_parse(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("explode:everything")
        plan = parse_fault_spec("kill:member=1,region=0")
        assert plan is not None and len(plan.rules) == 1


class TestRuntimeConfigIntegration:
    def test_construction_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv("AOMP_NUM_THREADS", "3")
        monkeypatch.setenv("AOMP_ON_FAILURE", "degrade")
        monkeypatch.setenv("AOMP_MAX_RETRIES", "1")
        monkeypatch.setenv("AOMP_RETRY_BACKOFF", "0.01")
        config = RuntimeConfig()
        assert config.num_threads == 3
        assert config.on_failure == "degrade"
        assert config.max_retries == 1
        assert config.retry_backoff == 0.01

    def test_construction_fails_loudly_on_garbage(self, monkeypatch):
        monkeypatch.setenv("AOMP_RETRY_BACKOFF", "whenever")
        with pytest.raises(ValueError, match="AOMP_RETRY_BACKOFF"):
            RuntimeConfig()
