"""Tests for the shared-memory primitives behind the process backend."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.runtime import shm
from repro.runtime.barrier import BrokenBarrierError
from repro.runtime.shm import (
    ProcessDynamicState,
    ProcessGuidedState,
    SharedArray,
    SharedBarrier,
    SyncArena,
    as_shared,
    fork_available,
    is_shared,
    shared_zeros,
)


class TestSharedArray:
    def test_zeros_shape_dtype(self):
        with shared_zeros((3, 4), np.int64) as arr:
            assert arr.shape == (3, 4)
            assert arr.dtype == np.int64
            assert arr.np.sum() == 0

    def test_from_array_copies_data(self):
        source = np.arange(10, dtype=np.float64)
        with SharedArray.from_array(source) as arr:
            assert np.array_equal(arr.np, source)
            source[0] = 99  # the copy is independent of the source...
            assert arr[0] == 0.0

    def test_ndarray_like_surface(self):
        with shared_zeros((4, 4)) as arr:
            arr[1, 1:3] = 5.0
            assert arr[1].tolist() == [0.0, 5.0, 5.0, 0.0]
            assert float(arr.sum()) == 10.0
            assert np.allclose(np.asarray(arr)[1, 1:3], 5.0)
            assert len(arr) == 4

    def test_as_shared_passthrough_and_is_shared(self):
        with shared_zeros(4) as arr:
            assert as_shared(arr) is arr
            assert is_shared(arr)
        assert not is_shared(np.zeros(4))

    def test_pickle_reattaches_same_memory(self):
        with shared_zeros(8, np.int64) as arr:
            clone = pickle.loads(pickle.dumps(arr))
            try:
                clone[3] = 42
                assert arr[3] == 42  # same physical pages
            finally:
                clone.close()

    def test_close_is_idempotent(self):
        arr = shared_zeros(4)
        arr.close()
        arr.close()


class TestSharedBarrier:
    def test_wait_releases_all_parties(self):
        barrier = SharedBarrier(3)
        released = []
        lock = threading.Lock()

        def party():
            barrier.wait()
            with lock:
                released.append(1)

        threads = [threading.Thread(target=party) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(released) == 3

    def test_reusable_across_rounds(self):
        barrier = SharedBarrier(2)
        rounds = []

        def party():
            for r in range(3):
                barrier.wait()
                rounds.append(r)

        threads = [threading.Thread(target=party) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sorted(rounds) == [0, 0, 1, 1, 2, 2]

    def test_abort_breaks_waiters(self):
        barrier = SharedBarrier(2)
        errors = []

        def party():
            try:
                barrier.wait()
            except BrokenBarrierError:
                errors.append(1)

        thread = threading.Thread(target=party)
        thread.start()
        barrier.abort()
        thread.join(timeout=10)
        assert errors == [1]
        with pytest.raises(BrokenBarrierError):
            barrier.wait()

    def test_reset_restores_and_changes_parties(self):
        barrier = SharedBarrier(4)
        barrier.abort()
        barrier.reset(1)
        assert barrier.parties == 1 and not barrier.broken
        barrier.wait()  # single party: returns immediately

    def test_timeout_marks_broken(self):
        barrier = SharedBarrier(2, timeout=0.05)
        with pytest.raises(BrokenBarrierError):
            barrier.wait()

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            SharedBarrier(0)
        with pytest.raises(ValueError):
            SharedBarrier(2).reset(0)


class TestSyncArena:
    def test_fetch_add_is_cumulative(self):
        arena = SyncArena(capacity=8)
        slot = arena.slot(0)
        assert [slot.fetch_add() for _ in range(4)] == [0, 1, 2, 3]

    def test_slots_are_independent(self):
        arena = SyncArena(capacity=16)
        a, b = arena.slot(0), arena.slot(1)
        a.fetch_add()
        a.fetch_add()
        assert b.fetch_add() == 0

    def test_levels_are_independent(self):
        """The same ordinal at different team levels must never share a cell."""
        arena = SyncArena(capacity=16)
        outer = arena.slot(0, level=0)
        inner = arena.slot(0, level=1)
        outer.fetch_add()
        outer.fetch_add()
        assert inner.fetch_add() == 0

    def test_level_outside_namespace_rejected(self):
        arena = SyncArena(capacity=8)
        with pytest.raises(ValueError):
            arena.slot(0, level=shm.MAX_TEAM_LEVELS)

    def test_capacity_must_be_level_aligned(self):
        with pytest.raises(ValueError):
            SyncArena(capacity=7)

    def test_new_ordinal_resets_recycled_cell(self):
        # Ordinals recycle cells modulo capacity / MAX_TEAM_LEVELS per level:
        # with capacity 8 every level-0 ordinal lands on the same cell, and a
        # fresh ordinal must reset the recycled counter.
        arena = SyncArena(capacity=8)
        old = arena.slot(1)
        old.fetch_add()
        old.fetch_add()
        recycled = arena.slot(2)
        assert recycled.fetch_add() == 0

    def test_dynamic_state_exhausts_exactly(self):
        arena = SyncArena(capacity=8)
        state = ProcessDynamicState(arena.slot(0), total_chunks=3)
        claims = [state.next_chunk() for _ in range(5)]
        assert claims == [0, 1, 2, None, None]

    def test_guided_state_covers_range_with_decaying_chunks(self):
        arena = SyncArena(capacity=8)
        state = ProcessGuidedState(arena.slot(0), total=100, min_chunk=2, num_threads=4)
        claims = []
        while (claim := state.next_range()) is not None:
            claims.append(claim)
        # Exhaustive and disjoint:
        covered = sorted(i for begin, count in claims for i in range(begin, begin + count))
        assert covered == list(range(100))
        # Decaying chunk sizes, bounded below by min_chunk (except the tail,
        # which takes whatever remains — same as the in-process scheduler):
        sizes = [count for _, count in claims]
        assert sizes[0] == 25 and min(sizes[:-1]) >= 2
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


def test_fork_available_reports_platform_truth():
    import multiprocessing

    assert fork_available() == ("fork" in multiprocessing.get_all_start_methods())


def test_require_fork_is_silent_where_fork_exists():
    if fork_available():
        shm.require_fork("a component under test")  # must not raise


class TestSharedArrayLifecycle:
    """Regressions for the owner-only-unlink / atexit-symmetry contract."""

    def test_owner_close_unlinks_the_segment(self):
        arr = shared_zeros(4)
        name = arr.name
        arr.close()
        with pytest.raises(FileNotFoundError):
            shm._attach_shared_array(name, (4,), "<f8")

    def test_non_owner_close_never_unlinks(self):
        arr = shared_zeros(4)
        try:
            clone = pickle.loads(pickle.dumps(arr))
            clone.close()
            # The segment survives the attached party's close: a fresh attach
            # still reaches the same pages.
            again = pickle.loads(pickle.dumps(arr))
            try:
                again[0] = 7.0
                assert arr[0] == 7.0
            finally:
                again.close()
        finally:
            arr.close()

    def test_double_close_safe_for_owner_and_attached(self):
        arr = shared_zeros(4)
        clone = pickle.loads(pickle.dumps(arr))
        # Explicit close unregisters the atexit net for both roles, so the
        # second close (what the net would have done) must be a no-op.
        clone.close()
        clone.close()
        arr.close()
        arr.close()

    def test_interpreter_exit_without_close_leaves_no_residue(self):
        """The atexit net unlinks segments a raising body never closed."""
        import subprocess
        import sys
        from pathlib import Path

        if not Path("/dev/shm").is_dir():
            pytest.skip("no /dev/shm on this platform")
        src = str(Path(shm.__file__).resolve().parents[2])
        script = (
            "import sys\n"
            f"sys.path.insert(0, {src!r})\n"
            "from repro.runtime import shm\n"
            "arr = shm.shared_zeros(64)\n"
            "print(arr.name, flush=True)\n"
            "raise ValueError('body raised before cleanup')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, timeout=60
        )
        assert proc.returncode != 0
        name = proc.stdout.strip()
        assert name.startswith("aomp_")
        assert not (Path("/dev/shm") / name).exists()

    @pytest.mark.skipif(not fork_available(), reason="process backend needs fork")
    def test_failing_process_region_leaves_no_new_segments(self):
        from pathlib import Path

        from repro.runtime.team import parallel_region

        if not Path("/dev/shm").is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = {path.name for path in Path("/dev/shm").glob("aomp_*")}

        def body():
            raise ValueError("boom")

        with pytest.raises(Exception):
            parallel_region(body, num_threads=2, backend="processes")
        after = {path.name for path in Path("/dev/shm").glob("aomp_*")}
        assert after <= before
