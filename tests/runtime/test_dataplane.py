"""The data-plane abstraction and its socket transport.

Three layers of proof, cheapest first:

* **wire/unit** — framing round-trips, token auth, proxy-vs-real arena
  equivalence and RemoteArray coherence, all against an in-process
  :class:`~repro.runtime.dataplane.Coordinator` (no worker processes);
* **conformance** — Series and Crypt on ``backend="distributed"`` (real
  spawned, non-forked worker processes talking TCP) must produce results
  identical to ``backend="processes"`` across static/cyclic/dynamic
  schedules, which is the acceptance bar for the socket plane;
* **liveness** — a SIGKILLed remote member must surface as a diagnosed
  :class:`~repro.runtime.exceptions.WorkerProcessError` within seconds via
  the dropped-connection signal, not the barrier timeout.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time

import numpy as np
import pytest

from repro.runtime import dataplane, shm
from repro.runtime.backend import available_backends, backend_by_name
from repro.runtime.barrier import BrokenBarrierError
from repro.runtime.config import config_override
from repro.runtime.distributed import DistributedBackend
from repro.runtime.exceptions import BrokenTeamError, WorkerProcessError
from repro.runtime.faults import parse_fault_spec, set_fault_plan
from repro.runtime.team import parallel_region

#: acceptance bound for dead-member detection (against a 120s barrier timeout).
DETECTION_BOUND = 5.0

#: records calls made *by unpickling* — a module-level function pickles by
#: reference, so loading the payload anywhere in this process appends here.
_UNPICKLED: "list[str]" = []


def _record_unpickle(tag: str) -> None:
    _UNPICKLED.append(tag)


class _UnpicklePayload:
    """Stand-in RCE payload: deserialising it calls :func:`_record_unpickle`."""

    def __reduce__(self):
        return (_record_unpickle, ("pwned",))

#: schedules the conformance acceptance criterion names explicitly.
CONFORMANCE_SCHEDULES = ("static_block", "static_cyclic", "dynamic,2")


@pytest.fixture(autouse=True)
def _isolated_fault_plan():
    previous = set_fault_plan(None)
    yield
    set_fault_plan(previous)


@pytest.fixture
def coordinator():
    coord = dataplane.Coordinator(2)
    coord.start()
    yield coord
    coord.shutdown()


@pytest.fixture
def session(coordinator):
    sess = dataplane.WorkerSession(
        dataplane.LOOPBACK_HOST, coordinator.port, coordinator.token, 1, install_hook=False
    )
    yield sess
    sess.close()


class TestWireFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            for payload in (("ping",), ("op", 1, None, b"\x00bytes"), {"k": [1.5, "v"]}, 0):
                dataplane.send_message(a, payload)
                assert dataplane.recv_message(b) == payload
        finally:
            a.close()
            b.close()

    def test_closed_peer_is_eof(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(EOFError, match="closed"):
                dataplane.recv_message(b)
        finally:
            b.close()

    def test_oversized_frame_is_refused(self):
        """A corrupt length header must not make the receiver allocate GBs."""
        a, b = socket.socketpair()
        try:
            a.sendall(dataplane._HEADER.pack(dataplane.MAX_FRAME_BYTES + 1))
            with pytest.raises(ConnectionError, match="exceeds"):
                dataplane.recv_message(b)
        finally:
            a.close()
            b.close()


class TestShmPlane:
    """The shm plane is a constructor shim: components are the historical types."""

    def test_components_are_the_historical_types(self):
        plane = dataplane.ShmDataPlane()
        sync = plane.create_sync(3)
        assert isinstance(sync.barrier, shm.SharedBarrier)
        assert isinstance(sync.arena, shm.SyncArena)
        assert isinstance(sync.steal, shm.TaskStealArena)
        assert isinstance(sync.tune, shm.TunePlanArena)
        assert isinstance(sync.heartbeat, shm.HeartbeatArena)
        assert sync.barrier.parties == 3
        assert sync.pooled is False

    def test_pool_construction_knobs(self):
        sync = dataplane.ShmDataPlane().create_sync(1, pooled=True, max_workers=64)
        assert sync.pooled is True
        assert sync.steal.max_workers == 64

    def test_release_is_a_no_op(self):
        plane = dataplane.ShmDataPlane()
        plane.release_sync(plane.create_sync(2))  # must not raise


class TestCoordinatorRPC:
    def test_ping_echo(self, session):
        assert session.call("ping", "marco") == "marco"

    def test_pickled_frame_without_token_preamble_is_rejected(self, coordinator):
        """A peer that skips the raw-token preamble and leads with a pickled
        frame must be refused: its bytes are consumed as a (mismatching)
        preamble, never as pickle."""
        sock = socket.create_connection((dataplane.LOOPBACK_HOST, coordinator.port), timeout=5.0)
        try:
            dataplane.send_message(sock, ("ping", "x" * len(coordinator.token)))
            ok, payload = dataplane.recv_message(sock)
            assert not ok and isinstance(payload, PermissionError)
        finally:
            sock.close()

    def test_authenticated_hello_must_come_first(self, coordinator):
        sock = socket.create_connection((dataplane.LOOPBACK_HOST, coordinator.port), timeout=5.0)
        try:
            sock.sendall(coordinator.token.encode("ascii"))
            dataplane.send_message(sock, ("ping",))
            ok, payload = dataplane.recv_message(sock)
            assert not ok and isinstance(payload, PermissionError)
        finally:
            sock.close()

    def test_unauthenticated_bytes_are_never_unpickled(self, coordinator):
        """The high-severity guarantee: a crafted pickle from a peer without
        the token must be rejected *without* being deserialised — reaching
        ``pickle.loads`` would execute arbitrary reduce callables."""
        _UNPICKLED.clear()
        evil = pickle.dumps(_UnpicklePayload())
        frame = dataplane._HEADER.pack(len(evil)) + evil
        # Pad so the server's fixed-length preamble read completes even for a
        # small bomb; the padding is garbage, never a valid token.
        frame += b"\x00" * max(0, len(coordinator.token) - len(frame))
        sock = socket.create_connection((dataplane.LOOPBACK_HOST, coordinator.port), timeout=5.0)
        try:
            sock.sendall(frame)
            ok, payload = dataplane.recv_message(sock)
            assert not ok and isinstance(payload, PermissionError)
            assert _UNPICKLED == []  # the pickle was never loaded
        finally:
            sock.close()

    def test_bad_token_rejected_without_marking_a_member_lost(self, coordinator):
        with pytest.raises(PermissionError, match="token"):
            dataplane.WorkerSession(
                dataplane.LOOPBACK_HOST, coordinator.port, "wrong-token", 1, install_hook=False
            )
        # The impostor's disconnect must not be mistaken for a worker death.
        time.sleep(0.05)
        assert coordinator.lost_members() == []

    def test_unknown_op_raises_client_side(self, session):
        with pytest.raises(ValueError, match="unknown data-plane op"):
            session.call("no-such-op")

    def test_proxy_and_real_arena_share_one_counter(self, coordinator, session):
        proxy = dataplane.ProxySyncArena(session).slot(0)
        real = coordinator.arena.slot(0)
        assert proxy.fetch_add(4) == 0
        assert real.fetch_add(4) == 4
        assert proxy.fetch_add(0) == 8

    def test_claim_sequences_match_a_private_shm_arena(self, coordinator, session):
        """The coordinator hosts the *same* arena code, so any interleaved
        claim sequence through the proxy must equal the sequence a plain
        in-process arena produces — chunk boundaries identical by construction."""
        reference = shm.SyncArena(cells=[0] * (shm.SyncArena.CELLS_PER_SLOT * 256), lock=threading.Lock())
        proxy = dataplane.ProxySyncArena(session).slot(1)
        ref = reference.slot(1)
        for _ in range(10):
            assert proxy.claim_batch(3, 2, 25) == ref.claim_batch(3, 2, 25)
        proxy_g, ref_g = dataplane.ProxySyncArena(session).slot(2), reference.slot(2)
        while True:
            mine, theirs = proxy_g.claim_guided(100, 4, 2), ref_g.claim_guided(100, 4, 2)
            assert mine == theirs
            if mine is None:
                break

    def test_steal_slot_round_trip(self, coordinator, session):
        deck = dataplane.ProxyStealArena(session).slot(0, 2, 8)
        tiles = []
        while (tile := deck.claim_local(1)) is not None:
            tiles.append(tile)
            deck.mark_done()
        assert tiles == [4, 5, 6, 7]  # worker 1's half of the 8-tile deck
        stolen = deck.claim_steal(1)
        assert stolen is not None and stolen[0] == 0  # victim is worker 0
        assert deck.finished() is False

    def test_tune_slot_publish_and_read(self, coordinator, session):
        coordinator.tune.slot(0).publish((2, 7, 1, 3))
        assert dataplane.ProxyTuneArena(session).slot(0).read(timeout=2.0) == (2, 7, 1, 3)

    def test_rpcs_refresh_the_heartbeat(self, coordinator, session):
        session.call("ping")
        assert coordinator.heartbeat.pid(1) != 0
        age = coordinator.heartbeat.age(1)
        assert age is not None and age < 2.0


class TestRemoteArrayCoherence:
    def test_gather_flush_refresh(self, coordinator, session):
        master = shm.shared_zeros(8)
        try:
            master.np[:] = np.arange(8.0)
            mirror = session.attach_array(master.name, (8,), master.np.dtype.str)
            assert np.array_equal(np.asarray(mirror), np.arange(8.0))
            mirror[3] = 99.0
            session.flush_arrays()
            assert master.np[3] == 99.0
            master.np[0] = -1.0
            session.refresh_arrays()
            assert mirror[0] == -1.0 and mirror[3] == 99.0
        finally:
            coordinator.shutdown()  # release the master-side attachment first
            master.close()

    def test_refresh_keeps_buffer_identity(self, coordinator, session):
        """A kernel may cache ``arr.np`` across a barrier (valid under the shm
        plane, whose mapping is stable): refresh must overwrite in place, so
        the cached reference keeps seeing — and writing — the live mirror."""
        master = shm.shared_zeros(4)
        try:
            mirror = session.attach_array(master.name, (4,), master.np.dtype.str)
            cached = mirror.np  # what a kernel would hold across a barrier
            master.np[1] = 3.0
            session.refresh_arrays()
            assert mirror.np is cached
            assert cached[1] == 3.0  # refreshed data visible through the cache
            cached[2] = 8.0  # writes through the cache must flush
            session.flush_arrays()
            assert master.np[2] == 8.0
        finally:
            coordinator.shutdown()
            master.close()

    def test_untouched_elements_are_never_republished(self, coordinator, session):
        """The stale-overwrite guard: a concurrent master write to an element
        this worker never touched must survive the worker's flush."""
        master = shm.shared_zeros(4)
        try:
            mirror = session.attach_array(master.name, (4,), master.np.dtype.str)
            mirror[1] = 5.0  # worker's own chunk
            master.np[2] = 7.0  # master races ahead on a different element
            session.flush_arrays()
            assert master.np[1] == 5.0
            assert master.np[2] == 7.0  # not clobbered back to the stale 0.0
        finally:
            coordinator.shutdown()
            master.close()


class TestSocketBarrier:
    def test_master_and_remote_meet_at_the_barrier(self, coordinator, session):
        barrier = dataplane.SocketBarrier(session, 2)
        indices = []

        def master_side():
            indices.append(coordinator.barrier.wait())

        thread = threading.Thread(target=master_side)
        thread.start()
        indices.append(barrier.wait(timeout=10.0))
        thread.join(timeout=10.0)
        assert sorted(indices) == [0, 1]
        assert barrier.parties == 2 and barrier.broken is False
        # The handler counted the remote member's arrival server-side.
        assert coordinator.heartbeat.arrivals(2)[1] == 1

    def test_dropped_connection_marks_the_member_lost_and_breaks_the_barrier(self, coordinator, session):
        session._sock.close()  # simulate a worker dying mid-region
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not coordinator.lost_members():
            time.sleep(0.01)
        lost = coordinator.lost_members()
        assert lost and lost[0][0] == 1
        assert coordinator.barrier.broken

    def test_rpc_timeout_tracks_the_barrier_bound(self, monkeypatch):
        """A worker's socket timeout must sit above the *effective* barrier
        timeout (AOMP_BARRIER_TIMEOUT), not the 120s constant — and vanish
        entirely when the bound is disabled."""
        monkeypatch.setenv("AOMP_BARRIER_TIMEOUT", "600")
        assert dataplane._effective_rpc_timeout() == 600.0 + dataplane._RPC_GRACE
        monkeypatch.setenv("AOMP_BARRIER_TIMEOUT", "0")
        assert dataplane._effective_rpc_timeout() is None
        monkeypatch.delenv("AOMP_BARRIER_TIMEOUT")
        assert dataplane._effective_rpc_timeout() == 120.0 + dataplane._RPC_GRACE

    def test_session_socket_honours_a_raised_barrier_bound(self, coordinator, monkeypatch):
        monkeypatch.setenv("AOMP_BARRIER_TIMEOUT", "300")
        sess = dataplane.WorkerSession(
            dataplane.LOOPBACK_HOST, coordinator.port, coordinator.token, 1, install_hook=False
        )
        try:
            assert sess._sock.gettimeout() == 300.0 + dataplane._RPC_GRACE
        finally:
            sess.close()

    def test_reply_send_failure_after_result_does_not_break_the_barrier(self, coordinator, session):
        """A worker whose connection dies *after* its result frame was
        recorded is not lost: the payload is already queued, so aborting the
        barrier would only punish the survivors."""
        session.call("result", 1, b"payload", None)
        session._sock.close()
        time.sleep(0.2)  # let the handler observe the EOF
        assert coordinator.lost_members() == []
        assert not coordinator.barrier.broken
        assert coordinator.results.get_nowait() == (1, (b"payload", None))

    def test_timeout_message_names_the_socket_transport(self):
        barrier = dataplane.CyclicBarrier(2, timeout=0.05, transport=dataplane.SOCKET_TRANSPORT)
        with pytest.raises(BrokenBarrierError, match=r"socket data plane"):
            barrier.wait()

    def test_shm_barrier_timeout_names_its_plane(self):
        if not shm.fork_available():
            pytest.skip("shm barrier needs multiprocessing primitives")
        barrier = shm.SharedBarrier(2, timeout=0.05)
        with pytest.raises(BrokenBarrierError, match=r"shm data plane"):
            barrier.wait()


class TestTransportNamedDiagnostics:
    def test_require_fork_names_both_planes(self, monkeypatch):
        monkeypatch.setattr(shm, "fork_available", lambda: False)
        with pytest.raises(Exception, match="shm data plane") as excinfo:
            shm.require_fork("the persistent process pool")
        assert "socket data plane" in str(excinfo.value)  # points at the alternative


class TestDistributedBackendResolution:
    def test_registered_with_aliases(self):
        assert "distributed" in available_backends()
        backend = backend_by_name("distributed")
        assert isinstance(backend, DistributedBackend)
        for alias in ("dist", "sockets", "socket"):
            assert isinstance(backend_by_name(alias), DistributedBackend)

    def test_size_one_runs_inline(self):
        backend = DistributedBackend()
        assert backend.resolve_for_region(size=1, requires_shared_locals=False, nesting_level=0) is backend
        assert backend.create_process_sync(1, lambda: None) is None

    def test_nested_regions_fall_back_to_threads(self):
        backend = DistributedBackend()
        resolved = backend.resolve_for_region(size=2, requires_shared_locals=False, nesting_level=1)
        assert resolved is backend.fallback

    def test_shared_locals_warn_and_fall_back(self):
        backend = DistributedBackend()
        with pytest.warns(RuntimeWarning, match="DistributedBackend"):
            resolved = backend.resolve_for_region(size=2, requires_shared_locals=True, nesting_level=0)
        assert resolved is backend.fallback

    def test_unpicklable_body_warns_and_runs_on_threads(self):
        backend = DistributedBackend()
        lock = threading.Lock()  # closures over locks cannot pickle

        def body():
            with lock:
                return 42

        with pytest.warns(RuntimeWarning, match="DistributedBackend"):
            result = parallel_region(body, num_threads=2, backend=backend, name="dist-unpicklable")
        assert result == 42  # parallel_region returns the master's result


class _SharedFillBody:
    """Picklable ``process_safe`` SPMD owner writing disjoint shared slots."""

    process_safe = True
    retry_safe = True

    def __init__(self, n: int) -> None:
        self.out = shm.shared_zeros(n)

    def run(self) -> None:
        from repro.runtime.worksharing import run_for

        run_for(self.fill, 0, len(self.out.view()), 1, loop_name="dataplane.fill")

    def fill(self, start: int, end: int, step: int) -> None:
        view = self.out.view()
        for i in range(start, end, step):
            view[i] = i * 2.0

    def close(self) -> None:
        self.out.close()


class TestDistributedExecution:
    def test_spmd_loop_fills_a_shared_array(self):
        backend = DistributedBackend()
        body = _SharedFillBody(24)
        try:
            parallel_region(body.run, num_threads=3, backend=backend, name="dist-fill")
            assert np.array_equal(body.out.view(), np.arange(24) * 2.0)
        finally:
            body.close()

    @pytest.mark.parametrize("schedule", CONFORMANCE_SCHEDULES)
    def test_series_matches_processes(self, schedule):
        from repro.jgf.series import parallel as series

        with config_override(default_schedule=schedule):
            expected = series.run_backend("tiny", num_threads=3, backend="processes")
            actual = series.run_backend("tiny", num_threads=3, backend="distributed")
        assert actual.value == expected.value

    @pytest.mark.parametrize("schedule", CONFORMANCE_SCHEDULES)
    def test_crypt_matches_processes(self, schedule):
        from repro.jgf.crypt import parallel as crypt

        with config_override(default_schedule=schedule):
            expected = crypt.run_backend("tiny", num_threads=3, backend="processes")
            actual = crypt.run_backend("tiny", num_threads=3, backend="distributed")
        assert actual.value == expected.value


class TestDeadMemberDetection:
    def test_sigkilled_remote_member_is_diagnosed_fast(self):
        """Acceptance bar: socket close + missed beats -> WorkerProcessError
        well inside 5s, with the member and signal named."""
        set_fault_plan(parse_fault_spec("kill:member=1,region=0"))
        backend = DistributedBackend()
        body = _SharedFillBody(16)
        try:
            start = time.monotonic()
            with pytest.raises(BrokenTeamError) as excinfo:
                parallel_region(body.run, num_threads=3, backend=backend, name="dist-kill")
            elapsed = time.monotonic() - start
            assert elapsed < DETECTION_BOUND, f"detection took {elapsed:.1f}s"
            cause = excinfo.value.__cause__
            assert isinstance(cause, WorkerProcessError)
            assert cause.member == 1
            assert "SIGKILL" in str(cause)
        finally:
            set_fault_plan(None)
            body.close()

    def test_region_after_a_death_still_works(self):
        """Coordinators are per-region: a death must not poison the backend."""
        set_fault_plan(parse_fault_spec("kill:member=1,region=0"))
        backend = DistributedBackend()
        body = _SharedFillBody(8)
        try:
            with pytest.raises(BrokenTeamError):
                parallel_region(body.run, num_threads=3, backend=backend, name="dist-kill-1")
            set_fault_plan(None)
            body.out.view()[:] = 0.0
            parallel_region(body.run, num_threads=3, backend=backend, name="dist-after")
            assert np.array_equal(body.out.view(), np.arange(8) * 2.0)
        finally:
            body.close()
