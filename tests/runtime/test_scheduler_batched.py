"""Property tests for batched dynamic/guided claim states.

Dynamic and guided schedules claim **batches** of chunks per lock (or shm
arena) round-trip.  Whatever the range, chunk size, batch size and number of
interleaved consumers, the batched claims must still cover every iteration
exactly once, preserve chunk boundaries, and leave work for other consumers
until the range is exhausted (tail fallback).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.runtime.scheduler import (
    DynamicScheduler,
    GuidedScheduler,
    _DynamicLoopState,
)
from repro.runtime.shm import ProcessDynamicState, ProcessGuidedState, SyncArena

CASES = 40


def _random_cases(seed: int):
    rng = random.Random(seed)
    for _ in range(CASES):
        start = rng.randint(-40, 40)
        step = rng.choice([-5, -3, -2, -1, 1, 2, 3, 7])
        span = rng.randint(0, 150)
        end = start + (span if step > 0 else -span)
        num_threads = rng.randint(1, 8)
        chunk = rng.randint(1, 9)
        batch = rng.randint(1, 32)
        yield start, end, step, num_threads, chunk, batch


def _drain_interleaved(generators, rng: random.Random) -> list:
    """Round-robin-ish drain of several claim generators (random order)."""
    produced = []
    live = list(generators)
    while live:
        gen = rng.choice(live)
        piece = next(gen, None)
        if piece is None:
            live.remove(gen)
        else:
            produced.append(piece)
    return produced


def _assert_exact_coverage(pieces, start, end, step, label):
    indices = sorted(i for piece in pieces for i in piece.indices())
    assert indices == sorted(range(start, end, step)), f"{label}: coverage broken"


class TestBatchedDynamicClaims:
    def test_random_ranges_chunks_batches_cover_exactly_once(self):
        rng = random.Random(99)
        for start, end, step, num_threads, chunk, batch in _random_cases(seed=20260730):
            scheduler = DynamicScheduler(chunk=chunk, batch=batch)
            state = scheduler.new_state(start, end, step, num_threads)
            generators = [
                scheduler.chunks_from(state, start, end, step) for _ in range(num_threads)
            ]
            pieces = _drain_interleaved(generators, rng)
            label = f"dynamic[range=({start},{end},{step}) chunk={chunk} batch={batch} nt={num_threads}]"
            _assert_exact_coverage(pieces, start, end, step, label)
            # Chunk boundaries must be unchanged by batching: every chunk
            # starts on a multiple of `chunk` logical iterations and is full
            # sized except possibly the last.
            total = len(range(start, end, step))
            for piece in pieces:
                begin = (piece.start - start) // step
                assert begin % chunk == 0, f"{label}: misaligned chunk {piece}"
                assert piece.count == min(chunk, total - begin), f"{label}: resized chunk {piece}"

    def test_tail_fallback_leaves_work_for_other_consumers(self):
        """A single huge batch may not strip a shared state bare."""
        state = _DynamicLoopState(total_chunks=10, num_threads=2)
        first = state.next_chunks(limit=1000)
        assert first is not None
        _, count = first
        assert count <= 5  # at most remaining // 2
        assert state.next_chunks(1) is not None

    def test_batched_claims_are_consecutive_and_monotone(self):
        state = _DynamicLoopState(total_chunks=100, num_threads=1)
        cursor = 0
        while True:
            claim = state.next_chunks(7)
            if claim is None:
                break
            first, count = claim
            assert first == cursor
            assert 1 <= count <= 7
            cursor += count
        assert cursor == 100


class TestPartitionCacheBounds:
    def test_small_plans_are_cached_large_plans_are_not(self):
        from repro.runtime.scheduler import PARTITION_CACHE_MAX_CHUNKS, cached_partition

        small_a = cached_partition(4, 0, 64, 1, schedule="staticCyclic", chunk=1)
        small_b = cached_partition(4, 0, 64, 1, schedule="staticCyclic", chunk=1)
        assert small_a is small_b  # memo hit

        huge = PARTITION_CACHE_MAX_CHUNKS * 2
        big_a = cached_partition(4, 0, huge, 1, schedule="staticCyclic", chunk=1)
        big_b = cached_partition(4, 0, huge, 1, schedule="staticCyclic", chunk=1)
        assert big_a is not big_b  # built fresh, not pinned in the LRU
        assert sum(len(chunks) for chunks in big_a) == huge

    def test_invalid_chunk_raises_scheduling_error_not_zero_division(self):
        from repro.runtime.exceptions import SchedulingError
        from repro.runtime.scheduler import cached_partition

        with pytest.raises(SchedulingError):
            cached_partition(4, 0, 100, 1, schedule="staticCyclic", chunk=0)


class TestMemoisedSchedulers:
    def test_make_scheduler_returns_shared_instance(self):
        from repro.runtime.scheduler import make_scheduler

        assert make_scheduler("dynamic", chunk=3) is make_scheduler("dynamic", chunk=3)
        assert make_scheduler("dynamic", chunk=3) is not make_scheduler("dynamic", chunk=4)

    def test_shared_instances_refuse_mutation(self):
        from repro.runtime.scheduler import make_scheduler

        shared = make_scheduler("dynamic", chunk=3)
        with pytest.raises(AttributeError, match="shared and immutable"):
            shared.chunk = 8
        assert shared.chunk == 3
        # Directly constructed schedulers stay user-configurable.
        own = DynamicScheduler(chunk=3)
        own.chunk = 8
        assert own.chunk == 8


class TestBatchedGuidedClaims:
    def test_random_ranges_cover_exactly_once(self):
        rng = random.Random(7)
        for start, end, step, num_threads, chunk, batch in _random_cases(seed=424242):
            scheduler = GuidedScheduler(min_chunk=chunk, batch=batch)
            state = scheduler.new_guided_state(start, end, step, num_threads)
            generators = [
                scheduler.chunks_from_guided(state, start, end, step) for _ in range(num_threads)
            ]
            pieces = _drain_interleaved(generators, rng)
            label = f"guided[range=({start},{end},{step}) min={chunk} batch={batch} nt={num_threads}]"
            _assert_exact_coverage(pieces, start, end, step, label)

    def test_tail_fallback_leaves_blocks_for_other_consumers(self):
        """One batch may not strip the min_chunk tail bare (mirrors dynamic)."""
        from repro.runtime.scheduler import _GuidedLoopState

        # 8 threads, min_chunk=64, 511 iterations left: decay has bottomed
        # out, the tail holds ~8 blocks — a huge batch must leave some.
        state = _GuidedLoopState(total=511, min_chunk=64, num_threads=8)
        blocks = state.next_ranges(limit=1000)
        assert blocks is not None
        assert len(blocks) <= 3  # at most remaining_blocks // num_threads-ish
        assert state.next_ranges(1) is not None

    def test_block_boundaries_match_unbatched_claiming(self):
        """Batching must not change the guided decay sequence."""
        total, min_chunk, num_threads = 137, 3, 4
        unbatched = GuidedScheduler(min_chunk=min_chunk, batch=1)
        batched = GuidedScheduler(min_chunk=min_chunk, batch=8)
        seq_a = [
            (piece.start, piece.end)
            for piece in unbatched.chunks_for(0, num_threads, 0, total, 1)
        ]
        seq_b = [
            (piece.start, piece.end)
            for piece in batched.chunks_for(0, num_threads, 0, total, 1)
        ]
        assert seq_a == seq_b


class TestArenaBatchedClaims:
    """The shm arena states must behave exactly like the in-process ones."""

    @pytest.fixture(scope="class")
    def arena(self):
        return SyncArena(capacity=64)

    _ordinals = itertools.count()

    def test_dynamic_arena_matches_in_process_coverage(self, arena):
        rng = random.Random(5)
        for start, end, step, num_threads, chunk, batch in _random_cases(seed=31337):
            scheduler = DynamicScheduler(chunk=chunk, batch=batch)
            total = len(range(start, end, step))
            total_chunks = (total + chunk - 1) // chunk
            state = ProcessDynamicState(arena.slot(next(self._ordinals)), total_chunks, num_threads)
            generators = [
                scheduler.chunks_from(state, start, end, step) for _ in range(num_threads)
            ]
            pieces = _drain_interleaved(generators, rng)
            _assert_exact_coverage(
                pieces, start, end, step, f"arena-dynamic[({start},{end},{step})x{chunk}b{batch}]"
            )

    def test_guided_arena_matches_in_process_boundaries(self, arena):
        rng = random.Random(6)
        for start, end, step, num_threads, chunk, batch in _random_cases(seed=2718):
            scheduler = GuidedScheduler(min_chunk=chunk, batch=batch)
            total = len(range(start, end, step))
            state = ProcessGuidedState(arena.slot(next(self._ordinals)), total, chunk, num_threads)
            generators = [
                scheduler.chunks_from_guided(state, start, end, step) for _ in range(num_threads)
            ]
            pieces = _drain_interleaved(generators, rng)
            _assert_exact_coverage(
                pieces, start, end, step, f"arena-guided[({start},{end},{step})x{chunk}b{batch}]"
            )

    def test_arena_single_consumer_sequence_equals_lock_state(self, arena):
        """Same claims from the arena and the threading.Lock state."""
        total_chunks, num_threads, batch = 53, 3, 8
        lock_state = _DynamicLoopState(total_chunks, num_threads)
        arena_state = ProcessDynamicState(arena.slot(next(self._ordinals)), total_chunks, num_threads)
        while True:
            a = lock_state.next_chunks(batch)
            b = arena_state.next_chunks(batch)
            assert a == b
            if a is None:
                break
