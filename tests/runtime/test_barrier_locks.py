"""Tests for the cyclic barrier, lock registry, RW lock and striped locks."""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime.barrier import BrokenBarrierError, CyclicBarrier
from repro.runtime.locks import LockRegistry, ReadWriteLock, StripedLocks


class TestCyclicBarrier:
    def test_requires_positive_parties(self):
        with pytest.raises(ValueError):
            CyclicBarrier(0)

    def test_single_party_never_blocks(self):
        barrier = CyclicBarrier(1)
        for _ in range(5):
            assert barrier.wait(timeout=1) == 0

    def test_releases_all_parties(self):
        barrier = CyclicBarrier(3)
        released = []
        lock = threading.Lock()

        def worker():
            barrier.wait(timeout=5)
            with lock:
                released.append(threading.get_ident())

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        assert released == []  # nobody released until the last party arrives
        barrier.wait(timeout=5)
        for t in threads:
            t.join(timeout=5)
        assert len(released) == 2

    def test_reusable_across_rounds(self):
        barrier = CyclicBarrier(2)
        counter = {"rounds": 0}

        def worker():
            for _ in range(10):
                barrier.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        for _ in range(10):
            barrier.wait(timeout=5)
            counter["rounds"] += 1
        thread.join(timeout=5)
        assert counter["rounds"] == 10

    def test_barrier_action_runs_once_per_round(self):
        actions = []
        barrier = CyclicBarrier(2, action=lambda: actions.append(1))

        def worker():
            for _ in range(3):
                barrier.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        for _ in range(3):
            barrier.wait(timeout=5)
        thread.join(timeout=5)
        assert len(actions) == 3

    def test_abort_wakes_waiters_with_error(self):
        barrier = CyclicBarrier(2)
        failures = []

        def worker():
            try:
                barrier.wait(timeout=5)
            except BrokenBarrierError:
                failures.append(True)

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.05)
        barrier.abort()
        thread.join(timeout=5)
        assert failures == [True]
        assert barrier.broken
        with pytest.raises(BrokenBarrierError):
            barrier.wait(timeout=1)

    def test_timeout_breaks_barrier(self):
        barrier = CyclicBarrier(2)
        with pytest.raises(BrokenBarrierError):
            barrier.wait(timeout=0.05)

    def test_reset_releases_waiters_and_reenables(self):
        barrier = CyclicBarrier(2)
        outcomes = []

        def worker():
            try:
                barrier.wait(timeout=5)
                outcomes.append("released")
            except BrokenBarrierError:
                outcomes.append("broken")

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.05)
        barrier.reset()
        thread.join(timeout=5)
        assert outcomes == ["broken"]
        assert not barrier.broken
        # Fresh rounds work again.
        t2 = threading.Thread(target=lambda: barrier.wait(timeout=5))
        t2.start()
        barrier.wait(timeout=5)
        t2.join(timeout=5)

    def test_arrival_index(self):
        barrier = CyclicBarrier(2)
        results = {}

        def worker():
            results["worker"] = barrier.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.05)
        results["main"] = barrier.wait(timeout=5)
        thread.join(timeout=5)
        assert sorted(results.values()) == [0, 1]


class TestLockRegistry:
    def test_same_key_same_lock(self):
        registry = LockRegistry()
        assert registry.get("a") is registry.get("a")
        assert registry.get("a") is not registry.get("b")
        assert len(registry) == 2
        assert "a" in registry

    def test_object_locks_are_per_object(self):
        registry = LockRegistry()
        x, y = object(), object()
        assert registry.for_object(x) is registry.for_object(x)
        assert registry.for_object(x) is not registry.for_object(y)

    def test_named_lock_provides_mutual_exclusion(self):
        registry = LockRegistry()
        counter = {"value": 0}

        def work():
            for _ in range(2000):
                with registry.acquire("shared"):
                    counter["value"] += 1

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["value"] == 8000

    def test_acquire_reports_wait_time(self):
        registry = LockRegistry()
        lock = registry.get("slow")
        lock.acquire()
        waited_holder = {}

        def contender():
            with registry.acquire("slow") as waited:
                waited_holder["waited"] = waited

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.1)
        lock.release()
        thread.join(timeout=5)
        assert waited_holder["waited"] >= 0.05

    def test_clear(self):
        registry = LockRegistry()
        registry.get("x")
        registry.clear()
        assert len(registry) == 0


class TestReadWriteLock:
    def test_multiple_readers_allowed(self):
        rw = ReadWriteLock()
        active = []
        lock = threading.Lock()
        done = threading.Event()

        def reader():
            with rw.read():
                with lock:
                    active.append(1)
                done.wait(2)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.1)
        assert rw.readers == 3
        done.set()
        for t in threads:
            t.join(timeout=5)
        assert rw.readers == 0

    def test_writer_excludes_readers(self):
        rw = ReadWriteLock()
        events = []
        lock = threading.Lock()
        rw.acquire_write()

        def reader():
            with rw.read():
                with lock:
                    events.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        assert events == []
        rw.release_write()
        thread.join(timeout=5)
        assert events == ["read"]

    def test_writer_waits_for_readers(self):
        rw = ReadWriteLock()
        rw.acquire_read()
        acquired = threading.Event()

        def writer():
            with rw.write():
                acquired.set()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        rw.release_read()
        thread.join(timeout=5)
        assert acquired.is_set()

    def test_unbalanced_release_raises(self):
        rw = ReadWriteLock()
        with pytest.raises(RuntimeError):
            rw.release_read()
        with pytest.raises(RuntimeError):
            rw.release_write()

    def test_read_write_counters_consistent(self):
        rw = ReadWriteLock()
        with rw.write():
            assert rw.writing
        assert not rw.writing


class TestStripedLocks:
    def test_validates_stripes(self):
        with pytest.raises(ValueError):
            StripedLocks(0)

    def test_same_index_same_lock(self):
        striped = StripedLocks(16)
        assert striped.lock_for(3) is striped.lock_for(3)
        assert len(striped) == 16

    def test_concurrent_updates_are_safe(self):
        striped = StripedLocks(8)
        values = [0] * 32

        def work(offset):
            for i in range(32):
                with striped.acquire(i):
                    values[i] += 1

        threads = [threading.Thread(target=work, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert values == [4] * 32


class TestBarrierTimeoutConfig:
    def test_default_timeout_bounds_waits(self, monkeypatch):
        from repro.runtime.barrier import DEFAULT_BARRIER_TIMEOUT, CyclicBarrier

        monkeypatch.delenv("AOMP_BARRIER_TIMEOUT", raising=False)
        assert DEFAULT_BARRIER_TIMEOUT == 120.0
        assert CyclicBarrier(2)._timeout == DEFAULT_BARRIER_TIMEOUT  # noqa: SLF001

    def test_env_knob_read_at_construction(self, monkeypatch):
        from repro.runtime.barrier import _default_barrier_timeout, CyclicBarrier

        monkeypatch.setenv("AOMP_BARRIER_TIMEOUT", "300")
        assert _default_barrier_timeout() == 300.0
        assert CyclicBarrier(2)._timeout == 300.0  # noqa: SLF001 - not frozen at import
        monkeypatch.setenv("AOMP_BARRIER_TIMEOUT", "0")
        assert _default_barrier_timeout() is None  # disabled: wait forever
        monkeypatch.setenv("AOMP_BARRIER_TIMEOUT", "junk")
        with pytest.raises(ValueError, match="AOMP_BARRIER_TIMEOUT"):
            _default_barrier_timeout()

    def test_explicit_none_waits_past_default(self):
        """timeout=None is a true unbounded wait, distinct from the default."""
        from repro.runtime.barrier import CyclicBarrier

        barrier = CyclicBarrier(2, timeout=None)
        assert barrier._timeout is None  # noqa: SLF001

    def test_short_timeout_breaks_deadlocked_round(self):
        import pytest as _pytest

        from repro.runtime.barrier import BrokenBarrierError, CyclicBarrier

        barrier = CyclicBarrier(2, timeout=0.05)
        with _pytest.raises(BrokenBarrierError, match="timed out"):
            barrier.wait()
