"""Tests for the buffered trace recorder.

Covers the hot-path rewrite of :mod:`repro.runtime.trace`:

* per-thread append buffers must be observationally equivalent to the seed's
  single global-locked list (the ``LockedTraceRecorder`` reference below) —
  same kinds, same payloads, same per-thread order — on every backend;
* ``merge_traces`` must not interleave events of unrelated recorders (their
  ``seq`` counters are independent);
* the recorder API surface (events/clear/len/iter, filters, lazy payloads).
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime import context as ctx
from repro.runtime.critical import critical_call
from repro.runtime.team import parallel_region
from repro.runtime.trace import (
    EventKind,
    TraceEvent,
    TraceRecorder,
    event_to_dict,
    events_from_dicts,
    merge_traces,
    set_global_recorder,
)
from repro.runtime.worksharing import run_for

CONFORMANCE_BACKENDS = ("serial", "threads", "processes")

#: trace payload fields that carry wall-clock measurements (non-deterministic).
_TIMING_FIELDS = ("elapsed", "waited", "held")


class LockedTraceRecorder(TraceRecorder):
    """Reference recorder: the seed's single list guarded by a global lock.

    Kept here (not in the library) as the behavioural yardstick for the
    buffered recorder's conformance suite.
    """

    def __init__(self) -> None:
        super().__init__()
        self._ref_events: list[TraceEvent] = []
        self._ref_lock = threading.Lock()

    def record(self, kind: EventKind, region: int, thread_id: int, **data):
        event = TraceEvent(kind, region, thread_id, next(self._seq), dict(data) if data else None)
        with self._ref_lock:
            self._ref_events.append(event)
        return event

    def _snapshot(self) -> list[TraceEvent]:
        with self._ref_lock:
            return list(self._ref_events)

    def clear(self) -> None:
        with self._ref_lock:
            self._ref_events.clear()

    def __len__(self) -> int:
        with self._ref_lock:
            return len(self._ref_events)


def _normalise(event: TraceEvent) -> tuple:
    """Project an event onto its deterministic content."""
    data = {k: v for k, v in event.data.items() if k not in _TIMING_FIELDS}
    return (event.kind, event.region, event.thread_id, tuple(sorted(data.items())))


def _per_thread_streams(recorder: TraceRecorder) -> dict[int, list[tuple]]:
    streams: dict[int, list[tuple]] = {}
    for event in recorder.events():
        streams.setdefault(event.thread_id, []).append(_normalise(event))
    return streams


def _workload(recorder: TraceRecorder, backend: str) -> None:
    """A deterministic region exercising chunks, barriers and criticals."""

    def loop(start, end, step):
        total = 0
        for i in range(start, end, step):
            total += i
        return total

    def body():
        run_for(loop, 0, 24, 1, schedule="staticBlock", loop_name="block")
        run_for(loop, 0, 17, 2, schedule="staticCyclic", chunk=2, loop_name="cyclic")
        team = ctx.current_team()
        team.barrier(label="explicit")
        if backend != "processes":
            critical_call(lambda: None, key="trace-conformance")

    parallel_region(body, num_threads=3, backend=backend, recorder=recorder, name="trace-conf")


class TestBufferedRecorderConformance:
    """Buffered recorder ≡ seed's locked recorder, per backend."""

    @pytest.mark.parametrize("backend", CONFORMANCE_BACKENDS)
    def test_event_for_event_equivalence(self, backend):
        reference = LockedTraceRecorder()
        buffered = TraceRecorder()
        _workload(reference, backend)
        _workload(buffered, backend)

        ref_streams = _per_thread_streams(reference)
        buf_streams = _per_thread_streams(buffered)
        assert set(ref_streams) == set(buf_streams)
        for thread_id, ref_stream in ref_streams.items():
            assert buf_streams[thread_id] == ref_stream, (
                f"backend {backend}: thread {thread_id} event stream diverged"
            )

    def test_threaded_static_trace_is_complete_and_ordered(self):
        """Every member's chunks land in the buffers with seq strictly increasing."""
        recorder = TraceRecorder()

        def loop(start, end, step):
            return None

        def body():
            run_for(loop, 0, 40, 1, schedule="staticCyclic", loop_name="work")

        parallel_region(body, num_threads=4, backend="threads", recorder=recorder)

        chunks = recorder.events(EventKind.CHUNK)
        covered = sorted(i for e in chunks for i in range(e.data["start"], e.data["end"], e.data["step"]))
        assert covered == list(range(40))
        by_thread: dict[int, list[int]] = {}
        for event in recorder.events():
            by_thread.setdefault(event.thread_id, []).append(event.seq)
        for thread_id, seqs in by_thread.items():
            assert seqs == sorted(seqs), f"thread {thread_id} events out of emission order"

    def test_concurrent_recording_loses_no_events(self):
        recorder = TraceRecorder()
        per_thread = 500

        def hammer(thread_id: int) -> None:
            for i in range(per_thread):
                recorder.record(EventKind.PHASE_WORK, 0, thread_id, index=i)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(recorder) == 6 * per_thread
        events = recorder.events()
        assert [e.seq for e in events] == sorted(e.seq for e in events)
        for thread_id in range(6):
            indices = [e.data["index"] for e in events if e.thread_id == thread_id]
            assert indices == list(range(per_thread))


class TestRecorderSurface:
    def test_filters_clear_len_iter(self):
        recorder = TraceRecorder()
        recorder.record(EventKind.REGION_BEGIN, 0, 0, name="r")
        recorder.record(EventKind.CHUNK, 0, 1, loop="l", start=0, end=4, step=1, count=4)
        recorder.record(EventKind.CHUNK, 1, 0, loop="l", start=4, end=8, step=1, count=4)

        assert len(recorder) == 3
        assert len(recorder.events(EventKind.CHUNK)) == 2
        assert len(recorder.events(EventKind.CHUNK, region=1)) == 1
        assert len(list(iter(recorder))) == 3
        recorder.clear()
        assert len(recorder) == 0
        # Sequence numbers keep increasing after a clear.
        event = recorder.record(EventKind.BARRIER, 2, 0)
        assert event.seq >= 3

    def test_payload_is_lazy_but_usable(self):
        recorder = TraceRecorder()
        bare = recorder.record(EventKind.BARRIER, 0, 0)
        assert bare._data is None  # no allocation until accessed
        assert bare.data == {}
        rich = recorder.record(EventKind.CHUNK, 0, 0, loop="l", start=0, end=2, step=1, count=2)
        assert rich.data["loop"] == "l"

    def test_global_recorder_install_and_clear(self):
        recorder = TraceRecorder()
        previous = set_global_recorder(recorder)
        try:
            from repro.runtime.trace import get_global_recorder, global_tracing_active

            assert get_global_recorder() is recorder
            assert global_tracing_active()
        finally:
            set_global_recorder(previous)


#: A representative payload per event kind, mirroring what the runtime
#: actually records at each site.  ``test_every_kind_has_a_payload_sample``
#: fails when a new :class:`EventKind` lands without a row here, so the
#: round-trip suite below stays exhaustive by construction.
_ROUND_TRIP_PAYLOADS: dict[EventKind, dict] = {
    EventKind.REGION_BEGIN: {"name": "r", "size": 4, "backend": "threads"},
    EventKind.REGION_END: {"name": "r", "elapsed": 0.25},
    EventKind.CHUNK: {"loop": "l", "start": 0, "end": 8, "step": 1, "count": 8, "elapsed": 0.01},
    EventKind.BARRIER: {"label": "explicit", "waited": 0.002},
    EventKind.CRITICAL: {"key": "k", "waited": 0.001, "held": 0.003},
    EventKind.LOCK_ACQUIRE: {"key": "obj-7", "waited": 0.0},
    EventKind.REDUCTION: {"count": 4, "op": "sum"},
    EventKind.SINGLE: {"winner": 2},
    EventKind.MASTER: {},
    EventKind.SECTION: {"index": 1, "elapsed": 0.02},
    EventKind.ORDERED: {"index": 5, "waited": 0.004},
    EventKind.TASK_SPAWN: {"count": 3},
    EventKind.TASK_STEAL: {"victim": 1, "count": 2},
    EventKind.TASK_COMPLETE: {"elapsed": 0.006},
    EventKind.PHASE_WORK: {"index": 9},
    EventKind.TUNE_DECISION: {"loop": "l", "schedule": "dynamic", "chunk": 8, "source": "measured"},
    EventKind.WORKER_DEAD: {"member": 2, "pid": 12345, "exitcode": -9, "signal": "SIGKILL"},
    EventKind.FAULT_INJECTED: {
        "action": "kill",
        "site": "member",
        "member": 1,
        "fault_region": 0,
        "rule": "kill:member=1,region=0",
    },
    EventKind.REGION_RETRY: {
        "name": "r",
        "action": "retry",
        "attempt": 2,
        "backend": "threads",
        "delay": 0.0,
    },
}


class TestEventDictRoundTrip:
    """``events_from_dicts`` must invert ``to_dicts`` for *every* kind.

    The dump/reload path backs offline tooling (``trace2chrome``) and the
    distributed backend's cross-process trace shipping; a kind added to the
    runtime but not round-trippable would silently vanish from merged traces.
    """

    def test_every_kind_has_a_payload_sample(self):
        assert set(_ROUND_TRIP_PAYLOADS) == set(EventKind), (
            "new EventKind members need a _ROUND_TRIP_PAYLOADS row "
            "(and thereby round-trip coverage)"
        )

    @pytest.mark.parametrize("kind", list(EventKind), ids=lambda k: k.value)
    def test_kind_round_trips(self, kind):
        recorder = TraceRecorder()
        recorder.record(kind, 3, 1, **_ROUND_TRIP_PAYLOADS[kind])

        [rebuilt] = events_from_dicts(recorder.to_dicts())
        [original] = recorder.events()
        assert rebuilt.kind is kind
        assert rebuilt.region == original.region
        assert rebuilt.thread_id == original.thread_id
        assert rebuilt.seq == original.seq
        assert rebuilt.data == original.data

    def test_full_trace_round_trips_in_order(self):
        recorder = TraceRecorder()
        for kind in EventKind:
            recorder.record(kind, 0, 0, **_ROUND_TRIP_PAYLOADS[kind])

        rebuilt = events_from_dicts(recorder.to_dicts())
        assert [e.kind for e in rebuilt] == list(EventKind)
        assert [e.seq for e in rebuilt] == [e.seq for e in recorder.events()]
        # A second dump of the rebuilt events is byte-identical: the dict
        # form is a fixed point, so tooling can re-save without drift.
        assert [event_to_dict(e) for e in rebuilt] == recorder.to_dicts()

    def test_json_round_trip_survives_serialisation(self):
        import json

        recorder = TraceRecorder()
        for kind in EventKind:
            recorder.record(kind, 1, 2, **_ROUND_TRIP_PAYLOADS[kind])
        rebuilt = events_from_dicts(json.loads(json.dumps(recorder.to_dicts())))
        assert [(e.kind, e.data) for e in rebuilt] == [
            (e.kind, e.data) for e in recorder.events()
        ]


class TestMergeTraces:
    def test_independent_seq_counters_do_not_interleave(self):
        """Regression: two recorders' events must stay contiguous after merge.

        Per-recorder ``seq`` starts at zero, so the seed's sort-by-seq merge
        interleaved unrelated traces; the merge key is now (recorder, seq).
        """
        first = TraceRecorder()
        second = TraceRecorder()
        for i in range(3):
            first.record(EventKind.PHASE_WORK, 0, 0, origin="first", index=i)
        for i in range(3):
            second.record(EventKind.PHASE_WORK, 0, 0, origin="second", index=i)

        merged = merge_traces([first, second])
        origins = [e.data["origin"] for e in merged]
        assert origins == ["first"] * 3 + ["second"] * 3
        assert [e.data["index"] for e in merged] == [0, 1, 2, 0, 1, 2]

    def test_merge_uses_creation_order_not_argument_order(self):
        """The recorder_id stamp makes creation order canonical, however the
        caller collected the recorders."""
        first = TraceRecorder()
        second = TraceRecorder()
        second.record(EventKind.BARRIER, 0, 0, origin="second")
        first.record(EventKind.BARRIER, 0, 0, origin="first")
        merged = merge_traces([second, first])
        assert [e.data["origin"] for e in merged] == ["first", "second"]

    def test_recorder_ids_are_unique_and_monotone(self):
        a, b = TraceRecorder(), TraceRecorder()
        assert b.recorder_id > a.recorder_id
