"""Dedicated tests for :mod:`repro.runtime.ordered` (ordered loop execution).

The sync-constructs suite exercises the ordered aspect end-to-end; this file
covers the runtime module itself: ticket sequencing, skipping, range
validation, region installation and the iteration-order helper.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime import context as ctx
from repro.runtime.exceptions import SchedulingError
from repro.runtime.ordered import (
    OrderedRegion,
    current_ordered_region,
    install_ordered_region,
    iterate_in_order,
    ordered_call,
)
from repro.runtime.team import parallel_region
from repro.runtime.worksharing import run_for


class TestOrderedRegion:
    def test_total_counts_iterations(self):
        assert OrderedRegion(0, 10, 1).total == 10
        assert OrderedRegion(0, 10, 3).total == 4
        assert OrderedRegion(10, 0, -2).total == 5
        assert OrderedRegion(0, 0, 1).total == 0

    def test_zero_step_rejected(self):
        with pytest.raises(SchedulingError):
            OrderedRegion(0, 10, 0)

    def test_run_enforces_sequential_order_across_threads(self):
        region = OrderedRegion(0, 8, 1)
        order: list[int] = []

        def worker(iterations, delay):
            # Each thread ascends through its own iterations (the workshared
            # contract); the region must interleave them globally even when
            # one thread reaches its iterations much earlier.
            for i in iterations:
                threading.Event().wait(delay)
                region.run(i, lambda i=i: order.append(i))

        threads = [
            threading.Thread(target=worker, args=(list(range(start, 8, 2)), delay))
            for start, delay in ((0, 0.01), (1, 0.0))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert order == list(range(8))

    def test_run_returns_value_and_releases_next(self):
        region = OrderedRegion(0, 2, 1)
        assert region.run(0, lambda: "first") == "first"
        assert region.run(1, lambda: "second") == "second"

    def test_skip_advances_the_ticket(self):
        region = OrderedRegion(0, 3, 1)
        seen: list[int] = []
        region.run(0, lambda: seen.append(0))
        region.skip(1)  # iteration 1 has no ordered part
        region.run(2, lambda: seen.append(2))
        assert seen == [0, 2]

    def test_failed_ordered_part_still_releases_successors(self):
        region = OrderedRegion(0, 2, 1)
        with pytest.raises(RuntimeError):
            region.run(0, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        # The ticket advanced despite the failure; iteration 1 is not stuck.
        assert region.run(1, lambda: "ok") == "ok"

    @pytest.mark.parametrize("iteration", [-1, 10, 3])
    def test_foreign_iterations_rejected_positive_step(self, iteration):
        region = OrderedRegion(0, 10, 2)
        with pytest.raises(SchedulingError):
            region.run(iteration, lambda: None)

    @pytest.mark.parametrize("iteration", [12, 0, 9])
    def test_foreign_iterations_rejected_negative_step(self, iteration):
        region = OrderedRegion(10, 0, -2)
        with pytest.raises(SchedulingError):
            region.run(iteration, lambda: None)

    def test_negative_step_order(self):
        region = OrderedRegion(6, 0, -2)
        seen: list[int] = []
        for i in (6, 4, 2):
            region.run(i, lambda i=i: seen.append(i))
        assert seen == [6, 4, 2]


class TestRegionInstallation:
    def test_install_returns_none_outside_parallel_region(self):
        assert ctx.current_context() is None
        assert install_ordered_region(OrderedRegion(0, 4, 1)) is None
        assert current_ordered_region() is None

    def test_install_and_restore_inside_region(self):
        observed = {}

        def body():
            outer = OrderedRegion(0, 4, 1)
            inner = OrderedRegion(0, 2, 1)
            assert install_ordered_region(outer) is None
            previous = install_ordered_region(inner)
            observed["previous_was_outer"] = previous is outer
            observed["current_is_inner"] = current_ordered_region() is inner
            install_ordered_region(previous)
            observed["restored"] = current_ordered_region() is outer

        parallel_region(body, num_threads=1)
        assert observed == {"previous_was_outer": True, "current_is_inner": True, "restored": True}

    def test_ordered_call_degrades_outside_loops(self):
        # Outside any region and outside any ordered loop: plain invocation.
        assert ordered_call(7, lambda: "direct") == "direct"

        def body():
            return ordered_call(3, lambda: "in-region, no loop")

        assert parallel_region(body, num_threads=2) == "in-region, no loop"


class TestOrderedWithinWorksharing:
    @pytest.mark.parametrize("schedule", ["staticBlock", "staticCyclic", "dynamic", "guided"])
    def test_order_preserved_under_every_schedule(self, schedule):
        order: list[int] = []

        def loop(start, end, step):
            for i in range(start, end, step):
                ordered_call(i, lambda i=i: order.append(i))

        def body():
            run_for(loop, 0, 12, 1, schedule=schedule, chunk=2, ordered=True)

        parallel_region(body, num_threads=3, backend="threads")
        assert order == list(range(12))


class TestIterateInOrder:
    def test_merges_chunks_ascending(self):
        chunks = [range(4, 8), range(0, 4), range(8, 10)]
        assert list(iterate_in_order(chunks)) == list(range(10))

    def test_empty_chunks(self):
        assert list(iterate_in_order([])) == []
        assert list(iterate_in_order([range(0)])) == []
