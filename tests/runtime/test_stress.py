"""Stress tests for schedulers and barriers under contention.

Many threads, tiny chunks, repeated barrier rounds — the conditions that
surface livelock and lost-claim regressions.  Every test runs under the
shared conftest watchdog (the ``watchdog`` fixture): if the runtime
livelocks, the test fails with a timeout and a stack dump instead of hanging
the suite.  Marked ``stress``; excluded from the default (tier-1) run and
executed by ``scripts/test.sh``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import context as ctx
from repro.runtime import shm
from repro.runtime.team import parallel_region
from repro.runtime.worksharing import run_for

pytestmark = pytest.mark.stress

#: per-scenario wall-clock budget, re-exported for join timeouts below.
WATCHDOG = 60.0


@pytest.mark.parametrize("schedule", ["dynamic", "guided"])
@pytest.mark.parametrize("num_threads", [8, 16])
def test_claim_storm_tiny_chunks(schedule, num_threads, watchdog):
    """Tiny chunks + many threads: maximal contention on the claim counter."""
    total = 2000
    counts = shm.shared_zeros(total, np.int64)
    try:

        def loop(start, end, step):
            for i in range(start, end, step):
                counts[i] += 1

        def body():
            run_for(loop, 0, total, 1, schedule=schedule, chunk=1)

        watchdog(lambda: parallel_region(body, num_threads=num_threads, backend="threads"))
        assert counts.np.tolist() == [1] * total
    finally:
        counts.close()


@pytest.mark.parametrize("num_threads", [8])
def test_repeated_loops_share_one_region(num_threads, watchdog):
    """Many consecutive workshared loops reuse team state (encounter keys,
    claim slots) without cross-talk."""
    rounds, width = 40, 64
    counts = shm.shared_zeros(width, np.int64)
    try:

        def loop(start, end, step):
            for i in range(start, end, step):
                counts[i] += 1

        def body():
            for r in range(rounds):
                schedule = ("dynamic", "guided", "staticCyclic", "staticBlock")[r % 4]
                run_for(loop, 0, width, 1, schedule=schedule, chunk=2)

        watchdog(lambda: parallel_region(body, num_threads=num_threads, backend="threads"))
        assert counts.np.tolist() == [rounds] * width
    finally:
        counts.close()


def test_barrier_storm(watchdog):
    """Hundreds of consecutive barrier rounds must neither deadlock nor skew."""
    rounds, num_threads = 200, 8
    progress = shm.shared_zeros(num_threads, np.int64)
    try:

        def body():
            team = ctx.current_team()
            tid = ctx.get_thread_id()
            for r in range(rounds):
                progress[tid] = r
                team.barrier()
                # After each round's barrier every member is at round r.
                assert int(progress.np.min()) >= r
                team.barrier()

        watchdog(lambda: parallel_region(body, num_threads=num_threads, backend="threads"))
        assert progress.np.tolist() == [rounds - 1] * num_threads
    finally:
        progress.close()


def test_process_backend_claim_storm(watchdog):
    """Cross-process dynamic claims under contention: every iteration exactly once."""
    total = 600
    counts = shm.shared_zeros(total, np.int64)
    try:

        def loop(start, end, step):
            for i in range(start, end, step):
                counts[i] += 1

        def body():
            run_for(loop, 0, total, 1, schedule="dynamic", chunk=2)
            run_for(loop, 0, total, 1, schedule="guided", chunk=1)

        watchdog(lambda: parallel_region(body, num_threads=4, backend="processes"))
        assert counts.np.tolist() == [2] * total
    finally:
        counts.close()


def test_process_backend_repeated_regions_stay_healthy(watchdog):
    """Back-to-back process regions (fresh fork each) leave no broken state."""
    counts = shm.shared_zeros(8, np.int64)
    try:

        def loop(start, end, step):
            for i in range(start, end, step):
                counts[i] += 1

        def body():
            run_for(loop, 0, 8, 1, schedule="staticBlock")

        def many():
            for _ in range(10):
                parallel_region(body, num_threads=3, backend="processes")

        watchdog(many)
        assert counts.np.tolist() == [10] * 8
    finally:
        counts.close()


def test_taskloop_steal_storm_threads(watchdog):
    """Fine-grained taskloop under a thread team: every tile exactly once."""
    from repro.runtime.tasks import run_taskloop

    total = 2000
    counts = np.zeros(total, dtype=np.int64)
    import threading

    lock = threading.Lock()

    def tile(start, end, step):
        with lock:
            for i in range(start, end, step):
                counts[i] += 1

    def body():
        run_taskloop(tile, 0, total, 1, grainsize=1)
        run_taskloop(tile, 0, total, 1, grainsize=3)

    watchdog(lambda: parallel_region(body, num_threads=6, backend="threads"))
    assert counts.tolist() == [2] * total


def test_taskloop_steal_storm_processes(watchdog):
    """Cross-process taskloop steals under contention: every tile exactly once."""
    from repro.runtime.tasks import run_taskloop

    total = 600
    counts = shm.shared_zeros(total, np.int64)
    try:

        def tile(start, end, step):
            for i in range(start, end, step):
                counts[i] += 1

        def body():
            run_taskloop(tile, 0, total, 1, grainsize=2)
            run_taskloop(tile, 0, total, 1, grainsize=5)

        watchdog(lambda: parallel_region(body, num_threads=4, backend="processes"))
        assert counts.np.tolist() == [2] * total
    finally:
        counts.close()


def test_task_spawn_storm_with_dependencies(watchdog):
    """Thousands of spawns with dependency chains drain without deadlock."""
    from repro.runtime.tasks import TaskPool

    def storm():
        pool = TaskPool(workers=4, name="stress-deps")
        try:
            tail = None
            for i in range(2000):
                tail = pool.spawn(lambda: None, depends=[tail] if tail and i % 5 == 0 else None)
            tail.join(timeout=WATCHDOG)
        finally:
            pool.shutdown()

    watchdog(storm)


@pytest.mark.nested
def test_nested_team_storm(watchdog):
    """Repeated teams-of-teams: inner regions spawned from every outer member
    must complete and never cross-talk (claim slots, encounter keys)."""
    rounds, width = 10, 32
    counts = shm.shared_zeros((4, width), np.int64)
    try:

        def body():
            outer_tid = ctx.get_thread_id()

            def loop(start, end, step):
                for i in range(start, end, step):
                    counts[outer_tid, i] += 1

            def inner():
                run_for(loop, 0, width, 1, schedule="dynamic", chunk=1)

            for _ in range(rounds):
                parallel_region(inner, num_threads=3)

        watchdog(lambda: parallel_region(body, num_threads=4, backend="threads"))
        assert counts.np.tolist() == [[rounds] * width] * 4
    finally:
        counts.close()
