"""Tests for the work-sharing executor (run_for) inside parallel regions."""

from __future__ import annotations

import threading

import pytest

from repro.runtime import context as ctx
from repro.runtime.exceptions import SchedulingError
from repro.runtime.team import parallel_region
from repro.runtime.trace import EventKind, TraceRecorder
from repro.runtime.worksharing import run_for, static_partition


def make_accumulating_loop(results, lock):
    """A for-method appending (thread_id, index) for each executed iteration."""

    def loop(start, end, step):
        tid = ctx.get_thread_id()
        for i in range(start, end, step):
            with lock:
                results.append((tid, i))

    return loop


@pytest.mark.parametrize("schedule", ["staticBlock", "staticCyclic", "dynamic", "guided"])
def test_all_iterations_executed_exactly_once(schedule):
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)

    def body():
        run_for(loop, 0, 40, 1, schedule=schedule)

    parallel_region(body, num_threads=4)
    indices = sorted(i for _, i in results)
    assert indices == list(range(40))


def test_static_block_assigns_contiguous_ranges():
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)

    def body():
        run_for(loop, 0, 8, 1, schedule="staticBlock")

    parallel_region(body, num_threads=4)
    per_thread = {}
    for tid, i in results:
        per_thread.setdefault(tid, []).append(i)
    assert sorted(per_thread.keys()) == [0, 1, 2, 3]
    assert sorted(per_thread[0]) == [0, 1]
    assert sorted(per_thread[3]) == [6, 7]


def test_cyclic_distribution_matches_paper_pattern():
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)

    def body():
        run_for(loop, 0, 9, 1, schedule="staticCyclic")

    parallel_region(body, num_threads=3)
    per_thread = {tid: sorted(i for t, i in results if t == tid) for tid in range(3)}
    assert per_thread[0] == [0, 3, 6]
    assert per_thread[1] == [1, 4, 7]
    assert per_thread[2] == [2, 5, 8]


def test_sequential_semantics_outside_region():
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)
    run_for(loop, 0, 10, 1, schedule="dynamic")
    assert sorted(i for _, i in results) == list(range(10))
    assert {tid for tid, _ in results} == {0}


def test_strided_range_distributed_correctly():
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)

    def body():
        run_for(loop, 1, 30, 3, schedule="staticBlock")

    parallel_region(body, num_threads=3)
    assert sorted(i for _, i in results) == list(range(1, 30, 3))


def test_extra_positional_args_forwarded():
    sums = []
    lock = threading.Lock()

    def loop(start, end, step, scale, offset=0):
        total = sum(i * scale + offset for i in range(start, end, step))
        with lock:
            sums.append(total)

    def body():
        run_for(loop, 0, 10, 1, 2, schedule="staticBlock", offset=1)

    parallel_region(body, num_threads=2)
    # Total over all threads must equal the sequential result.
    assert sum(sums) == sum(i * 2 + 1 for i in range(10))


def test_dynamic_schedule_with_shared_state_covers_range():
    executed = []
    lock = threading.Lock()

    def loop(start, end, step):
        tid = ctx.get_thread_id()
        for i in range(start, end, step):
            with lock:
                executed.append((tid, i))

    def body():
        run_for(loop, 0, 101, 1, schedule="dynamic", chunk=7)

    parallel_region(body, num_threads=5)
    assert sorted(i for _, i in executed) == list(range(101))
    # With 101 iterations in chunks of 7 across 5 threads at least two threads
    # should have claimed something (probabilistically certain; the claim
    # counter guarantees no duplicates which is the key invariant).
    assert len({tid for tid, _ in executed}) >= 1


def test_chunk_trace_events_record_assignments(recorder):
    def loop(start, end, step):
        for _ in range(start, end, step):
            pass

    def body():
        run_for(loop, 0, 12, 1, schedule="staticBlock", loop_name="work")

    parallel_region(body, num_threads=3)
    chunks = recorder.events(EventKind.CHUNK)
    assert len(chunks) == 3
    assert {e.data["loop"] for e in chunks} == {"work"}
    assert sum(e.data["count"] for e in chunks) == 12


def test_weight_function_recorded(recorder):
    def loop(start, end, step):
        pass

    def body():
        run_for(loop, 0, 10, 1, schedule="staticBlock", loop_name="tri", weight=lambda i: 10 - i)

    parallel_region(body, num_threads=2)
    chunks = recorder.events(EventKind.CHUNK)
    total_weight = sum(e.data["weight"] for e in chunks)
    assert total_weight == sum(10 - i for i in range(10))


def test_implicit_barrier_can_be_skipped(recorder):
    def loop(start, end, step):
        pass

    def body():
        run_for(loop, 0, 4, 1, nowait=True)
        run_for(loop, 0, 4, 1, nowait=False)

    parallel_region(body, num_threads=2)
    barriers = recorder.events(EventKind.BARRIER)
    # Only the second loop emits the implicit barrier: one event per member.
    assert len(barriers) == 2


def test_loop_return_value_last_chunk():
    def loop(start, end, step):
        return sum(range(start, end, step))

    result = run_for(loop, 0, 10, 1)
    assert result == sum(range(10))


def test_static_partition_helper():
    parts = static_partition(4, 0, 16, 1, schedule="staticBlock")
    assert len(parts) == 4
    assert sum(len(list(c.indices())) for p in parts for c in p) == 16
    with pytest.raises(ValueError):
        static_partition(4, 0, 16, 1, schedule="dynamic")


def test_zero_step_rejected():
    def loop(start, end, step):
        pass

    def body():
        run_for(loop, 0, 10, 0)

    with pytest.raises(Exception):
        parallel_region(body, num_threads=2)


def test_multiple_loops_in_one_region():
    order = []
    lock = threading.Lock()

    def loop_a(start, end, step):
        with lock:
            order.extend(("a", i) for i in range(start, end, step))

    def loop_b(start, end, step):
        with lock:
            order.extend(("b", i) for i in range(start, end, step))

    def body():
        run_for(loop_a, 0, 6, 1)
        run_for(loop_b, 0, 6, 1)

    parallel_region(body, num_threads=3)
    a_indices = sorted(i for tag, i in order if tag == "a")
    b_indices = sorted(i for tag, i in order if tag == "b")
    assert a_indices == list(range(6))
    assert b_indices == list(range(6))
