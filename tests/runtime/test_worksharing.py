"""Tests for the work-sharing executor (run_for) inside parallel regions."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.runtime import context as ctx
from repro.runtime import shm
from repro.runtime.exceptions import BackendCapabilityError
from repro.runtime.single import MasterRegion, SingleRegion
from repro.runtime.subinterp import subinterpreters_available
from repro.runtime.team import parallel_region
from repro.runtime.trace import EventKind, TraceRecorder
from repro.runtime.worksharing import run_for, static_partition

CONFORMANCE_BACKENDS = (
    "serial",
    "threads",
    "processes",
    pytest.param(
        "subinterp",
        marks=pytest.mark.skipif(
            not subinterpreters_available(),
            reason="subinterpreter workers unavailable on this build",
        ),
    ),
)


def make_accumulating_loop(results, lock):
    """A for-method appending (thread_id, index) for each executed iteration."""

    def loop(start, end, step):
        tid = ctx.get_thread_id()
        for i in range(start, end, step):
            with lock:
                results.append((tid, i))

    return loop


@pytest.mark.parametrize("schedule", ["staticBlock", "staticCyclic", "dynamic", "guided"])
def test_all_iterations_executed_exactly_once(schedule):
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)

    def body():
        run_for(loop, 0, 40, 1, schedule=schedule)

    parallel_region(body, num_threads=4)
    indices = sorted(i for _, i in results)
    assert indices == list(range(40))


def test_static_block_assigns_contiguous_ranges():
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)

    def body():
        run_for(loop, 0, 8, 1, schedule="staticBlock")

    parallel_region(body, num_threads=4)
    per_thread = {}
    for tid, i in results:
        per_thread.setdefault(tid, []).append(i)
    assert sorted(per_thread.keys()) == [0, 1, 2, 3]
    assert sorted(per_thread[0]) == [0, 1]
    assert sorted(per_thread[3]) == [6, 7]


def test_cyclic_distribution_matches_paper_pattern():
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)

    def body():
        run_for(loop, 0, 9, 1, schedule="staticCyclic")

    parallel_region(body, num_threads=3)
    per_thread = {tid: sorted(i for t, i in results if t == tid) for tid in range(3)}
    assert per_thread[0] == [0, 3, 6]
    assert per_thread[1] == [1, 4, 7]
    assert per_thread[2] == [2, 5, 8]


def test_sequential_semantics_outside_region():
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)
    run_for(loop, 0, 10, 1, schedule="dynamic")
    assert sorted(i for _, i in results) == list(range(10))
    assert {tid for tid, _ in results} == {0}


def test_strided_range_distributed_correctly():
    results = []
    lock = threading.Lock()
    loop = make_accumulating_loop(results, lock)

    def body():
        run_for(loop, 1, 30, 3, schedule="staticBlock")

    parallel_region(body, num_threads=3)
    assert sorted(i for _, i in results) == list(range(1, 30, 3))


def test_extra_positional_args_forwarded():
    sums = []
    lock = threading.Lock()

    def loop(start, end, step, scale, offset=0):
        total = sum(i * scale + offset for i in range(start, end, step))
        with lock:
            sums.append(total)

    def body():
        run_for(loop, 0, 10, 1, 2, schedule="staticBlock", offset=1)

    parallel_region(body, num_threads=2)
    # Total over all threads must equal the sequential result.
    assert sum(sums) == sum(i * 2 + 1 for i in range(10))


def test_dynamic_schedule_with_shared_state_covers_range():
    executed = []
    lock = threading.Lock()

    def loop(start, end, step):
        tid = ctx.get_thread_id()
        for i in range(start, end, step):
            with lock:
                executed.append((tid, i))

    def body():
        run_for(loop, 0, 101, 1, schedule="dynamic", chunk=7)

    parallel_region(body, num_threads=5)
    assert sorted(i for _, i in executed) == list(range(101))
    # With 101 iterations in chunks of 7 across 5 threads at least two threads
    # should have claimed something (probabilistically certain; the claim
    # counter guarantees no duplicates which is the key invariant).
    assert len({tid for tid, _ in executed}) >= 1


def test_chunk_trace_events_record_assignments(recorder):
    def loop(start, end, step):
        for _ in range(start, end, step):
            pass

    def body():
        run_for(loop, 0, 12, 1, schedule="staticBlock", loop_name="work")

    parallel_region(body, num_threads=3)
    chunks = recorder.events(EventKind.CHUNK)
    assert len(chunks) == 3
    assert {e.data["loop"] for e in chunks} == {"work"}
    assert sum(e.data["count"] for e in chunks) == 12


def test_weight_function_recorded(recorder):
    def loop(start, end, step):
        pass

    def body():
        run_for(loop, 0, 10, 1, schedule="staticBlock", loop_name="tri", weight=lambda i: 10 - i)

    parallel_region(body, num_threads=2)
    chunks = recorder.events(EventKind.CHUNK)
    total_weight = sum(e.data["weight"] for e in chunks)
    assert total_weight == sum(10 - i for i in range(10))


def test_implicit_barrier_can_be_skipped(recorder):
    def loop(start, end, step):
        pass

    def body():
        run_for(loop, 0, 4, 1, nowait=True)
        run_for(loop, 0, 4, 1, nowait=False)

    parallel_region(body, num_threads=2)
    barriers = recorder.events(EventKind.BARRIER)
    # Only the second loop emits the implicit barrier: one event per member.
    assert len(barriers) == 2


def test_loop_return_value_last_chunk():
    def loop(start, end, step):
        return sum(range(start, end, step))

    result = run_for(loop, 0, 10, 1)
    assert result == sum(range(10))


@pytest.mark.parametrize("schedule", ["dynamic", "guided"])
def test_untraced_and_traced_paths_execute_identical_chunk_boundaries(schedule):
    """run_for's untraced inline dispatch must mirror the schedulers exactly.

    The untraced fast path re-derives chunk bounds with inline arithmetic
    instead of the scheduler generators; this pins the two implementations
    to each other so a policy change in one cannot silently drift.
    """
    from repro.runtime.team import Team

    def boundaries(tracing: bool) -> list[tuple[int, int, int]]:
        seen: list[tuple[int, int, int]] = []

        def loop(start, end, step):
            seen.append((start, end, step))

        recorder = TraceRecorder() if tracing else None
        team = Team(2, recorder=recorder)
        frame = ctx.ExecutionContext(team=team, thread_id=0, nesting_level=0)
        ctx.push_context(frame)
        try:
            # Single consumer on a 2-member team: member 0 claims every chunk
            # deterministically (the other member never runs).
            run_for(loop, 3, 120, 2, schedule=schedule, chunk=3, nowait=True)
        finally:
            ctx.pop_context()
        return seen

    assert boundaries(tracing=False) == boundaries(tracing=True)


def test_sequential_run_for_records_to_global_recorder(recorder):
    """Outside any region, an installed global recorder still sees the chunk.

    Regression: the ``context is None`` branch used to consult only
    ``context.team`` and silently skipped recording.
    """
    from repro.runtime.trace import NO_REGION

    def loop(start, end, step):
        pass

    run_for(loop, 0, 8, 1, loop_name="outside", weight=lambda i: 2.0)

    chunks = recorder.events(EventKind.CHUNK)
    assert len(chunks) == 1
    event = chunks[0]
    assert event.region == NO_REGION
    assert event.data["loop"] == "outside"
    assert (event.data["start"], event.data["end"], event.data["step"]) == (0, 8, 1)
    assert event.data["count"] == 8
    assert event.data["weight"] == 16.0
    assert event.data["elapsed"] is not None


def test_sequential_run_for_honours_tracing_config(recorder):
    """The global tracing switch gates the sequential recording path too."""
    from repro.runtime.config import config_override

    def loop(start, end, step):
        pass

    with config_override(tracing=False):
        run_for(loop, 0, 8, 1, loop_name="silent")
    assert recorder.events(EventKind.CHUNK) == []


def test_static_partition_helper():
    parts = static_partition(4, 0, 16, 1, schedule="staticBlock")
    assert len(parts) == 4
    assert sum(len(list(c.indices())) for p in parts for c in p) == 16
    with pytest.raises(ValueError):
        static_partition(4, 0, 16, 1, schedule="dynamic")


def test_zero_step_rejected():
    def loop(start, end, step):
        pass

    def body():
        run_for(loop, 0, 10, 0)

    with pytest.raises(Exception):
        parallel_region(body, num_threads=2)


@pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
class TestWorksharingConformance:
    """Every schedule must partition identically-observably on every backend.

    Coverage counters live in shared memory, so the assertions are the same
    whether members are the calling thread (serial), OS threads, or worker
    processes: each iteration executed exactly once, loop results identical.
    """

    @pytest.mark.parametrize("schedule", ["staticBlock", "staticCyclic", "dynamic", "guided"])
    def test_every_iteration_executed_exactly_once(self, backend_name, schedule):
        with shm.SharedArray.zeros(101, np.int64) as counts:

            def loop(start, end, step):
                for i in range(start, end, step):
                    counts[i] += 1

            def body():
                run_for(loop, 0, 101, 1, schedule=schedule, chunk=3)

            parallel_region(body, num_threads=4, backend=backend_name)
            assert counts.np.tolist() == [1] * 101

    @pytest.mark.parametrize("rng", [(1, 30, 3), (10, 0, -2), (5, 5, 1), (0, 7, 10)])
    def test_strided_and_degenerate_ranges(self, backend_name, rng):
        start, end, step = rng
        expected = sorted(range(start, end, step))
        with shm.SharedArray.zeros(64, np.int64) as counts:

            def loop(s, e, st):
                for i in range(s, e, st):
                    counts[i] += 1

            def body():
                run_for(loop, start, end, step, schedule="staticBlock")

            parallel_region(body, num_threads=3, backend=backend_name)
            hit = sorted(int(i) for i in np.nonzero(counts.np)[0])
            assert hit == expected
            assert counts.np.max() <= 1

    def test_static_block_ownership_matches_partition(self, backend_name):
        """Static assignment is a function of (thread_id, team size) only —
        identical for threads and processes; serial owns everything (team of 1)."""
        n = 12
        with shm.SharedArray.zeros(n, np.int64) as owner:
            owner.np[:] = -1

            def loop(start, end, step):
                for i in range(start, end, step):
                    owner[i] = ctx.get_thread_id()

            def body():
                run_for(loop, 0, n, 1, schedule="staticBlock")

            parallel_region(body, num_threads=4, backend=backend_name)
            if backend_name == "serial":
                assert owner.np.tolist() == [0] * n
            else:
                assert owner.np.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]

    def test_cyclic_ownership_matches_partition(self, backend_name):
        n = 9
        with shm.SharedArray.zeros(n, np.int64) as owner:

            def loop(start, end, step):
                for i in range(start, end, step):
                    owner[i] = ctx.get_thread_id()

            def body():
                run_for(loop, 0, n, 1, schedule="staticCyclic")

            parallel_region(body, num_threads=3, backend=backend_name)
            if backend_name == "serial":
                assert owner.np.tolist() == [0] * n
            else:
                assert owner.np.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_consecutive_loops_are_barrier_separated(self, backend_name):
        """The second loop reads what the first produced: needs the implicit barrier."""
        n = 24
        with shm.SharedArray.zeros(n, np.int64) as first, shm.SharedArray.zeros(n, np.int64) as second:

            def produce(start, end, step):
                for i in range(start, end, step):
                    first[i] = i + 1

            def consume(start, end, step):
                total = int(first.np.sum())  # must observe every produce write
                for i in range(start, end, step):
                    second[i] = total

            def body():
                run_for(produce, 0, n, 1, schedule="staticCyclic")
                run_for(consume, 0, n, 1, schedule="staticBlock")

            parallel_region(body, num_threads=4, backend=backend_name)
            expected_total = sum(range(1, n + 1))
            assert second.np.tolist() == [expected_total] * n

    def test_loop_result_returned_to_master(self, backend_name):
        def loop(start, end, step):
            return sum(range(start, end, step))

        def body():
            return run_for(loop, 0, 10, 1, schedule="staticBlock")

        result = parallel_region(body, num_threads=2, backend=backend_name)
        # The master's last chunk: full range for serial, first half otherwise.
        assert result == (sum(range(10)) if backend_name == "serial" else sum(range(5)))

    def test_dynamic_chunk_sizes_respected(self, backend_name):
        """Chunk boundaries are identical across backends (claim order is not)."""
        spans = shm.SharedArray.zeros(64, np.int64)
        try:

            def loop(start, end, step):
                spans[start] = end - start

            def body():
                run_for(loop, 0, 64, 1, schedule="dynamic", chunk=5)

            parallel_region(body, num_threads=4, backend=backend_name)
            recorded = {int(i): int(spans[i]) for i in np.nonzero(spans.np)[0]}
            if backend_name == "serial":
                # Sequential semantics: a team of one executes the untouched range.
                assert recorded == {0: 64}
            else:
                assert recorded == {i: min(5, 64 - i) for i in range(0, 64, 5)}
        finally:
            spans.close()


@pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
def test_single_and_master_conform_or_fail_loudly(backend_name):
    """single/master broadcast needs a shared heap: identical values on
    serial/threads, a BackendCapabilityError surfaced as the BrokenTeamError
    cause on raw process teams (the weaver's fallback avoids this for woven
    programs)."""
    def body():
        single_value = SingleRegion(key="probe").run(lambda: 41)
        master_value = MasterRegion(key="probe").run(lambda: ctx.get_thread_id() + 100)
        return single_value, master_value

    if backend_name == "processes":
        from repro.runtime.exceptions import BrokenTeamError

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=3, backend=backend_name)
        assert isinstance(excinfo.value.__cause__, BackendCapabilityError)
    else:
        assert parallel_region(body, num_threads=3, backend=backend_name) == (41, 100)


def test_critical_rejected_on_process_team():
    """In-process locks can't span a process team; critical_call fails loudly
    instead of silently losing mutual exclusion."""
    from repro.runtime.critical import critical_call
    from repro.runtime.exceptions import BrokenTeamError

    def body():
        return critical_call(lambda: 1, key="probe")

    with pytest.raises(BrokenTeamError) as excinfo:
        parallel_region(body, num_threads=2, backend="processes")
    assert isinstance(excinfo.value.__cause__, BackendCapabilityError)
    # Outside a region (and on thread teams) it still works.
    assert critical_call(lambda: 2, key="probe") == 2
    assert parallel_region(body, num_threads=2, backend="threads") == 1


def test_ordered_loop_rejected_on_process_team():
    from repro.runtime.exceptions import BrokenTeamError

    def loop(start, end, step):
        pass

    def body():
        run_for(loop, 0, 8, 1, ordered=True)

    with pytest.raises(BrokenTeamError) as excinfo:
        parallel_region(body, num_threads=2, backend="processes")
    assert isinstance(excinfo.value.__cause__, BackendCapabilityError)


@pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
class TestAutoScheduleConformance:
    """``schedule="auto"`` must stay correct on every backend while it tunes.

    Whatever candidate the tuner picks per invocation (including the serial
    fallback), every iteration executes exactly once and loops stay
    barrier-separated — on in-process teams (ticket shared through a team
    slot) and process teams (plan published through the shm tune arena).
    """

    def test_every_iteration_executed_exactly_once_across_invocations(self, backend_name):
        invocations = 8
        with shm.SharedArray.zeros(101, np.int64) as counts:

            def loop(start, end, step):
                for i in range(start, end, step):
                    counts[i] += 1

            def body():
                for _ in range(invocations):
                    run_for(loop, 0, 101, 1, schedule="auto")

            parallel_region(body, num_threads=4, backend=backend_name)
            assert counts.np.tolist() == [invocations] * 101

    def test_auto_loops_are_barrier_separated(self, backend_name):
        n = 24
        with shm.SharedArray.zeros(n, np.int64) as first, shm.SharedArray.zeros(n, np.int64) as second:

            def produce(start, end, step):
                for i in range(start, end, step):
                    first[i] = i + 1

            def consume(start, end, step):
                total = int(first.np.sum())  # must observe every produce write
                for i in range(start, end, step):
                    second[i] = total

            def body():
                run_for(produce, 0, n, 1, schedule="auto")
                run_for(consume, 0, n, 1, schedule="auto")

            parallel_region(body, num_threads=4, backend=backend_name)
            expected_total = sum(range(1, n + 1))
            assert second.np.tolist() == [expected_total] * n


class TestAutoScheduleTuning:
    """Tuner integration details that need an in-process team to observe."""

    def _forced_serial_tuner(self):
        """A tuner whose serial cutoff is huge: every probe converges serial."""
        from repro.tune import LoopTuner, TunerConfig

        return LoopTuner(TunerConfig(serial_margin=1e9), cache_path=None)

    def test_serial_fallback_runs_on_the_master_only(self):
        from repro.tune import tuner_override

        n = 12
        with shm.SharedArray.zeros(n, np.int64) as owner, shm.SharedArray.zeros(n, np.int64) as counts:
            owner.np[:] = -1

            def loop(start, end, step):
                for i in range(start, end, step):
                    owner[i] = ctx.get_thread_id()
                    counts[i] += 1

            def body():
                for _ in range(3):
                    run_for(loop, 0, n, 1, schedule="auto")

            with tuner_override(self._forced_serial_tuner()) as tuner:
                parallel_region(body, num_threads=4, backend="threads")
                site = tuner.sites()[0]
            # Invocation 1 probes static_block; from invocation 2 on the site
            # is converged serial, so the master owns every iteration.
            assert site.converged and site.choice.serial
            assert counts.np.tolist() == [3] * n
            assert owner.np.tolist() == [0] * n

    def test_tune_decisions_recorded_in_trace(self, recorder):
        def loop(start, end, step):
            pass

        def body():
            for _ in range(4):
                run_for(loop, 0, 64, 1, schedule="auto", loop_name="tuned")

        parallel_region(body, num_threads=2)
        decisions = recorder.tune_decisions()
        assert len(decisions) == 4
        assert {e.data["loop"] for e in decisions} == {"tuned"}
        assert [e.data["invocation"] for e in decisions] == [1, 2, 3, 4]
        # Decisions are recorded by the observing master only.
        assert {e.thread_id for e in decisions} == {0}
        for event in decisions:
            assert event.data["schedule"] in (
                "serial",
                "static_block",
                "static_cyclic",
                "dynamic",
                "guided",
            )
            assert event.data["elapsed"] >= 0.0

    def test_auto_converges_toward_best_candidate_under_synthetic_load(self):
        """End-to-end: a triangular sleep loop converges off the master's
        real measurements (any non-serial balanced candidate is acceptable)."""
        import time as _time

        from repro.tune import tuner_override, LoopTuner, TunerConfig

        n = 16

        def tri(start, end, step):
            for i in range(start, end, step):
                _time.sleep(0.002 * (n - i) / n)

        def body():
            for _ in range(14):
                run_for(tri, 0, n, 1, schedule="auto", loop_name="tri")

        with tuner_override(LoopTuner(TunerConfig(), cache_path=None)) as tuner:
            parallel_region(body, num_threads=4, backend="threads")
            site = tuner.sites()[0]
        assert site.converged
        assert not site.choice.serial

    def test_auto_outside_any_region_runs_sequentially(self):
        executed = []

        def loop(start, end, step):
            executed.extend(range(start, end, step))

        run_for(loop, 0, 10, 1, schedule="auto")
        assert executed == list(range(10))

    def test_default_schedule_spec_from_config(self):
        """run_for without schedule= honours AOMP_SCHEDULE-style config specs."""
        from repro.runtime.config import config_override

        spans = []
        lock = threading.Lock()

        def loop(start, end, step):
            with lock:
                spans.append((start, end))

        def body():
            run_for(loop, 0, 20, 1)

        with config_override(default_schedule="dynamic,5"):
            parallel_region(body, num_threads=2)
        assert sorted(spans) == [(0, 5), (5, 10), (10, 15), (15, 20)]


def test_thread_local_field_rejected_on_process_team():
    """Per-thread copies silently vanish in workers; fail loudly instead."""
    from repro.core.aspects.data import ThreadLocalFieldAspect
    from repro.runtime.exceptions import BrokenTeamError

    class Holder:
        pass

    aspect = ThreadLocalFieldAspect("value", classes=[Holder])
    undo = aspect.apply(Holder)
    try:
        holder = Holder()
        holder.value = 1.25  # outside a region: the shared slot

        def body():
            return holder.value

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(body, num_threads=2, backend="processes")
        assert isinstance(excinfo.value.__cause__, BackendCapabilityError)
        # Thread teams (and teams of one) still honour the construct.
        assert parallel_region(body, num_threads=2, backend="threads") == 1.25
        assert parallel_region(body, num_threads=1, backend="processes") == 1.25
    finally:
        undo()


def test_reduce_rejected_on_process_team():
    from repro.core import ReduceAspect, ThreadLocalFieldAspect, Weaver, call
    from repro.runtime.exceptions import BrokenTeamError
    from repro.runtime.threadlocal import CallableReducer

    class Accumulator:
        def __init__(self):
            self.total = 0.0

        def work(self):
            self.total = self.total + 1.0

    field_aspect = ThreadLocalFieldAspect("total", classes=[Accumulator])
    reduce_aspect = ReduceAspect(
        call("Accumulator.work"),
        field_aspect=field_aspect,
        reducer=CallableReducer(lambda a, b: a + b),
        include_shared=False,
    )
    weaver = Weaver()
    weaver.weave(field_aspect, Accumulator)
    weaver.weave(reduce_aspect, Accumulator)
    try:
        accumulator = Accumulator()

        with pytest.raises(BrokenTeamError) as excinfo:
            parallel_region(accumulator.work, num_threads=2, backend="processes")
        assert isinstance(excinfo.value.__cause__, BackendCapabilityError)

        # The same woven program reduces correctly on a thread team.
        parallel_region(accumulator.work, num_threads=2, backend="threads")
        assert accumulator.total == 2.0
    finally:
        weaver.unweave_all()


def test_multiple_loops_in_one_region():
    order = []
    lock = threading.Lock()

    def loop_a(start, end, step):
        with lock:
            order.extend(("a", i) for i in range(start, end, step))

    def loop_b(start, end, step):
        with lock:
            order.extend(("b", i) for i in range(start, end, step))

    def body():
        run_for(loop_a, 0, 6, 1)
        run_for(loop_b, 0, 6, 1)

    parallel_region(body, num_threads=3)
    a_indices = sorted(i for tag, i in order if tag == "a")
    b_indices = sorted(i for tag, i in order if tag == "b")
    assert a_indices == list(range(6))
    assert b_indices == list(range(6))


# ---------------------------------------------------------------------------
# zero-trip fast path
# ---------------------------------------------------------------------------


class TestZeroTripFastPath:
    """A zero-trip loop must not dispatch a scheduler, trace, or tune."""

    @pytest.mark.parametrize("schedule", ["staticBlock", "dynamic", "guided", "auto"])
    def test_no_chunk_events_inside_a_team(self, schedule, recorder):
        calls = []

        def loop(start, end, step):
            calls.append((start, end, step))

        def body():
            run_for(loop, 5, 5, 1, schedule=schedule)
            run_for(loop, 10, 0, 1, schedule=schedule)

        parallel_region(body, num_threads=3)
        assert calls == []
        assert recorder.events(EventKind.CHUNK) == []
        assert recorder.events(EventKind.TUNE_DECISION) == []

    def test_no_tuner_observation(self):
        from repro.tune.tuner import get_tuner

        def body():
            run_for(lambda s, e, st: None, 3, 3, 1, schedule="auto", loop_name="empty")

        parallel_region(body, num_threads=2)
        assert get_tuner().sites() == []

    def test_sequential_zero_trip_records_nothing(self, recorder):
        calls = []
        run_for(lambda s, e, st: calls.append(1), 7, 7, 1)
        assert calls == []
        assert recorder.events(EventKind.CHUNK) == []

    def test_implicit_barrier_still_synchronises(self):
        """Members must still meet at the zero-trip loop's implicit barrier."""
        with shm.SharedArray.zeros(4, np.int64) as stamps:

            def body():
                stamps[ctx.get_thread_id()] = 1
                run_for(lambda s, e, st: None, 0, 0, 1)
                assert int(np.asarray(stamps)[: ctx.get_num_team_threads()].sum()) == ctx.get_num_team_threads()

            parallel_region(body, num_threads=4)

    def test_zero_trip_keeps_ordinals_aligned(self):
        """A zero-trip loop still consumes a loop ordinal on every member, so
        a following dynamic loop uses matching claim slots."""
        total = 24
        with shm.SharedArray.zeros(total, np.int64) as counts:

            def loop(start, end, step):
                for i in range(start, end, step):
                    counts[i] += 1

            def body():
                run_for(loop, 0, 0, 1, schedule="dynamic")
                run_for(loop, 0, total, 1, schedule="dynamic")

            parallel_region(body, num_threads=4, backend="processes")
            assert np.asarray(counts).tolist() == [1] * total


# ---------------------------------------------------------------------------
# collapse(n) worksharing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
class TestCollapseConformance:
    @pytest.mark.parametrize("schedule", ["staticBlock", "staticCyclic", "dynamic", "guided", "auto"])
    def test_collapse2_covers_grid_once(self, backend_name, schedule):
        rows, cols = 5, 7
        with shm.SharedArray.zeros((rows, cols), np.int64) as hits:

            def tile(r0, r1, rs, c0, c1, cs):
                for r in range(r0, r1, rs):
                    for c in range(c0, c1, cs):
                        hits[r, c] += 1

            def body():
                run_for(tile, 0, rows, 1, 0, cols, 1, collapse=2, schedule=schedule, chunk=2)

            parallel_region(body, num_threads=3, backend=backend_name)
            assert (np.asarray(hits) == 1).all()

    def test_collapse3_with_extra_args(self, backend_name):
        shape = (3, 4, 2)
        with shm.SharedArray.zeros(shape, np.int64) as hits:

            def tile(a0, a1, asn, b0, b1, bs, c0, c1, cs, bump):
                for a in range(a0, a1, asn):
                    for b in range(b0, b1, bs):
                        for c in range(c0, c1, cs):
                            hits[a, b, c] += bump

            def body():
                run_for(tile, 0, 3, 1, 0, 4, 1, 0, 2, 1, 5, collapse=3, schedule="dynamic")

            parallel_region(body, num_threads=4, backend=backend_name)
            assert (np.asarray(hits) == 5).all()


def test_collapse_requires_all_range_parameters():
    from repro.runtime.exceptions import SchedulingError

    with pytest.raises(SchedulingError, match="collapse"):
        run_for(lambda *a: None, 0, 4, 1, collapse=2)


def test_collapse_ordered_pins_rows(recorder):
    """ordered + collapse(2): rows stay whole and run in outer-index order."""
    from repro.runtime.ordered import ordered_call

    executed = []
    lock = threading.Lock()

    def tile(r0, r1, rs, c0, c1, cs):
        for r in range(r0, r1, rs):
            def record(row=r, lo=c0, hi=c1):
                with lock:
                    executed.append((row, lo, hi))
            ordered_call(r, record)

    def body():
        run_for(tile, 0, 6, 1, 0, 5, 1, collapse=2, ordered=True, schedule="dynamic")

    parallel_region(body, num_threads=3)
    # Ordered hand-off: rows complete in outer order, and each body call saw
    # the full (never split) inner range.
    assert executed == [(row, 0, 5) for row in range(6)]


def test_collapse_ordered_beyond_two_dims_rejected():
    from repro.runtime.exceptions import SchedulingError

    def body():
        run_for(lambda *a: None, 0, 2, 1, 0, 2, 1, 0, 2, 1, collapse=3, ordered=True)

    with pytest.raises(Exception) as excinfo:
        parallel_region(body, num_threads=2)
    assert "ordered" in str(excinfo.value)


def test_collapse_taskloop_covers_grid():
    from repro.runtime.tasks import run_taskloop

    rows, cols = 6, 5
    with shm.SharedArray.zeros((rows, cols), np.int64) as hits:

        def tile(r0, r1, rs, c0, c1, cs):
            for r in range(r0, r1, rs):
                for c in range(c0, c1, cs):
                    hits[r, c] += 1

        def body():
            run_taskloop(tile, 0, rows, 1, 0, cols, 1, collapse=2, grainsize=4)

        parallel_region(body, num_threads=3)
        assert (np.asarray(hits) == 1).all()


# ---------------------------------------------------------------------------
# sections construct
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
class TestSectionsConformance:
    def test_each_section_runs_exactly_once(self, backend_name):
        sections = 7
        with shm.SharedArray.zeros(sections, np.int64) as counts:

            def make(index):
                def section():
                    counts[index] += 1
                return section

            def body():
                from repro.runtime.worksharing import run_sections

                run_sections(*[make(i) for i in range(sections)], name="conf")

            parallel_region(body, num_threads=3, backend=backend_name)
            assert np.asarray(counts).tolist() == [1] * sections

    def test_static_schedule_assignment(self, backend_name):
        """Sections accept static schedules through the same dispatch path."""
        sections = 6
        with shm.SharedArray.zeros(sections, np.int64) as owners:

            def make(index):
                def section():
                    owners[index] = ctx.get_thread_id() + 1
                return section

            def body():
                from repro.runtime.worksharing import run_sections

                run_sections(*[make(i) for i in range(sections)], schedule="staticCyclic", name="static")

            parallel_region(body, num_threads=2, backend=backend_name)
            owned = np.asarray(owners)
            assert (owned >= 1).all()
            if backend_name != "serial":
                # cyclic assignment: section i belongs to member i % 2
                assert owned.tolist() == [(i % 2) + 1 for i in range(sections)]


def test_sections_sequential_outside_region():
    from repro.runtime.worksharing import run_sections

    order = []
    results = run_sections(*(lambda i=i: order.append(i) or i * 10 for i in range(4)))
    assert order == [0, 1, 2, 3]
    assert results == {0: 0, 1: 10, 2: 20, 3: 30}


def test_sections_results_returned_per_member():
    collected = {}
    lock = threading.Lock()

    def body():
        from repro.runtime.worksharing import run_sections

        mine = run_sections(*(lambda i=i: i * i for i in range(5)), name="res")
        with lock:
            collected[ctx.get_thread_id()] = mine

    parallel_region(body, num_threads=2)
    merged = {}
    for mine in collected.values():
        merged.update(mine)
    assert merged == {i: i * i for i in range(5)}


def test_sections_trace_events(recorder):
    def body():
        from repro.runtime.worksharing import run_sections

        run_sections(*(lambda: None for _ in range(3)), name="traced")

    parallel_region(body, num_threads=2)
    events = recorder.events(EventKind.SECTION)
    assert sorted(e.data["index"] for e in events) == [0, 1, 2]
    assert all(e.data["sections"] == "traced" for e in events)
    assert all(e.data["elapsed"] >= 0.0 for e in events)


def test_sections_auto_schedule_rejected():
    from repro.runtime.worksharing import run_sections

    def body():
        run_sections(lambda: None, schedule="auto")

    with pytest.raises(Exception) as excinfo:
        parallel_region(body, num_threads=2)
    assert "auto" in str(excinfo.value)


def test_empty_sections_still_barrier():
    from repro.runtime.worksharing import run_sections

    def body():
        assert run_sections() == {}

    parallel_region(body, num_threads=2)


def test_claim_section_distributes_encounters():
    from repro.runtime.worksharing import claim_section

    winners = []
    lock = threading.Lock()

    def body():
        for encounter in range(6):
            if claim_section("demo"):
                with lock:
                    winners.append(encounter)

    parallel_region(body, num_threads=3)
    assert sorted(winners) == list(range(6))


def test_sequential_sections_record_a_cost_chunk(recorder):
    """The sequential path must emit a CHUNK cost carrier alongside the
    SECTION markers, or the perf model (which prices sections via CHUNK
    events) would drop the work entirely."""
    from repro.runtime.worksharing import run_sections

    run_sections(*(lambda: None for _ in range(3)), name="seq-cost")
    chunks = recorder.events(EventKind.CHUNK)
    assert len(chunks) == 1
    assert chunks[0].data["loop"] == "seq-cost"
    assert (chunks[0].data["start"], chunks[0].data["end"]) == (0, 3)
    assert len(recorder.events(EventKind.SECTION)) == 3
