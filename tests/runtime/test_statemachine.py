"""Stateful fuzzing of the runtime API with hypothesis rule-based machines.

ROADMAP item 5's harness: a :class:`~hypothesis.stateful.RuleBasedStateMachine`
interleaves parallel regions, workshared loops, explicit tasks, named locks and
nested teams in randomised orders — the lifecycles the example-based
conformance suites only exercise in fixed sequences.  Every rule checks the
runtime's core invariants (results identical to a serial oracle, no leaked
execution context, lock registry re-entrant across regions), so hypothesis
shrinks any ordering bug it finds to a minimal reproducing step sequence.

Backends: serial and threads — the in-process backends where thousands of
short regions are cheap.  The process/interpreter paths get their own
deterministic suites (``test_faults.py``, ``test_subinterp.py``); forking per
fuzz step would dominate the runtime without adding interleaving coverage.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule, run_state_machine_as_test

from repro.runtime import context as ctx
from repro.runtime.backend import SerialBackend, ThreadBackend
from repro.runtime.critical import critical_call
from repro.runtime.locks import global_locks
from repro.runtime.tasks import spawn_future, spawn_task, task_wait
from repro.runtime.team import parallel_region
from repro.runtime.worksharing import run_for

#: shared tuning: each machine run is a fresh runtime interaction sequence;
#: regions are tiny, so generous step counts stay fast.  The function-scoped
#: fixture health check is suppressed deliberately: the conftest autouse
#: fixture resets *global* runtime state once around the whole test, and the
#: machine's @initialize resets the per-example state hypothesis cares about.
MACHINE_SETTINGS = settings(
    max_examples=15,
    stateful_step_count=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class RuntimeLifecycleMachine(RuleBasedStateMachine):
    """Interleave region / loop / task / lock / nested-team lifecycles."""

    def __init__(self) -> None:
        super().__init__()
        self.backend = ThreadBackend()
        self.counter_total = 0  # serial oracle for every counting region run

    @initialize(backend=st.sampled_from(["serial", "threads"]))
    def pick_backend(self, backend):
        self.backend = SerialBackend() if backend == "serial" else ThreadBackend()

    # -- rules ---------------------------------------------------------------

    @rule(num_threads=st.integers(min_value=1, max_value=4))
    def spmd_region(self, num_threads):
        """A bare SPMD region: every member observes a consistent context."""
        observed = []

        def body():
            observed.append((ctx.get_thread_id(), ctx.get_num_team_threads(), ctx.get_level()))

        parallel_region(body, num_threads=num_threads, backend=self.backend, name="fuzz.spmd")
        size = observed[0][1]
        assert sorted(tid for tid, _, _ in observed) == list(range(size))
        assert all(n == size and level == 1 for _, n, level in observed)

    @rule(
        num_threads=st.integers(min_value=1, max_value=4),
        span=st.integers(min_value=0, max_value=40),
        schedule=st.sampled_from(["static_block", "static_cyclic", "dynamic", "guided"]),
    )
    def workshared_loop(self, num_threads, span, schedule):
        """run_for must cover [0, span) exactly once under any schedule."""
        hits = [0] * span

        def loop(start, end, step):
            for i in range(start, end, step):
                hits[i] += 1

        def body():
            run_for(loop, 0, span, 1, schedule=schedule, loop_name="fuzz.loop")

        parallel_region(body, num_threads=num_threads, backend=self.backend, name="fuzz.for")
        assert hits == [1] * span

    @rule(
        num_threads=st.integers(min_value=1, max_value=4),
        increments=st.integers(min_value=1, max_value=8),
    )
    def critical_counter(self, num_threads, increments):
        """Named-lock mutual exclusion matches the serial oracle."""
        cell = {"value": 0}

        def bump():
            cell["value"] += 1

        def body():
            for _ in range(increments):
                critical_call(bump, key="fuzz.counter")

        parallel_region(body, num_threads=num_threads, backend=self.backend, name="fuzz.critical")
        # A serial team is clamped to one member; threads run all of them.
        members = 1 if isinstance(self.backend, SerialBackend) else num_threads
        assert cell["value"] == members * increments
        self.counter_total += cell["value"]

    @rule(tasks=st.integers(min_value=1, max_value=6))
    def task_region(self, tasks):
        """Spawned tasks all complete before task_wait returns."""
        done = []

        def body():
            if ctx.get_thread_id() == 0:
                for index in range(tasks):
                    spawn_task(lambda i=index: done.append(i))
            task_wait()

        parallel_region(body, num_threads=2, backend=self.backend, name="fuzz.tasks")
        assert sorted(done) == list(range(tasks))

    @rule(value=st.integers(min_value=-100, max_value=100))
    def future_result(self, value):
        """A future's result round-trips through the task pool."""
        def body():
            if ctx.get_thread_id() == 0:
                future = spawn_future(lambda: value * 2)
                assert future.get() == value * 2
            task_wait()

        parallel_region(body, num_threads=2, backend=self.backend, name="fuzz.future")

    @rule(outer=st.integers(min_value=1, max_value=3), inner=st.integers(min_value=1, max_value=3))
    def nested_teams(self, outer, inner):
        """Teams-of-teams: inner regions see the right level and ancestry."""
        records = []

        def inner_body():
            records.append((ctx.get_level(), ctx.get_ancestor_thread_id(0), ctx.get_thread_id()))

        def outer_body():
            parallel_region(inner_body, num_threads=inner, backend=self.backend, name="fuzz.inner")

        parallel_region(outer_body, num_threads=outer, backend=self.backend, name="fuzz.outer")
        assert records, "every outer member must have run an inner region"
        assert all(level == 2 for level, _, _ in records)

    # -- invariants ----------------------------------------------------------

    @invariant()
    def no_leaked_context(self):
        """Between steps the fuzz thread must be outside any region."""
        assert ctx.current_context() is None
        assert ctx.get_thread_id() == 0
        assert not ctx.in_parallel()

    @invariant()
    def counter_oracle_is_consistent(self):
        assert self.counter_total >= 0


@pytest.mark.parametrize("machine", [RuntimeLifecycleMachine])
def test_runtime_lifecycle_state_machine(machine, _clean_runtime_state):
    # The schemathesis idiom (SNIPPETS Snippet 3): drive the machine through
    # hypothesis' own runner so failures shrink to a minimal rule sequence.
    run_state_machine_as_test(machine, settings=MACHINE_SETTINGS)


def test_machine_rules_run_once_each():
    """Smoke: every rule works as a plain method call (no hypothesis search)."""
    machine = RuntimeLifecycleMachine()
    machine.pick_backend(backend="threads")
    machine.spmd_region(num_threads=3)
    machine.workshared_loop(num_threads=2, span=17, schedule="dynamic")
    machine.critical_counter(num_threads=2, increments=3)
    machine.task_region(tasks=4)
    machine.future_result(value=21)
    machine.nested_teams(outer=2, inner=2)
    machine.no_leaked_context()
    global_locks.clear()
