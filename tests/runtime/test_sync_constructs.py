"""Tests for critical, single/master, ordered, thread-local and task constructs."""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import context as ctx
from repro.runtime.critical import critical_call, fine_grained_call, reader_call, writer_call
from repro.runtime.exceptions import ReductionError, TaskError
from repro.runtime.locks import LockRegistry, ReadWriteLock, StripedLocks
from repro.runtime.ordered import OrderedRegion, install_ordered_region, ordered_call
from repro.runtime.single import MasterRegion, SingleRegion
from repro.runtime.tasks import TaskPool, spawn_future, spawn_task, task_wait
from repro.runtime.team import parallel_region
from repro.runtime.threadlocal import (
    ArrayReducer,
    CallableReducer,
    ListReducer,
    SumReducer,
    ThreadLocalStore,
    reduce_values,
)
from repro.runtime.trace import EventKind
from repro.runtime.worksharing import run_for


class TestCritical:
    def test_mutual_exclusion_inside_region(self):
        counter = {"value": 0}

        def unsafe_increment():
            current = counter["value"]
            time.sleep(0.0001)
            counter["value"] = current + 1

        def body():
            for _ in range(20):
                critical_call(unsafe_increment, key="counter")

        parallel_region(body, num_threads=4)
        assert counter["value"] == 80

    def test_named_locks_are_independent(self):
        registry = LockRegistry()
        held = threading.Event()
        entered_b = threading.Event()

        def hold_a():
            held.set()
            entered_b.wait(2)

        def enter_b():
            entered_b.set()

        def body():
            if ctx.get_thread_id() == 0:
                critical_call(hold_a, key="a", registry=registry)
            else:
                held.wait(2)
                critical_call(enter_b, key="b", registry=registry)

        parallel_region(body, num_threads=2)
        assert entered_b.is_set()

    def test_captured_lock_per_target_object(self):
        registry = LockRegistry()
        target = object()
        calls = []
        critical_call(lambda: calls.append(1), key=None, target=target, registry=registry)
        assert calls == [1]
        with pytest.raises(ValueError):
            critical_call(lambda: None, key=None, registry=registry)

    def test_critical_records_trace(self, recorder):
        def body():
            critical_call(lambda: None, key="traced")

        parallel_region(body, num_threads=2)
        events = recorder.events(EventKind.CRITICAL)
        assert len(events) == 2
        assert all(e.data["key"] == "traced" for e in events)

    def test_sequential_semantics_outside_region(self):
        assert critical_call(lambda: 42, key="solo") == 42

    def test_fine_grained_and_rw_helpers(self):
        striped = StripedLocks(4)
        assert fine_grained_call(lambda: "x", striped.lock_for(1)) == "x"
        rw = ReadWriteLock()
        assert reader_call(lambda: 1, rw) == 1
        assert writer_call(lambda: 2, rw) == 2


class TestSingleMaster:
    def test_single_executes_once_and_broadcasts(self):
        executions = []
        lock = threading.Lock()
        received = []

        def produce():
            with lock:
                executions.append(ctx.get_thread_id())
            return "value"

        def body():
            result = SingleRegion("s").run(produce)
            with lock:
                received.append(result)

        parallel_region(body, num_threads=4)
        assert len(executions) == 1
        assert received == ["value"] * 4

    def test_single_nowait_returns_none_to_skippers(self):
        results = []
        lock = threading.Lock()

        def body():
            value = SingleRegion("s").run(lambda: "done", wait_for_value=False)
            with lock:
                results.append(value)

        parallel_region(body, num_threads=4)
        assert results.count("done") == 1
        assert results.count(None) == 3

    def test_master_only_master_executes(self):
        executions = []
        lock = threading.Lock()

        def produce():
            with lock:
                executions.append(ctx.get_thread_id())
            return ctx.get_thread_id()

        def body():
            return MasterRegion("m").run(produce)

        parallel_region(body, num_threads=4)
        assert executions == [0]

    def test_master_broadcasts_value(self):
        received = []
        lock = threading.Lock()

        def body():
            value = MasterRegion("m").run(lambda: 123)
            with lock:
                received.append(value)

        parallel_region(body, num_threads=3)
        assert received == [123, 123, 123]

    def test_master_no_broadcast_skips_waiting(self):
        received = []
        lock = threading.Lock()

        def body():
            value = MasterRegion("m").run(lambda: 7, broadcast=False)
            with lock:
                received.append(value)

        parallel_region(body, num_threads=3)
        assert received.count(7) == 1
        assert received.count(None) == 2

    def test_repeated_single_uses_fresh_slots(self):
        values = []
        lock = threading.Lock()

        def body():
            for i in range(3):
                v = SingleRegion("loop").run(lambda i=i: i * 10)
                with lock:
                    values.append(v)

        parallel_region(body, num_threads=2)
        assert sorted(values) == [0, 0, 10, 10, 20, 20]

    def test_sequential_semantics_outside_region(self):
        assert SingleRegion().run(lambda: 5) == 5
        assert MasterRegion().run(lambda: 6) == 6

    def test_single_propagates_producer_exception(self):
        def body():
            SingleRegion("err").run(lambda: (_ for _ in ()).throw(ValueError("bad")))

        with pytest.raises(Exception):
            parallel_region(body, num_threads=2)


class TestOrdered:
    def test_ordered_region_enforces_iteration_order(self):
        order = []

        def loop(start, end, step):
            for i in range(start, end, step):
                ordered_call(i, lambda i=i: order.append(i))

        def body():
            run_for(loop, 0, 16, 1, schedule="staticCyclic", ordered=True)

        parallel_region(body, num_threads=4)
        assert order == list(range(16))

    def test_ordered_outside_loop_runs_directly(self):
        assert ordered_call(3, lambda: "ok") == "ok"

    def test_ordered_region_rejects_foreign_iterations(self):
        region = OrderedRegion(0, 10, 2)
        with pytest.raises(Exception):
            region.run(1, lambda: None)

    def test_skip_advances_ticket(self):
        region = OrderedRegion(0, 3, 1)
        seen = []
        region.run(0, lambda: seen.append(0))
        region.skip(1)
        region.run(2, lambda: seen.append(2))
        assert seen == [0, 2]

    def test_install_returns_previous(self):
        def body():
            region = OrderedRegion(0, 4, 1)
            previous = install_ordered_region(region)
            assert previous is None
            again = install_ordered_region(None)
            assert again is region

        parallel_region(body, num_threads=1)


class TestThreadLocalStore:
    def test_first_read_initialises_from_shared(self):
        store = ThreadLocalStore()
        owner = object()
        store.set_shared(owner, "x", 10)
        assert store.read(owner, "x") == 10

    def test_write_then_read_is_local(self):
        store = ThreadLocalStore()
        owner = object()
        store.set_shared(owner, "x", 1)
        store.write(owner, "x", 99)
        assert store.read(owner, "x") == 99
        assert store.get_shared(owner, "x") == 1

    def test_locals_are_per_team_thread(self):
        store = ThreadLocalStore()
        owner = object()
        store.set_shared(owner, "x", 0)
        observed = {}
        lock = threading.Lock()

        def body():
            tid = ctx.get_thread_id()
            store.write(owner, "x", tid * 100)
            with lock:
                observed[tid] = store.read(owner, "x")

        parallel_region(body, num_threads=4)
        assert observed == {0: 0, 1: 100, 2: 200, 3: 300}
        assert len(store.local_values(owner, "x")) == 4

    def test_copy_function_prevents_aliasing(self):
        store = ThreadLocalStore()
        owner = object()
        shared = [1, 2, 3]
        store.set_shared(owner, "data", shared)
        local = store.read(owner, "data", copy=list)
        local.append(4)
        assert store.get_shared(owner, "data") == [1, 2, 3]

    def test_reduce_merges_locals_into_shared(self):
        store = ThreadLocalStore()
        owner = object()
        store.set_shared(owner, "total", 0)

        def body():
            store.write(owner, "total", ctx.get_thread_id() + 1)

        parallel_region(body, num_threads=4)
        merged = store.reduce(owner, "total", SumReducer())
        assert merged == 1 + 2 + 3 + 4
        assert store.get_shared(owner, "total") == 10
        assert store.local_values(owner, "total") == []

    def test_reduce_empty_raises(self):
        store = ThreadLocalStore()
        with pytest.raises(ReductionError):
            store.reduce(object(), "missing", SumReducer(), include_shared=False)

    def test_reducers(self):
        assert SumReducer().merge(2, 3) == 5
        assert ListReducer().merge([1], [2, 3]) == [1, 2, 3]
        import numpy as np

        reducer = ArrayReducer(shape=(3,))
        merged = reducer.merge(np.ones(3), np.full(3, 2.0))
        assert merged.tolist() == [3.0, 3.0, 3.0]
        assert reducer.identity().tolist() == [0.0, 0.0, 0.0]
        custom = CallableReducer(max, identity_value=float("-inf"))
        assert custom.merge(3, 7) == 7
        assert reduce_values([1, 2, 3], SumReducer()) == 6
        with pytest.raises(ReductionError):
            reduce_values([], SumReducer())


class TestTasks:
    def test_spawn_and_join(self):
        handle = spawn_task(lambda x: x * 2, 21)
        assert handle.join(timeout=5) == 42
        assert handle.done

    def test_future_result_blocks_until_ready(self):
        gate = threading.Event()

        def slow():
            gate.wait(2)
            return "ready"

        future = spawn_future(slow)
        assert not future.ready
        gate.set()
        assert future.get(timeout=5) == "ready"
        assert future.ready

    def test_task_wait_joins_outstanding_tasks(self):
        pool = TaskPool()
        for i in range(5):
            pool.spawn(lambda i=i: i)
        assert pool.outstanding == 5
        results = pool.wait_all(timeout=5)
        assert sorted(results) == [0, 1, 2, 3, 4]
        assert pool.outstanding == 0

    def test_task_failure_wrapped(self):
        def failing():
            raise ValueError("nope")

        handle = spawn_task(failing)
        with pytest.raises(TaskError) as excinfo:
            handle.join(timeout=5)
        assert isinstance(excinfo.value.cause, ValueError)

    def test_task_wait_in_region_scope(self):
        results = []
        lock = threading.Lock()

        def body():
            spawn_task(lambda: ctx.get_thread_id())
            finished = task_wait(timeout=5)
            with lock:
                results.extend(finished)

        parallel_region(body, num_threads=3)
        assert len(results) == 3

    def test_join_timeout(self):
        gate = threading.Event()
        handle = spawn_task(lambda: gate.wait(5))
        with pytest.raises(TaskError):
            handle.join(timeout=0.05)
        gate.set()
