"""Tune-cache persistence: schema round-trip, corruption tolerance, wiring."""

from __future__ import annotations

import json

from repro.runtime.config import RuntimeConfig, config_override
from repro.tune import (
    SCHEMA_VERSION,
    Candidate,
    LoopTuner,
    TunerConfig,
    candidates_for,
    load_cache,
    save_cache,
)

#: synthetic costs far above the default serial cutoff (~0.24 ms).
BASE_COST = 0.050


def converge(tuner: LoopTuner, costs, *, loop="loop", total=1000, team=4, limit=40):
    """Drive the tuner with ``costs(candidate)`` until converged; returns invocations."""
    for invocation in range(1, limit + 1):
        ticket = tuner.begin_invocation(loop, total, team)
        tuner.observe(ticket, costs(ticket.candidate))
        site = tuner.site(loop, total, team)
        if site.converged and not site.probation:
            return invocation
    raise AssertionError(f"no convergence within {limit} invocations")


def make_costs(best: Candidate, *, best_seconds=BASE_COST, other_seconds=2 * BASE_COST):
    def costs(candidate: Candidate) -> float:
        return best_seconds if candidate == best else other_seconds

    return costs


class TestDocumentRoundTrip:
    def test_save_then_load_preserves_entries(self, tmp_path):
        path = tmp_path / "cache.json"
        entries = {
            "loop|10|4": {"schedule": "dynamic", "chunk": 4, "serial": False, "best_seconds": 0.01},
            "tiny|7|2": {"schedule": "static_block", "chunk": 1, "serial": True, "best_seconds": None},
        }
        save_cache(path, entries)
        assert load_cache(path) == entries

    def test_document_schema(self, tmp_path):
        path = tmp_path / "cache.json"
        save_cache(path, {"loop|10|4": {"schedule": "guided", "chunk": 1, "serial": False}})
        document = json.loads(path.read_text())
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["generated_by"] == "repro.tune"
        assert set(document["sites"]) == {"loop|10|4"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_cache(tmp_path / "nope.json") == {}
        assert load_cache(None) == {}

    def test_corrupt_file_loads_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json !")
        assert load_cache(path) == {}

    def test_wrong_schema_version_loads_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema_version": 999, "sites": {"k": {"schedule": "dynamic"}}}))
        assert load_cache(path) == {}

    def test_malformed_entries_are_dropped(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "sites": {
                        "good|1|2": {"schedule": "dynamic"},
                        "no-schedule|1|2": {"chunk": 3},
                        "not-a-dict|1|2": 42,
                    },
                }
            )
        )
        assert set(load_cache(path)) == {"good|1|2"}


class TestTunerPersistence:
    def test_converged_site_written_and_warm_start_confirms_in_one_invocation(self, tmp_path):
        """The headline persistence property: warmed tuners converge in <= 2 invocations."""
        path = tmp_path / "cache.json"
        best = candidates_for(1000, 4)[2]

        cold = LoopTuner(TunerConfig(), cache_path=str(path))
        cold_invocations = converge(cold, make_costs(best))
        assert cold_invocations > 2  # the cold run actually had to search
        entries = load_cache(path)
        key = "loop|10|4"
        assert entries[key]["schedule"] == best.schedule.value
        assert entries[key]["chunk"] == best.chunk

        warm = LoopTuner(TunerConfig(), cache_path=str(path))
        ticket = warm.begin_invocation("loop", 1000, 4)
        assert ticket.candidate == best  # decided from the cache, invocation 1
        assert ticket.phase == "confirm"
        warm.observe(ticket, BASE_COST)
        site = warm.site("loop", 1000, 4)
        assert site.converged and not site.probation  # confirmed: 1 invocation

    def test_stale_cache_entry_is_rejected_and_reexplored(self, tmp_path):
        path = tmp_path / "cache.json"
        best = candidates_for(1000, 4)[0]
        cold = LoopTuner(TunerConfig(), cache_path=str(path))
        converge(cold, make_costs(best))

        warm = LoopTuner(TunerConfig(), cache_path=str(path))
        ticket = warm.begin_invocation("loop", 1000, 4)
        payload = warm.observe(ticket, 100 * BASE_COST)  # cached choice is now terrible
        assert payload["transition"] == "cache-rejected"
        assert not warm.site("loop", 1000, 4).converged

    def test_serial_decision_roundtrips(self, tmp_path):
        path = tmp_path / "cache.json"
        cold = LoopTuner(TunerConfig(), cache_path=str(path))
        ticket = cold.begin_invocation("tiny", 64, 4)
        cold.observe(ticket, 1e-6)  # far below the serial cutoff
        assert load_cache(path)["tiny|7|4"]["serial"] is True

        warm = LoopTuner(TunerConfig(), cache_path=str(path))
        assert warm.begin_invocation("tiny", 64, 4).candidate.serial

    def test_cache_path_resolves_from_runtime_config(self, tmp_path):
        path = tmp_path / "from_config.json"
        with config_override(tune_cache=str(path)):
            tuner = LoopTuner(TunerConfig())
            assert tuner.cache_path == str(path)
        assert LoopTuner(TunerConfig(), cache_path=None).cache_path is None

    def test_env_variable_seeds_the_config(self, monkeypatch, tmp_path):
        monkeypatch.setenv("AOMP_TUNE_CACHE", str(tmp_path / "env.json"))
        assert RuntimeConfig().tune_cache == str(tmp_path / "env.json")
        monkeypatch.delenv("AOMP_TUNE_CACHE")
        assert RuntimeConfig().tune_cache is None

    def test_schedule_env_variable_seeds_the_config(self, monkeypatch):
        monkeypatch.setenv("AOMP_SCHEDULE", "dynamic,4")
        assert RuntimeConfig().default_schedule == "dynamic,4"
        monkeypatch.setenv("AOMP_SCHEDULE", "auto")
        assert RuntimeConfig().default_schedule == "auto"
        monkeypatch.delenv("AOMP_SCHEDULE")
        monkeypatch.delenv("OMP_SCHEDULE", raising=False)
        assert RuntimeConfig().default_schedule == "static_block"
