"""Convergence properties of the adaptive tuner (synthetic observations).

These tests drive :class:`repro.tune.LoopTuner` directly — decide, then feed
a deterministic synthetic wall time per candidate — so convergence bounds are
exact and independent of machine noise.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.scheduler import Schedule
from repro.tune import Candidate, LoopTuner, TunerConfig, candidates_for, trip_bucket

#: synthetic costs far above the default serial cutoff (~0.24 ms).
BASE_COST = 0.050


def converge(tuner: LoopTuner, costs, *, loop="loop", total=1000, team=4, limit=40):
    """Drive the tuner with ``costs[candidate]`` until converged; returns invocations."""
    for invocation in range(1, limit + 1):
        ticket = tuner.begin_invocation(loop, total, team)
        tuner.observe(ticket, costs(ticket.candidate))
        site = tuner.site(loop, total, team)
        if site.converged and not site.probation:
            return invocation
    raise AssertionError(f"no convergence within {limit} invocations")


def make_costs(best: Candidate, *, best_seconds=BASE_COST, other_seconds=2 * BASE_COST):
    def costs(candidate: Candidate) -> float:
        return best_seconds if candidate == best else other_seconds

    return costs


class TestStationaryConvergence:
    def test_converges_within_samples_times_candidates(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        candidates = candidates_for(1000, 4)
        best = candidates[1]
        invocations = converge(tuner, make_costs(best))
        site = tuner.site("loop", 1000, 4)
        assert site.choice == best
        assert invocations <= TunerConfig().samples_per_candidate * len(candidates) + 1

    def test_converged_site_keeps_returning_the_choice(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        best = candidates_for(1000, 4)[2]
        converge(tuner, make_costs(best))
        for _ in range(5):
            ticket = tuner.begin_invocation("loop", 1000, 4)
            assert ticket.candidate == best
            assert ticket.phase == "converged"
            tuner.observe(ticket, BASE_COST)

    def test_payload_reports_decision_and_convergence(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        ticket = tuner.begin_invocation("loop", 1000, 4)
        payload = tuner.observe(ticket, BASE_COST)
        assert payload["loop"] == "loop"
        assert payload["schedule"] == ticket.candidate.schedule.value
        assert payload["invocation"] == 1
        assert payload["elapsed"] == pytest.approx(BASE_COST)

    @settings(max_examples=25, deadline=None)
    @given(
        costs_ms=st.lists(
            st.integers(min_value=10, max_value=1000), min_size=5, max_size=5, unique=True
        )
    )
    def test_property_converges_to_the_cheapest_candidate(self, costs_ms):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        candidates = candidates_for(1000, 4)
        table = {c: ms / 1000.0 for c, ms in zip(candidates, costs_ms)}
        converge(tuner, lambda c: table[c])
        site = tuner.site("loop", 1000, 4)
        assert table[site.choice] == min(table.values())


class TestRegimeChanges:
    def test_trip_count_regime_change_reexplores(self):
        """A converged loop re-enters exploration when its trip count jumps buckets."""
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        best = candidates_for(1000, 4)[0]
        converge(tuner, make_costs(best), total=1000)
        assert trip_bucket(1_000_000) != trip_bucket(1000)

        ticket = tuner.begin_invocation("loop", 1_000_000, 4)
        new_site = tuner.site("loop", 1_000_000, 4)
        assert not new_site.converged  # fresh exploration for the new regime
        assert ticket.phase in ("probe", "explore")
        # ... while the old regime's site stays converged.
        assert tuner.site("loop", 1000, 4).converged

    def test_same_bucket_totals_share_a_site(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        assert tuner.site("loop", 1000, 4) is tuner.site("loop", 1023, 4)
        assert tuner.site("loop", 1000, 4) is not tuner.site("loop", 1024, 4)

    def test_cost_drift_reexplores_after_patience(self):
        """A converged site whose choice got slow re-explores and re-converges."""
        config = TunerConfig(drift_floor_seconds=1e-4)
        tuner = LoopTuner(config, cache_path=None)
        candidates = candidates_for(1000, 4)
        first_best, second_best = candidates[0], candidates[3]
        converge(tuner, make_costs(first_best))

        # The workload changes shape: the old choice becomes 10x slower.
        for _ in range(config.drift_patience):
            ticket = tuner.begin_invocation("loop", 1000, 4)
            assert ticket.candidate == first_best
            payload = tuner.observe(ticket, 10 * BASE_COST)
        assert payload["transition"] == "re-explore"
        site = tuner.site("loop", 1000, 4)
        assert not site.converged
        assert site.reexplorations == 1

        converge(tuner, make_costs(second_best))
        assert tuner.site("loop", 1000, 4).choice == second_best

    def test_noise_below_drift_floor_does_not_reexplore(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        best = candidates_for(1000, 4)[0]
        costs = make_costs(best, best_seconds=1e-5, other_seconds=2e-5)  # microsecond loop
        # Microsecond-scale "loops" would trip a pure ratio test on jitter;
        # the absolute floor keeps them converged.  Serial cutoff must not
        # trigger first, so disable it.
        tuner.config.serial_margin = 0.0
        converge(tuner, costs)
        for _ in range(10):
            ticket = tuner.begin_invocation("loop", 1000, 4)
            tuner.observe(ticket, 10e-5)  # 10x ratio, microseconds absolute
        assert tuner.site("loop", 1000, 4).converged


class TestSerialFallback:
    def test_tiny_loop_routes_to_serial(self):
        """A probe faster than the serial cutoff converges to the serial fallback."""
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        cutoff = TunerConfig().serial_cutoff()
        ticket = tuner.begin_invocation("tiny", 64, 4)
        assert ticket.phase == "probe"
        payload = tuner.observe(ticket, cutoff / 2)
        assert payload["transition"] == "serial"
        site = tuner.site("tiny", 64, 4)
        assert site.converged and site.choice.serial

        follow_up = tuner.begin_invocation("tiny", 64, 4)
        assert follow_up.candidate.serial
        assert follow_up.phase == "serial"

    def test_cost_model_spinup_drives_the_cutoff(self):
        from repro.perf.cost import CostModel

        expensive_spinup = TunerConfig(cost_model=CostModel(team_spinup_seconds=0.05))
        assert expensive_spinup.serial_cutoff() == pytest.approx(0.05 * expensive_spinup.serial_margin)
        default = TunerConfig()
        assert default.serial_cutoff() < expensive_spinup.serial_cutoff()

    def test_big_loop_does_not_serialize(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        ticket = tuner.begin_invocation("big", 10_000, 4)
        payload = tuner.observe(ticket, 1.0)
        assert payload.get("transition") is None
        assert not tuner.site("big", 10_000, 4).converged


class TestEncoding:
    @pytest.mark.parametrize(
        "candidate",
        [
            Candidate(Schedule.STATIC_BLOCK),
            Candidate(Schedule.STATIC_CYCLIC, 7),
            Candidate(Schedule.DYNAMIC, 32),
            Candidate(Schedule.GUIDED, 2),
            Candidate(Schedule.STATIC_BLOCK, 1, serial=True),
        ],
    )
    def test_shm_plan_roundtrip(self, candidate):
        assert Candidate.decode(*candidate.encode()) == candidate


class TestBackendKeyedSites:
    """Sites are keyed per execution backend, with spinup-scaled cutoffs."""

    def test_cache_key_separates_backends_and_keeps_legacy_format(self):
        from repro.tune.tuner import SiteKey

        legacy = SiteKey("loop", 10, 4)
        assert legacy.cache_key() == "loop|10|4"  # pre-backend caches stay valid
        threads = SiteKey("loop", 10, 4, "threads")
        subinterp = SiteKey("loop", 10, 4, "subinterp")
        assert threads.cache_key() == "loop|10|4|threads"
        assert threads.cache_key() != subinterp.cache_key()

    def test_sites_are_independent_per_backend(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        threads_site = tuner.site("loop", 1000, 4, backend="threads")
        subinterp_site = tuner.site("loop", 1000, 4, backend="subinterp")
        legacy_site = tuner.site("loop", 1000, 4)
        assert len({id(threads_site), id(subinterp_site), id(legacy_site)}) == 3
        # A decision learned on one backend never leaks into another's site.
        converge(tuner, make_costs(candidates_for(1000, 4)[0]), loop="loop")
        assert not tuner.site("loop", 1000, 4, backend="threads").converged

    def test_spinup_scale_raises_the_serial_cutoff(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        cheap = tuner.site("cheap", 1000, 4, backend="threads", spinup_scale=1.0)
        costly = tuner.site("costly", 1000, 4, backend="subinterp", spinup_scale=6.0)
        assert costly._serial_cutoff == pytest.approx(cheap._serial_cutoff * 6.0)

    def test_scale_below_one_never_lowers_the_cutoff(self):
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        base = tuner.site("base", 1000, 4)
        clamped = tuner.site("clamped", 1000, 4, spinup_scale=0.25)
        assert clamped._serial_cutoff == pytest.approx(base._serial_cutoff)

    def test_spinup_scale_flips_the_serialise_decision(self):
        """One wall time, two backends: serial where teams are expensive."""
        cutoff = TunerConfig().serial_cutoff()
        elapsed = cutoff * 3  # above the plain cutoff, below the 6x-scaled one
        tuner = LoopTuner(TunerConfig(), cache_path=None)
        ticket = tuner.begin_invocation("flip", 1000, 4, backend="threads", spinup_scale=1.0)
        tuner.observe(ticket, elapsed)
        assert not tuner.site("flip", 1000, 4, backend="threads").converged
        ticket = tuner.begin_invocation("flip", 1000, 4, backend="subinterp", spinup_scale=6.0)
        tuner.observe(ticket, elapsed)
        site = tuner.site("flip", 1000, 4, backend="subinterp")
        assert site.converged and site.choice.serial
