"""Tests for machine models, cost models and the makespan/speedup estimation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParallelRegion, ForCyclic, call, Weaver
from repro.perf.calibrate import calibrate, clear_cache, measure_lock_overhead
from repro.perf.cost import CostModel, LoopCost, triangular_weight
from repro.perf.machines import DUAL_XEON_X5650, INTEL_I7, PAPER_MACHINES, MachineModel
from repro.perf.model import AnalyticPhase, AnalyticScenario, MakespanModel, phase_duration
from repro.perf.report import SpeedupReport, format_bar_chart, format_table
from repro.runtime.tasks import run_taskloop
from repro.runtime.team import parallel_region
from repro.runtime.trace import EventKind, TraceRecorder
from repro.runtime.worksharing import run_for


class TestMachineModel:
    def test_linear_scaling_up_to_physical_cores(self):
        machine = MachineModel("m", cores=4, hardware_threads=8)
        assert machine.effective_parallelism(1) == 1
        assert machine.effective_parallelism(4) == 4

    def test_smt_threads_add_partial_throughput(self):
        machine = MachineModel("m", cores=4, hardware_threads=8, smt_yield=0.25)
        assert machine.effective_parallelism(8) == pytest.approx(4 + 4 * 0.25)

    def test_threads_beyond_hardware_clamp(self):
        machine = MachineModel("m", cores=4, hardware_threads=8, smt_yield=0.25)
        assert machine.effective_parallelism(64) == machine.effective_parallelism(8)

    def test_memory_bound_cap(self):
        machine = MachineModel("m", cores=12, hardware_threads=24, memory_bound_cap=4.0)
        compute_only = machine.effective_parallelism(12, memory_bound_fraction=0.0)
        fully_bound = machine.effective_parallelism(12, memory_bound_fraction=1.0)
        assert compute_only == 12
        assert fully_bound == 4.0
        half = machine.effective_parallelism(12, memory_bound_fraction=0.5)
        assert 4.0 < half < 12.0

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            INTEL_I7.effective_parallelism(0)

    def test_barrier_cost_grows_with_team(self):
        assert DUAL_XEON_X5650.barrier_cost(1) == 0.0
        assert DUAL_XEON_X5650.barrier_cost(24) > DUAL_XEON_X5650.barrier_cost(2) > 0.0

    def test_paper_machines_registry(self):
        assert set(PAPER_MACHINES) == {"i7-8threads", "xeon-24threads"}
        machine, threads = PAPER_MACHINES["i7-8threads"]
        assert machine is INTEL_I7 and threads == 8


class TestCostModel:
    def test_uniform_chunk_cost(self):
        cost = LoopCost(seconds_per_unit=2.0)
        assert cost.chunk_cost(0, 10, 1) == pytest.approx(20.0)

    def test_triangular_weight(self):
        weight = triangular_weight(10)
        assert weight(0) == 9
        assert weight(9) == 0
        cost = LoopCost(seconds_per_unit=1.0, weight_fn=weight)
        assert cost.chunk_cost(0, 10, 1) == pytest.approx(45.0)

    def test_recorded_weight_takes_precedence(self):
        cost = LoopCost(seconds_per_unit=1.0)
        assert cost.chunk_cost(0, 10, 1, recorded_weight=100.0) == pytest.approx(100.0)

    def test_loop_lookup_by_suffix(self):
        model = CostModel(loops={"compute_forces": LoopCost(seconds_per_unit=5.0)})
        assert model.loop_cost("MolDyn.compute_forces").seconds_per_unit == 5.0
        assert model.loop_cost("compute_forces").seconds_per_unit == 5.0
        assert model.loop_cost("unknown") is model.default_loop

    def test_with_loop_returns_new_model(self):
        model = CostModel()
        extended = model.with_loop("x", LoopCost(seconds_per_unit=1.0))
        assert "x" in extended.loops and "x" not in model.loops

    def test_loop_registered_after_first_lookup_takes_effect(self):
        """The loop_cost memo must not pin a default-loop fallback forever."""
        model = CostModel()
        assert model.loop_cost("MolDyn.compute_forces") is model.default_loop
        model.loops["compute_forces"] = LoopCost(seconds_per_unit=5.0)
        assert model.loop_cost("MolDyn.compute_forces").seconds_per_unit == 5.0

    def test_in_place_replacement_and_same_size_key_swap(self):
        model = CostModel(loops={"x": LoopCost(seconds_per_unit=1.0)})
        assert model.loop_cost("A.x").seconds_per_unit == 1.0
        # Value replacement under the same key takes effect...
        model.loops["x"] = LoopCost(seconds_per_unit=9.0)
        assert model.loop_cost("A.x").seconds_per_unit == 9.0
        # ...and a same-size key swap falls back instead of raising KeyError.
        del model.loops["x"]
        model.loops["y"] = LoopCost(seconds_per_unit=3.0)
        assert model.loop_cost("A.x") is model.default_loop
        assert model.loop_cost("B.y").seconds_per_unit == 3.0

    def test_same_size_key_swap_supersedes_suffix_match(self):
        """A key-set change must re-resolve names even when len() is unchanged."""
        model = CostModel(loops={"A.foo": LoopCost(seconds_per_unit=1.0), "x": LoopCost(seconds_per_unit=2.0)})
        assert model.loop_cost("foo").seconds_per_unit == 1.0  # suffix match memoised
        model.loops.pop("x")
        model.loops["foo"] = LoopCost(seconds_per_unit=3.0)  # exact match appears, same size
        assert model.loop_cost("foo").seconds_per_unit == 3.0

    def test_replace_copies_do_not_share_memos(self):
        import dataclasses

        cost = LoopCost(seconds_per_unit=1.0)
        assert cost.chunk_cost(0, 10, 1) == pytest.approx(10.0)
        heavier = dataclasses.replace(cost, weight_fn=lambda i: 2.0)
        assert heavier.chunk_cost(0, 10, 1) == pytest.approx(20.0)

    def test_repeated_chunk_cost_is_memoised_per_range(self):
        calls = []

        def weight(i):
            calls.append(i)
            return 1.0

        cost = LoopCost(seconds_per_unit=2.0, weight_fn=weight)
        assert cost.chunk_cost(0, 10, 1) == pytest.approx(20.0)
        first_pass = len(calls)
        assert cost.chunk_cost(0, 10, 1) == pytest.approx(20.0)
        assert len(calls) == first_pass  # second replay hits the memo


class TestPhaseDuration:
    def test_balanced_work_scales_with_cores(self):
        machine = MachineModel("m", cores=4, hardware_threads=4)
        duration = phase_duration({t: 1.0 for t in range(4)}, {}, machine, 4)
        assert duration == pytest.approx(1.0)

    def test_imbalance_dominates(self):
        machine = MachineModel("m", cores=8, hardware_threads=8)
        duration = phase_duration({0: 10.0, 1: 1.0}, {}, machine, 2)
        assert duration == pytest.approx(10.0)

    def test_serialisation_dominates(self):
        machine = MachineModel("m", cores=8, hardware_threads=8)
        duration = phase_duration({t: 0.1 for t in range(8)}, {t: 1.0 for t in range(8)}, machine, 8)
        assert duration >= 8.0

    def test_limited_cores_bound(self):
        machine = MachineModel("m", cores=2, hardware_threads=2)
        duration = phase_duration({t: 1.0 for t in range(8)}, {}, machine, 8)
        assert duration == pytest.approx(8.0 / 2.0)


class TestMakespanFromTraces:
    def _trace_loop(self, recorder, num_threads, schedule="staticBlock", weight=None, iterations=64):
        def loop(start, end, step):
            pass

        def body():
            run_for(loop, 0, iterations, 1, schedule=schedule, loop_name="work", weight=weight)

        parallel_region(body, num_threads=num_threads, recorder=recorder)

    def test_uniform_loop_speedup_matches_cores(self):
        recorder = TraceRecorder()
        self._trace_loop(recorder, num_threads=4)
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        model = MakespanModel(CostModel(loops={"work": LoopCost(seconds_per_unit=1e-3)}), machine)
        estimate = model.estimate(recorder, 4, name="uniform")
        assert estimate.speedup == pytest.approx(4.0, rel=0.05)

    def test_triangular_loop_block_vs_cyclic(self):
        """Cyclic scheduling balances triangular loops better than block scheduling."""
        weight = triangular_weight(64)
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        cost_model = CostModel(loops={"work": LoopCost(seconds_per_unit=1e-4, weight_fn=weight)})

        block_recorder = TraceRecorder()
        self._trace_loop(block_recorder, 4, schedule="staticBlock", weight=weight)
        cyclic_recorder = TraceRecorder()
        self._trace_loop(cyclic_recorder, 4, schedule="staticCyclic", weight=weight)

        block = MakespanModel(cost_model, machine).estimate(block_recorder, 4, name="block")
        cyclic = MakespanModel(cost_model, machine).estimate(cyclic_recorder, 4, name="cyclic")
        assert cyclic.speedup > block.speedup
        assert cyclic.speedup == pytest.approx(4.0, rel=0.1)

    def test_smt_threads_give_diminishing_returns(self):
        machine = MachineModel("m", cores=4, hardware_threads=8, smt_yield=0.3, sync_overhead_us=0.0)
        cost_model = CostModel(loops={"work": LoopCost(seconds_per_unit=1e-3)})
        recorder4 = TraceRecorder()
        self._trace_loop(recorder4, 4)
        recorder8 = TraceRecorder()
        self._trace_loop(recorder8, 8)
        s4 = MakespanModel(cost_model, machine).estimate(recorder4, 4).speedup
        s8 = MakespanModel(cost_model, machine).estimate(recorder8, 8).speedup
        assert s8 > s4
        assert s8 < 8.0
        assert s8 == pytest.approx(4 + 4 * 0.3, rel=0.1)

    def test_critical_serialisation_limits_speedup(self):
        from repro.runtime.critical import critical_call
        import time as _time

        recorder = TraceRecorder()

        def body():
            for _ in range(5):
                critical_call(lambda: _time.sleep(0.002), key="hot")

        parallel_region(body, num_threads=4, recorder=recorder)
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        estimate = MakespanModel(CostModel(), machine).estimate(recorder, 4, name="critical")
        # All work is serialised: speedup must stay close to 1.
        assert estimate.speedup < 1.5

    def test_extra_sequential_time_reduces_speedup(self):
        recorder = TraceRecorder()
        self._trace_loop(recorder, 4)
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        model = MakespanModel(CostModel(loops={"work": LoopCost(seconds_per_unit=1e-3)}), machine)
        pure = model.estimate(recorder, 4)
        with_serial = model.estimate(recorder, 4, extra_sequential_time=pure.sequential_time)
        assert with_serial.speedup < pure.speedup
        assert with_serial.speedup == pytest.approx(2 * 4 / 5, rel=0.1)  # Amdahl with 50% serial

    def test_estimate_from_woven_application(self):
        """End-to-end: weave aspects, run, estimate — the full modelling pipeline."""

        class App:
            def region(self):
                self.sweep(0, 48, 1)

            def sweep(self, start, end, step):
                pass

        recorder = TraceRecorder()
        weaver = Weaver()
        weaver.weave(ForCyclic(call("App.sweep")), App)
        weaver.weave(ParallelRegion(call("App.region"), threads=6, recorder=recorder), App)
        try:
            App().region()
        finally:
            weaver.unweave_all()
        machine = MachineModel("m", cores=6, hardware_threads=6, sync_overhead_us=0.0)
        estimate = MakespanModel(CostModel(loops={"App.sweep": LoopCost(seconds_per_unit=1e-3)}), machine).estimate(
            recorder, 6
        )
        assert estimate.speedup == pytest.approx(6.0, rel=0.05)

    def test_reduction_cost_is_parallel_only(self):
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        recorder = TraceRecorder()
        self._trace_loop(recorder, 4)
        # Inject a reduction event manually.
        from repro.runtime.trace import EventKind

        recorder.record(EventKind.REDUCTION, 0, 0, elements=100000, count=4)
        cost_model = CostModel(loops={"work": LoopCost(seconds_per_unit=1e-3)}, reduction_cost_per_element=1e-6)
        estimate = MakespanModel(cost_model, machine).estimate(recorder, 4)
        # Reduction adds parallel time but no sequential time -> speedup < cores.
        assert estimate.speedup < 4.0


class TestTaskEventsInModel:
    """TASK_SPAWN/TASK_STEAL/TASK_COMPLETE events are priced by the replay."""

    def _machine(self):
        return MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)

    def test_spawn_and_steal_overheads_add_compute(self):
        recorder = TraceRecorder()
        region = recorder.new_region_id()
        recorder.record(EventKind.REGION_BEGIN, region, 0, name="r", size=2)
        recorder.record(EventKind.TASK_SPAWN, region, 0, loop="work", count=10)
        recorder.record(EventKind.TASK_STEAL, region, 1, loop="work", victim=0)
        recorder.record(EventKind.REGION_END, region, 0, name="r")

        cost_model = CostModel(task_spawn_overhead=1e-3, task_steal_overhead=5e-3)
        estimate = MakespanModel(cost_model, self._machine()).estimate(recorder, 2, name="tasks")
        # Thread 1's single steal (5 ms) dominates thread 0's 10 spawns (10 ms)... both priced.
        assert estimate.makespan == pytest.approx(10 * 1e-3, rel=0.01)
        phase = estimate.phases[0]
        assert phase.compute_per_thread[0] == pytest.approx(10 * 1e-3)
        assert phase.compute_per_thread[1] == pytest.approx(5e-3)
        # Overheads are parallel-only: sequential time is unaffected.
        assert estimate.sequential_time == 0.0

    def test_task_complete_counts_as_work_both_sides(self):
        recorder = TraceRecorder()
        region = recorder.new_region_id()
        recorder.record(EventKind.REGION_BEGIN, region, 0, name="r", size=2)
        recorder.record(EventKind.TASK_COMPLETE, region, 0, task="t0", elapsed=0.2)
        recorder.record(EventKind.TASK_COMPLETE, region, 1, task="t1", elapsed=0.2)
        recorder.record(EventKind.REGION_END, region, 0, name="r")

        estimate = MakespanModel(CostModel(), self._machine()).estimate(recorder, 2, name="tasks")
        assert estimate.sequential_time == pytest.approx(0.4)
        assert estimate.makespan == pytest.approx(0.2)
        assert estimate.speedup == pytest.approx(2.0)

    def test_taskloop_trace_replays_like_a_workshared_loop(self):
        """An executed taskloop yields CHUNK events the model prices normally."""
        recorder = TraceRecorder()

        def loop(start, end, step):
            pass

        def body():
            run_taskloop(loop, 0, 64, 1, grainsize=2, loop_name="work")

        parallel_region(body, num_threads=4, recorder=recorder)
        cost_model = CostModel(
            loops={"work": LoopCost(seconds_per_unit=1e-3)},
            task_spawn_overhead=0.0,
            task_steal_overhead=0.0,
        )
        estimate = MakespanModel(cost_model, self._machine()).estimate(recorder, 4, name="taskloop")
        assert estimate.sequential_time == pytest.approx(64 * 1e-3)
        # Work-stealing balances the uniform tiles across the team; the replay
        # cannot be worse than fully serialised nor better than perfect.
        assert 1.0 <= estimate.speedup <= 4.0 + 1e-9


class TestTuneEventsInModel:
    """TUNE_DECISION events are instant markers: replayed, never priced."""

    def _machine(self):
        return MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)

    def test_tune_decisions_add_no_cost(self):
        recorder = TraceRecorder()
        region = recorder.new_region_id()
        recorder.record(EventKind.REGION_BEGIN, region, 0, name="r", size=2)
        recorder.record(
            EventKind.TUNE_DECISION,
            region,
            0,
            loop="work",
            schedule="dynamic",
            chunk=4,
            serial=False,
            invocation=3,
            elapsed=0.01,
            converged=True,
        )
        recorder.record(EventKind.CHUNK, region, 0, loop="work", start=0, end=10, step=1, count=10)
        recorder.record(EventKind.REGION_END, region, 0, name="r")

        cost_model = CostModel(loops={"work": LoopCost(seconds_per_unit=1e-3)})
        estimate = MakespanModel(cost_model, self._machine()).estimate(recorder, 2, name="tuned")
        assert estimate.makespan == pytest.approx(10 * 1e-3)
        assert estimate.sequential_time == pytest.approx(10 * 1e-3)

    def test_adaptive_trace_replays_end_to_end(self):
        """A real schedule="auto" run replays like any workshared trace."""
        recorder = TraceRecorder()

        def loop(start, end, step):
            pass

        def body():
            for _ in range(3):
                run_for(loop, 0, 64, 1, schedule="auto", loop_name="work")

        parallel_region(body, num_threads=2, recorder=recorder)
        assert recorder.tune_decisions()

        cost_model = CostModel(loops={"work": LoopCost(seconds_per_unit=1e-3)})
        estimate = MakespanModel(cost_model, self._machine()).estimate(recorder, 2, name="auto")
        # Three invocations of 64 unit-cost iterations, however scheduled.
        assert estimate.sequential_time == pytest.approx(3 * 64 * 1e-3)
        assert 1.0 <= estimate.speedup <= 2.0 + 1e-9


class TestAnalyticScenario:
    def test_balanced_scenario(self):
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        scenario = AnalyticScenario(
            name="balanced",
            phases=[AnalyticPhase(work_per_thread=[1.0] * 4)],
            sequential_time=4.0,
            num_threads=4,
        )
        assert scenario.estimate(machine).speedup == pytest.approx(4.0)

    def test_serialized_phase(self):
        machine = MachineModel("m", cores=4, hardware_threads=4)
        scenario = AnalyticScenario(
            name="serial",
            phases=[AnalyticPhase(work_per_thread=[0.0] * 4, serialized_per_thread=[1.0] * 4)],
            sequential_time=4.0,
            num_threads=4,
        )
        assert scenario.estimate(machine).speedup == pytest.approx(1.0)

    def test_overhead_reduces_speedup(self):
        machine = MachineModel("m", cores=4, hardware_threads=4)
        base = AnalyticScenario("a", [AnalyticPhase([1.0] * 4)], 4.0, 4)
        slow = AnalyticScenario("b", [AnalyticPhase([1.0] * 4, overhead=1.0)], 4.0, 4)
        assert slow.estimate(machine).speedup < base.estimate(machine).speedup


class TestCalibration:
    def test_calibrate_returns_positive_unit_cost(self):
        clear_cache()
        result = calibrate("square-sum", lambda: (sum(i * i for i in range(20000)), 20000)[1], repeats=2)
        assert result.seconds_per_unit > 0
        assert result.units == 20000

    def test_calibrate_caches(self):
        clear_cache()
        first = calibrate("cached", lambda: 100, repeats=1)
        second = calibrate("cached", lambda: 100, repeats=1)
        assert first is second

    def test_zero_units_rejected(self):
        clear_cache()
        with pytest.raises(ValueError):
            calibrate("empty", lambda: 0, repeats=1, use_cache=False)

    def test_lock_overhead_is_small_but_positive(self):
        overhead = measure_lock_overhead(samples=2000)
        assert 0 < overhead < 1e-4


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["long-name", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]

    def test_bar_chart(self):
        chart = format_bar_chart({"a": 2.0, "b": 4.0})
        assert "####" in chart
        assert format_bar_chart({}) == "(empty)"

    def test_speedup_report_round_trip(self):
        report = SpeedupReport("demo")
        machine = MachineModel("m", cores=2, hardware_threads=2)
        scenario = AnalyticScenario("x", [AnalyticPhase([1.0, 1.0])], 2.0, 2)
        report.add("config-a", "bench-1", scenario.estimate(machine))
        report.add_value("config-b", "bench-1", 1.5)
        assert report.speedup("config-a", "bench-1") == pytest.approx(2.0)
        assert report.speedup("config-b", "bench-1") == 1.5
        assert report.configurations() == ["config-a", "config-b"]
        assert "bench-1" in report.to_table()
        with pytest.raises(KeyError):
            report.speedup("missing", "bench-1")


# -- property-based sanity on the phase algebra -------------------------------

@settings(max_examples=150, deadline=None)
@given(
    work=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=16),
    cores=st.integers(min_value=1, max_value=16),
)
def test_phase_duration_bounds(work, cores):
    """The phase duration always lies between max(work) and sum(work)."""
    machine = MachineModel("m", cores=cores, hardware_threads=cores)
    num_threads = len(work)
    duration = phase_duration({t: w for t, w in enumerate(work)}, {}, machine, num_threads)
    assert duration >= max(work) - 1e-9
    assert duration <= sum(work) + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    work=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=8),
)
def test_more_cores_never_slower(work):
    num_threads = len(work)
    small = MachineModel("s", cores=1, hardware_threads=1)
    big = MachineModel("b", cores=num_threads, hardware_threads=num_threads)
    compute = {t: w for t, w in enumerate(work)}
    assert phase_duration(compute, {}, big, num_threads) <= phase_duration(compute, {}, small, num_threads) + 1e-9


class TestNestedRegionsInModel:
    """Nested regions replay as per-level lanes, not as sibling regions."""

    def _nested_trace(self, recorder, *, outer_threads=2, inner_threads=2, iterations=32):
        def loop(start, end, step):
            pass

        def inner():
            run_for(loop, 0, iterations, 1, loop_name="inner_work")

        def outer():
            run_for(loop, 0, iterations, 1, loop_name="outer_work")
            parallel_region(inner, num_threads=inner_threads, recorder=recorder, name="inner")

        parallel_region(outer, num_threads=outer_threads, recorder=recorder, name="outer")

    def test_child_regions_fold_into_parent_lane(self):
        recorder = TraceRecorder()
        self._nested_trace(recorder)
        machine = MachineModel("m", cores=8, hardware_threads=8, sync_overhead_us=0.0)
        cost_model = CostModel(
            loops={
                "outer_work": LoopCost(seconds_per_unit=1e-3),
                "inner_work": LoopCost(seconds_per_unit=1e-3),
            }
        )
        estimate = MakespanModel(cost_model, machine).estimate(recorder, 2, name="nested")
        # All inner work (2 child regions x 32 iterations) plus the outer loop
        # must appear in the sequential total exactly once each.
        assert estimate.sequential_time == pytest.approx(3 * 32 * 1e-3)
        # The child regions' makespans land on the spawning members' lanes:
        # with 2 outer members each spawning one (2-wide) child, the estimate
        # is the outer loop phase plus the children running in parallel.
        child_makespan = (32 / 2) * 1e-3
        outer_phase = (32 / 2) * 1e-3
        assert estimate.makespan == pytest.approx(outer_phase + child_makespan, rel=0.05)
        assert estimate.speedup > 1.0

    def test_nested_not_double_counted_as_siblings(self):
        """Folding must yield a strictly smaller makespan than the old
        sibling-sum replay (which priced child regions a second time at top
        level *and* ignored their overlap)."""
        recorder = TraceRecorder()
        self._nested_trace(recorder)
        machine = MachineModel("m", cores=8, hardware_threads=8, sync_overhead_us=0.0)
        cost_model = CostModel(
            loops={
                "outer_work": LoopCost(seconds_per_unit=1e-3),
                "inner_work": LoopCost(seconds_per_unit=1e-3),
            }
        )
        estimate = MakespanModel(cost_model, machine).estimate(recorder, 2)
        sibling_sum = (32 / 2) * 1e-3 + 2 * (32 / 2) * 1e-3  # outer phase + both children serialised
        assert estimate.makespan < sibling_sum

    def test_flat_traces_unchanged(self):
        """Traces without nesting replay exactly as before (regression)."""
        recorder = TraceRecorder()

        def loop(start, end, step):
            pass

        def body():
            run_for(loop, 0, 64, 1, loop_name="work")

        parallel_region(body, num_threads=4, recorder=recorder)
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        model = MakespanModel(CostModel(loops={"work": LoopCost(seconds_per_unit=1e-3)}), machine)
        assert model.estimate(recorder, 4).speedup == pytest.approx(4.0, rel=0.05)


class TestSectionEventsInModel:
    def test_aspect_section_priced_by_elapsed(self):
        recorder = TraceRecorder()
        region = recorder.new_region_id()
        recorder.record(EventKind.REGION_BEGIN, region, 0, name="r", size=2)
        recorder.record(EventKind.SECTION, region, 1, sections="g", method="App.stage", elapsed=0.25)
        recorder.record(EventKind.REGION_END, region, 0, name="r")
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        estimate = MakespanModel(CostModel(), machine).estimate(recorder, 2)
        assert estimate.makespan == pytest.approx(0.25)
        assert estimate.sequential_time == pytest.approx(0.25)

    def test_dispatcher_section_marker_not_double_counted(self):
        """run_sections SECTION events ride along CHUNK events; only the
        chunks may contribute cost."""
        recorder = TraceRecorder()
        region = recorder.new_region_id()
        recorder.record(EventKind.REGION_BEGIN, region, 0, name="r", size=2)
        recorder.record(
            EventKind.CHUNK, region, 0, loop="sections", start=0, end=1, step=1, count=1
        )
        recorder.record(EventKind.SECTION, region, 0, sections="sections", index=0, elapsed=9.9)
        recorder.record(EventKind.REGION_END, region, 0, name="r")
        machine = MachineModel("m", cores=4, hardware_threads=4, sync_overhead_us=0.0)
        cost_model = CostModel(loops={"sections": LoopCost(seconds_per_unit=1e-3)})
        estimate = MakespanModel(cost_model, machine).estimate(recorder, 2)
        assert estimate.makespan == pytest.approx(1e-3)
