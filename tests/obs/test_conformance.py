"""Trace↔metric conformance across execution tiers.

The metrics subsystem mirrors the tracing subsystem's event sites, so where
both views exist they must agree *exactly*:

* threads — every member shares the master's registry and recorder, so the
  chunk/barrier/task counters must equal the trace-event counts one for one;
* processes / distributed — worker trace events never cross the process
  boundary (traces are a per-process diagnostic), but worker *metrics* are
  aggregated team-wide through the arena / barrier-frame piggyback; the
  deterministic workload below pins the exact team-wide totals each backend
  must report, and the distributed run is additionally checked through a
  real Prometheus scrape of the master's endpoint (the acceptance bar:
  master + 2 socket workers, scrape == snapshot == expected).

The SIGKILL scenario covers the liveness satellite: a member killed
mid-region must appear in ``aomp.stats()`` as ``aomp_member_alive == 0``
with the death counted.
"""

from __future__ import annotations

import urllib.request

import numpy as np
import pytest

import aomp
import repro.obs.exposition as expo
import repro.obs.registry as obsreg
from repro.runtime import context as ctx
from repro.runtime import shm
from repro.runtime.backend import ProcessBackend
from repro.runtime.config import config_override
from repro.runtime.distributed import DistributedBackend
from repro.runtime.exceptions import BrokenTeamError
from repro.runtime.faults import parse_fault_spec, set_fault_plan
from repro.runtime.tasks import spawn_task, task_wait
from repro.runtime.team import parallel_region
from repro.runtime.trace import EventKind, TraceRecorder
from repro.runtime.worksharing import run_for

requires_fork = pytest.mark.skipif(not shm.fork_available(), reason="process scenarios need fork")

#: the deterministic workload: 24 iterations claimed in dynamic chunks of 4
#: (6 claims team-wide however they land), one explicit barrier per member.
N, CHUNK = 24, 4
EXPECTED_CHUNKS = N // CHUNK


class SharedConformanceBody:
    """Picklable ``process_safe`` SPMD body for the cross-process backends."""

    process_safe = True

    def __init__(self) -> None:
        self.out = shm.shared_zeros(N)

    def run(self) -> None:
        run_for(self.fill, 0, N, 1, schedule=f"dynamic,{CHUNK}", loop_name="conformance.fill")
        ctx.current_team().barrier(label="conformance")

    def fill(self, start: int, end: int, step: int) -> None:
        view = self.out.view()
        for i in range(start, end, step):
            view[i] = i + 1.0

    def expected(self) -> np.ndarray:
        return np.arange(N) + 1.0

    def close(self) -> None:
        self.out.close()


def team_counters() -> dict:
    return aomp.stats()["counters"]


class TestThreadsExactTraceEquality:
    """Where metrics and traces see the same process, they must agree 1:1."""

    def test_chunk_barrier_task_counters_match_trace_counts(self):
        recorder = TraceRecorder()
        acc = [0] * 3

        def loop(start, end, step):
            for i in range(start, end, step):
                acc[ctx.get_thread_id()] += 1

        def body():
            run_for(loop, 0, N, 1, schedule=f"dynamic,{CHUNK}", loop_name="threads.loop")
            run_for(loop, 0, 10, 1, schedule="staticBlock", loop_name="threads.static")
            team = ctx.current_team()
            if ctx.get_thread_id() == 0:
                for k in range(6):
                    spawn_task(lambda k=k: k, name=f"t{k}")
                task_wait()
            team.barrier(label="explicit")

        with config_override(metrics=True, num_threads=3):
            parallel_region(body, num_threads=3, backend="threads", recorder=recorder, name="conf-threads")

        counters = team_counters()
        chunks = counters["aomp_chunks_total"]
        assert sum(chunks.values()) == len(recorder.events(EventKind.CHUNK))
        assert chunks["dynamic"] == EXPECTED_CHUNKS
        assert counters["aomp_barriers_total"] == len(recorder.events(EventKind.BARRIER))
        tasks = counters["aomp_tasks_total"]
        assert tasks["spawned"] == len(recorder.events(EventKind.TASK_SPAWN))
        assert tasks["stolen"] == len(recorder.events(EventKind.TASK_STEAL))
        assert tasks["completed"] == len(recorder.events(EventKind.TASK_COMPLETE))
        assert counters["aomp_regions_total"]["entered"] == 1
        assert counters["aomp_regions_total"]["completed"] == 1

    def test_barrier_histogram_count_matches_the_counter(self):
        def body():
            ctx.current_team().barrier()

        with config_override(metrics=True, num_threads=4):
            parallel_region(body, num_threads=4, backend="threads", name="conf-hist")

        snap = aomp.stats()
        assert (
            snap["histograms"]["aomp_barrier_wait_seconds"]["count"]
            == snap["counters"]["aomp_barriers_total"]
        )

    def test_disabled_metrics_count_nothing(self):
        def body():
            run_for(lambda s, e, st: None, 0, N, 1, schedule=f"dynamic,{CHUNK}")
            ctx.current_team().barrier()

        parallel_region(body, num_threads=3, backend="threads", name="conf-off")
        counters = team_counters()
        assert sum(counters["aomp_chunks_total"].values()) == 0
        assert counters["aomp_barriers_total"] == 0
        assert counters["aomp_regions_total"]["entered"] == 0


@requires_fork
class TestProcessesTeamWideTotals:
    """Fork/pool workers flush through the arena; the master's snapshot is
    team-wide even though worker traces never leave their processes."""

    def test_pool_path_reports_the_whole_team(self):
        backend = ProcessBackend()
        body = SharedConformanceBody()
        try:
            with config_override(metrics=True, num_threads=3):
                parallel_region(body.run, num_threads=3, backend=backend, name="conf-pool")
            assert np.array_equal(body.out.view(), body.expected())
        finally:
            body.close()
            backend.shutdown()

        counters = team_counters()
        assert counters["aomp_chunks_total"]["dynamic"] == EXPECTED_CHUNKS
        # One implicit (end of run_for) plus one explicit barrier per member.
        assert counters["aomp_barriers_total"] == 2 * 3
        assert counters["aomp_regions_total"]["completed"] == 1

    def test_fork_path_reports_the_whole_team(self):
        backend = ProcessBackend()
        marker = object()  # closure capture forces fork-per-region
        acc = shm.shared_zeros(N)

        def loop(start, end, step):
            view = acc.view()
            for i in range(start, end, step):
                view[i] = 1.0

        def body():
            assert marker is not None
            run_for(loop, 0, N, 1, schedule=f"dynamic,{CHUNK}", loop_name="conf.fork")
            ctx.current_team().barrier()

        try:
            with config_override(metrics=True, num_threads=3):
                parallel_region(body, num_threads=3, backend=backend, name="conf-fork")
            assert acc.view().sum() == N
        finally:
            acc.close()
            backend.shutdown()

        counters = team_counters()
        assert counters["aomp_chunks_total"]["dynamic"] == EXPECTED_CHUNKS
        assert counters["aomp_barriers_total"] == 2 * 3


class TestDistributedScrapeConformance:
    """The acceptance bar: master + 2 socket workers, team-wide counters
    served over a real Prometheus scrape, matching the snapshot exactly."""

    def test_distributed_totals_via_piggyback_and_scrape(self):
        backend = DistributedBackend()
        body = SharedConformanceBody()
        try:
            with config_override(metrics=True, metrics_port=0, num_threads=3):
                parallel_region(body.run, num_threads=3, backend=backend, name="conf-dist")
                assert np.array_equal(body.out.view(), body.expected())

                port = expo.exporter_port()
                assert port, "region entry must have started the configured endpoint"
                with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=10) as response:
                    scraped = response.read().decode("utf-8")
        finally:
            body.close()
            expo.stop_exporter()

        counters = team_counters()
        chunks = counters["aomp_chunks_total"]["dynamic"]
        barriers = counters["aomp_barriers_total"]
        assert chunks == EXPECTED_CHUNKS
        assert barriers == 2 * 3
        # Socket workers talk RPC; their piggybacked deltas carried the stats.
        assert counters["aomp_rpc_calls_total"] > 0
        assert counters["aomp_rpc_bytes_total"]["sent"] > 0
        assert aomp.stats()["histograms"]["aomp_rpc_rtt_seconds"]["count"] > 0
        # The scrape and the programmatic snapshot are the same numbers.
        assert f'aomp_chunks_total{{schedule="dynamic"}} {chunks}' in scraped
        assert f"aomp_barriers_total {barriers}" in scraped


@requires_fork
class TestLivenessInStats:
    """Satellite: heartbeat liveness must surface in ``aomp.stats()``."""

    @pytest.fixture(autouse=True)
    def _no_fault_leak(self):
        previous = set_fault_plan(None)
        yield
        set_fault_plan(previous)

    def test_sigkilled_member_appears_dead_in_the_snapshot(self):
        set_fault_plan(parse_fault_spec("kill:member=1,region=0"))
        backend = ProcessBackend()
        marker = object()

        def body():
            assert marker is not None
            import time

            time.sleep(0.05)

        try:
            with config_override(metrics=True, num_threads=3):
                with pytest.raises(BrokenTeamError):
                    parallel_region(body, num_threads=3, backend=backend, name="conf-kill")
        finally:
            backend.shutdown()

        snap = aomp.stats()
        assert snap["counters"]["aomp_worker_deaths_total"] >= 1
        # The loss gauge is pinned, outliving the monitor: post-mortem
        # snapshots still show which member died.
        assert snap["gauges"]["aomp_member_alive"]['{member="1"}'] == 0.0

    def test_monitor_exposes_last_beat_ages_while_running(self):
        from repro.runtime.faults import WorkerMonitor
        from repro.runtime.team import Team

        arena = shm.HeartbeatArena(capacity=4)
        with config_override(metrics=True):
            team = Team(3, region_id=0, name="beat-view")
            team.metrics = True
            for member in range(3):
                arena.register(member)
            monitor = WorkerMonitor(team, lambda: [], heartbeat=arena)
            monitor.start()
            try:
                gauges = aomp.stats()["gauges"]
                alive = gauges["aomp_member_alive"]
                assert [alive[f'{{member="{m}"}}'] for m in range(3)] == [1.0, 1.0, 1.0]
                ages = gauges["aomp_member_last_beat_age_seconds"]
                assert all(0 <= ages[f'{{member="{m}"}}'] < 60 for m in range(3))
            finally:
                monitor.stop()
        # Stopping unregisters the collector: the gauges disappear.
        assert "aomp_member_last_beat_age_seconds" not in aomp.stats()["gauges"]
