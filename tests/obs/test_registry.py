"""Unit coverage of :mod:`repro.obs.registry`.

The registry is the PR's hot-path substrate: counters and histogram cells in
one flat int slot vector, per-thread buffers merged on read, flush-and-clear
move semantics for cross-process aggregation.  These tests pin down the slot
layout contract (a pure function of the bucket boundaries), exactly-once
flushing, and the gauge/collector surface.
"""

from __future__ import annotations

import threading

import pytest

import repro.obs.registry as obsreg
from repro.obs.registry import (
    COUNTER_SPECS,
    HISTOGRAM_SPECS,
    NUM_COUNTER_SLOTS,
    MetricsRegistry,
    counter_slot,
)


class TestSlotLayout:
    def test_counter_slots_are_dense_and_stable(self):
        slots = []
        for name, _help, label, values in COUNTER_SPECS:
            if label is None:
                slots.append(counter_slot(name))
            else:
                slots.extend(counter_slot(name, value) for value in values)
        assert sorted(slots) == list(range(NUM_COUNTER_SLOTS))

    def test_named_constants_match_the_catalogue(self):
        assert obsreg.BARRIERS == counter_slot("aomp_barriers_total")
        assert obsreg.CHUNK_SLOTS["dynamic"] == counter_slot("aomp_chunks_total", "dynamic")
        assert obsreg.RPC_BYTES_SENT == counter_slot("aomp_rpc_bytes_total", "sent")

    def test_layout_is_a_pure_function_of_the_buckets(self):
        """Two registries with the same boundaries agree on every slot index —
        the invariant that lets raw deltas cross process boundaries."""
        a = MetricsRegistry(buckets=(0.001, 0.1))
        b = MetricsRegistry(buckets=(0.001, 0.1))
        assert a.num_slots == b.num_slots
        for name, _help in HISTOGRAM_SPECS:
            assert a.hist_base(name) == b.hist_base(name)
        wider = MetricsRegistry(buckets=(0.001, 0.01, 0.1))
        assert wider.num_slots == a.num_slots + len(HISTOGRAM_SPECS)

    def test_histogram_blocks_follow_the_counters(self):
        reg = MetricsRegistry(buckets=(0.001, 0.1))
        first = HISTOGRAM_SPECS[0][0]
        assert reg.hist_base(first) == NUM_COUNTER_SLOTS


class TestAccumulation:
    def test_add_and_snapshot(self):
        reg = MetricsRegistry(buckets=(0.001,))
        reg.add(obsreg.BARRIERS)
        reg.add(obsreg.BARRIERS, 2)
        reg.add(obsreg.CHUNK_SLOTS["guided"], 5)
        snap = reg.snapshot()
        assert snap["counters"]["aomp_barriers_total"] == 3
        assert snap["counters"]["aomp_chunks_total"]["guided"] == 5

    def test_observe_picks_the_right_bucket(self):
        reg = MetricsRegistry(buckets=(0.001, 0.1))
        base = reg.hist_base("aomp_barrier_wait_seconds")
        reg.observe(base, 0.0005)   # <= 1ms bucket
        reg.observe(base, 0.05)     # <= 100ms bucket
        reg.observe(base, 7.0)      # overflow (+Inf)
        hist = reg.snapshot()["histograms"]["aomp_barrier_wait_seconds"]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.0005 + 0.05 + 7.0, rel=1e-6)

    def test_boundary_observation_lands_in_the_bounded_bucket(self):
        """Prometheus buckets are ``le`` (inclusive upper bounds)."""
        reg = MetricsRegistry(buckets=(0.001, 0.1))
        base = reg.hist_base("aomp_rpc_rtt_seconds")
        reg.observe(base, 0.001)
        assert reg.snapshot()["histograms"]["aomp_rpc_rtt_seconds"]["counts"] == [1, 0, 0]

    def test_threads_merge_without_loss(self):
        reg = MetricsRegistry(buckets=(0.001,))
        per_thread = 5000

        def hammer():
            for _ in range(per_thread):
                reg.add(obsreg.BARRIERS)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot()["counters"]["aomp_barriers_total"] == 6 * per_thread


class TestFlushAbsorb:
    def test_flush_moves_counts_exactly_once(self):
        reg = MetricsRegistry(buckets=(0.001,))
        reg.add(obsreg.BARRIERS, 4)
        delta = reg.flush_delta()
        assert (obsreg.BARRIERS, 4) in delta
        assert reg.snapshot()["counters"]["aomp_barriers_total"] == 0
        assert reg.flush_delta() == []

    def test_absorb_round_trips_a_delta(self):
        worker = MetricsRegistry(buckets=(0.001,))
        master = MetricsRegistry(buckets=(0.001,))
        worker.add(obsreg.CHUNK_SLOTS["dynamic"], 7)
        base = worker.hist_base("aomp_barrier_wait_seconds")
        worker.observe(base, 0.0001)
        master.absorb(worker.flush_delta())
        snap = master.snapshot()
        assert snap["counters"]["aomp_chunks_total"]["dynamic"] == 7
        assert snap["histograms"]["aomp_barrier_wait_seconds"]["count"] == 1

    def test_absorb_ignores_out_of_range_slots(self):
        reg = MetricsRegistry(buckets=(0.001,))
        reg.absorb([(reg.num_slots + 100, 5), (-1, 5), (obsreg.BARRIERS, 1)])
        assert reg.snapshot()["counters"]["aomp_barriers_total"] == 1

    def test_flush_includes_absorbed_external_counts(self):
        """A relay (master of an inner level) forwards absorbed counts on."""
        reg = MetricsRegistry(buckets=(0.001,))
        reg.absorb([(obsreg.BARRIERS, 3)])
        reg.add(obsreg.BARRIERS, 1)
        assert dict(reg.flush_delta())[obsreg.BARRIERS] == 4


class TestGaugesAndCollectors:
    def test_set_clear_gauge(self):
        reg = MetricsRegistry(buckets=(0.001,))
        reg.set_gauge("aomp_member_alive", {"member": 1}, 1.0)
        reg.set_gauge("aomp_member_alive", {"member": 1}, 0.0)  # overwrite
        assert list(reg.snapshot()["gauges"]["aomp_member_alive"].values()) == [0.0]
        reg.clear_gauge("aomp_member_alive", {"member": 1})
        assert "aomp_member_alive" not in reg.snapshot()["gauges"]

    def test_collector_runs_at_snapshot_time_only(self):
        reg = MetricsRegistry(buckets=(0.001,))
        calls = []

        def collector():
            calls.append(1)
            return [("aomp_task_deque_depth", {"member": 0}, 3.0)]

        reg.register_collector(collector)
        assert calls == []
        snap = reg.snapshot()
        assert calls == [1]
        assert list(snap["gauges"]["aomp_task_deque_depth"].values()) == [3.0]
        reg.unregister_collector(collector)
        assert "aomp_task_deque_depth" not in reg.snapshot()["gauges"]

    def test_failing_collector_does_not_poison_the_snapshot(self):
        reg = MetricsRegistry(buckets=(0.001,))
        reg.register_collector(lambda: (_ for _ in ()).throw(RuntimeError("dying monitor")))
        reg.set_gauge("aomp_member_alive", None, 1.0)
        assert reg.snapshot()["gauges"]["aomp_member_alive"] == {(): 1.0}


class TestModuleLevelRegistry:
    def test_reset_replaces_the_process_registry(self):
        obsreg.inc(obsreg.BARRIERS)
        obsreg.reset()
        assert obsreg.get_registry().snapshot()["counters"]["aomp_barriers_total"] == 0

    def test_module_inc_observe_land_in_the_process_registry(self):
        obsreg.reset()
        obsreg.inc(obsreg.TUNE_DECISIONS, 2)
        obsreg.observe("aomp_rpc_rtt_seconds", 0.002)
        snap = obsreg.get_registry().snapshot()
        assert snap["counters"]["aomp_tune_decisions_total"] == 2
        assert snap["histograms"]["aomp_rpc_rtt_seconds"]["count"] == 1

    def test_metrics_enabled_mirrors_the_config(self):
        from repro.runtime.config import config_override

        assert obsreg.metrics_enabled() is False
        with config_override(metrics=True):
            assert obsreg.metrics_enabled() is True
