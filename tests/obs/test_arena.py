"""Unit coverage of :class:`repro.obs.arena.MetricsArena`.

The arena is the fork/subinterp aggregation plane: disjoint per-member int64
cell ranges over pluggable storage, flushed by workers and drained by the
master.  The fork round-trip test exercises the real cross-process path the
process backend uses.
"""

from __future__ import annotations

import pytest

import repro.obs.registry as obsreg
from repro.obs.arena import MetricsArena
from repro.runtime import shm

requires_fork = pytest.mark.skipif(not shm.fork_available(), reason="needs fork")


class TestArenaBasics:
    def test_cells_needed_matches_the_registry_layout(self):
        assert MetricsArena.cells_needed(4) == 4 * obsreg.get_registry().num_slots
        assert MetricsArena.cells_needed(4, slots=10) == 40

    def test_flush_and_drain_round_trip(self):
        arena = MetricsArena(4, cells=[0] * MetricsArena.cells_needed(4))
        arena.flush_member(0, [(2, 5)])
        arena.flush_member(3, [(2, 1), (7, 2)])
        assert arena.drain() == [(2, 6), (7, 2)]
        assert arena.drain() == []  # drain zeroes the cells

    def test_flush_adds_across_regions(self):
        """Pooled workers flush once per region into the same range."""
        arena = MetricsArena(2, cells=[0] * MetricsArena.cells_needed(2))
        arena.flush_member(1, [(0, 1)])
        arena.flush_member(1, [(0, 2)])
        assert arena.drain() == [(0, 3)]

    def test_out_of_range_member_and_slot_are_dropped_silently(self):
        arena = MetricsArena(2, slots=4, cells=[0] * 8)
        arena.flush_member(5, [(0, 1)])       # no such member
        arena.flush_member(-1, [(0, 1)])
        arena.flush_member(1, [(9, 1)])       # no such slot
        arena.flush_member(1, [(-2, 1)])
        assert arena.drain() == []

    def test_members_use_disjoint_ranges(self):
        cells = [0] * 8
        arena = MetricsArena(2, slots=4, cells=cells)
        arena.flush_member(0, [(0, 1)])
        arena.flush_member(1, [(0, 10)])
        assert cells[0] == 1 and cells[4] == 10

    def test_reset_zeroes_everything(self):
        arena = MetricsArena(2, slots=3, cells=[0] * 6)
        arena.flush_member(0, [(1, 9)])
        arena.reset()
        assert arena.drain() == []

    def test_attach_shares_the_storage(self):
        """``cells=``/``fresh=False`` attaches a second view without clearing."""
        cells = [0] * 6
        owner = MetricsArena(2, slots=3, cells=cells)
        owner.flush_member(0, [(2, 4)])
        attached = MetricsArena(2, slots=3, cells=cells, fresh=False)
        assert attached.drain() == [(2, 4)]


@requires_fork
class TestArenaAcrossFork:
    def test_fork_child_flush_is_visible_to_the_parent(self):
        arena = MetricsArena(2)  # default mp shared Array storage
        ctx = shm._mp_context()

        def child() -> None:
            arena.flush_member(1, [(0, 7), (3, 2)])

        proc = ctx.Process(target=child)
        proc.start()
        proc.join(timeout=10)
        assert proc.exitcode == 0
        assert arena.drain() == [(0, 7), (3, 2)]

    def test_registry_flush_to_arena_to_master_registry(self):
        """The full aggregation chain the process backend runs per region."""
        arena = MetricsArena(2)
        ctx = shm._mp_context()

        def child() -> None:
            # The at-fork hook gave this child a fresh registry; counts
            # accumulated here exist nowhere else until flushed.
            obsreg.inc(obsreg.CHUNK_SLOTS["dynamic"], 3)
            obsreg.observe("aomp_barrier_wait_seconds", 0.0002)
            arena.flush_member(1, obsreg.flush_delta())

        proc = ctx.Process(target=child)
        proc.start()
        proc.join(timeout=10)
        assert proc.exitcode == 0
        obsreg.absorb(arena.drain())
        snap = obsreg.get_registry().snapshot()
        assert snap["counters"]["aomp_chunks_total"]["dynamic"] == 3
        assert snap["histograms"]["aomp_barrier_wait_seconds"]["count"] == 1
