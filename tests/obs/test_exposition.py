"""Exposition surfaces: ``aomp.stats()``, Prometheus rendering, HTTP scrape.

The rendering tests pin the text-format 0.0.4 contract a real Prometheus
scraper relies on (cumulative ``le`` buckets, ``+Inf``, ``_sum``/``_count``,
HELP/TYPE pairs); the endpoint tests exercise the stdlib HTTP server on an
ephemeral port.
"""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

import aomp
import repro.obs.exposition as expo
import repro.obs.registry as obsreg


@pytest.fixture(autouse=True)
def _stop_exporter_after():
    yield
    expo.stop_exporter()


class TestStats:
    def test_structure_and_gauge_label_strings(self):
        obsreg.inc(obsreg.BARRIERS, 2)
        obsreg.set_gauge("aomp_member_alive", {"member": 1}, 0.0)
        snap = aomp.stats()
        assert snap["counters"]["aomp_barriers_total"] == 2
        assert snap["gauges"]["aomp_member_alive"] == {'{member="1"}': 0.0}
        assert set(snap) == {"counters", "histograms", "gauges", "meta"}

    def test_stats_is_json_serialisable(self):
        import json

        obsreg.observe("aomp_barrier_wait_seconds", 0.01)
        obsreg.set_gauge("aomp_task_deque_depth", {"member": 0}, 4)
        json.dumps(aomp.stats())  # must not raise

    def test_aomp_facade_reexports_the_obs_surface(self):
        assert aomp.stats is expo.stats
        assert aomp.render_prometheus is expo.render_prometheus
        assert aomp.get_registry is obsreg.get_registry


class TestRenderPrometheus:
    def test_counters_have_help_type_and_labels(self):
        obsreg.inc(obsreg.CHUNK_SLOTS["guided"], 3)
        text = aomp.render_prometheus()
        assert "# HELP aomp_chunks_total " in text
        assert "# TYPE aomp_chunks_total counter" in text
        assert 'aomp_chunks_total{schedule="guided"} 3' in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf_sum_count(self):
        obsreg.reset(buckets=(0.001, 0.1))
        obsreg.observe("aomp_barrier_wait_seconds", 0.0005)
        obsreg.observe("aomp_barrier_wait_seconds", 0.05)
        obsreg.observe("aomp_barrier_wait_seconds", 5.0)
        text = aomp.render_prometheus()
        assert 'aomp_barrier_wait_seconds_bucket{le="0.001"} 1' in text
        assert 'aomp_barrier_wait_seconds_bucket{le="0.1"} 2' in text
        assert 'aomp_barrier_wait_seconds_bucket{le="+Inf"} 3' in text
        assert "aomp_barrier_wait_seconds_count 3" in text
        sum_line = next(
            line for line in text.splitlines() if line.startswith("aomp_barrier_wait_seconds_sum ")
        )
        assert float(sum_line.split()[1]) == pytest.approx(5.0505, rel=1e-4)

    def test_gauges_render_with_type_and_labels(self):
        obsreg.set_gauge("aomp_member_alive", {"member": 2}, 1.0)
        text = aomp.render_prometheus()
        assert "# TYPE aomp_member_alive gauge" in text
        assert 'aomp_member_alive{member="2"} 1' in text

    def test_every_catalogued_metric_appears_even_at_zero(self):
        text = aomp.render_prometheus()
        for name, _help, _label, _values in obsreg.COUNTER_SPECS:
            assert f"# HELP {name} " in text
        for name, _help in obsreg.HISTOGRAM_SPECS:
            assert f"{name}_count 0" in text


class TestScrapeEndpoint:
    def test_ephemeral_port_serves_metrics(self):
        port = expo.ensure_exporter(port=0)
        assert port and port > 0
        assert expo.exporter_port() == port
        obsreg.inc(obsreg.BARRIERS, 5)
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=5) as response:
            assert response.headers["Content-Type"] == expo.CONTENT_TYPE
            body = response.read().decode("utf-8")
        assert "aomp_barriers_total 5" in body

    def test_ensure_is_idempotent(self):
        first = expo.ensure_exporter(port=0)
        assert expo.ensure_exporter(port=0) == first

    def test_only_metrics_path_is_served(self):
        port = expo.ensure_exporter(port=0)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{port}/other", timeout=5)
        assert excinfo.value.code == 404
        excinfo.value.close()  # the error response wraps a socket

    def test_no_port_configured_means_no_endpoint(self):
        assert expo.ensure_exporter() is None  # config default: metrics_port=None
        assert expo.exporter_port() is None

    def test_bind_failure_warns_once_and_disables(self):
        import socket

        blocker = socket.socket()
        blocker.bind((expo.EXPORTER_HOST, 0))
        blocker.listen(1)
        taken = blocker.getsockname()[1]
        try:
            with pytest.warns(RuntimeWarning, match="could not bind"):
                assert expo.ensure_exporter(port=taken) is None
            # Disabled after the failure: no retry storm, no second warning.
            assert expo.ensure_exporter(port=taken) is None
        finally:
            blocker.close()

    def test_stop_allows_a_fresh_start(self):
        first = expo.ensure_exporter(port=0)
        expo.stop_exporter()
        assert expo.exporter_port() is None
        second = expo.ensure_exporter(port=0)
        assert second and second != 0
        assert first is not None

    def test_stats_meta_discovers_the_ephemeral_port(self):
        # AOMP_METRICS_PORT=0 binds an ephemeral port; stats() metadata is
        # the race-free way for the embedding program to find it.
        assert aomp.stats()["meta"]["exporter_port"] is None
        port = expo.ensure_exporter(port=0)
        meta = aomp.stats()["meta"]
        assert meta["exporter_port"] == port
        import os

        assert meta["pid"] == os.getpid()

    def test_stop_is_idempotent(self):
        expo.stop_exporter()  # stop with nothing running is a no-op
        expo.ensure_exporter(port=0)
        expo.stop_exporter()
        expo.stop_exporter()  # double stop must not raise
        assert expo.exporter_port() is None

    def test_repeated_cycles_leak_no_threads(self):
        import threading

        def serve_threads() -> int:
            return sum(
                1 for t in threading.enumerate() if t.name == "aomp-metrics-http" and t.is_alive()
            )

        baseline = serve_threads()
        for _ in range(5):
            assert expo.ensure_exporter(port=0)
            expo.stop_exporter()
        assert serve_threads() == baseline


class TestAompTopParser:
    """The live-view script's parser must understand our own rendering."""

    def _load(self):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "scripts" / "aomp_top.py"
        spec = importlib.util.spec_from_file_location("aomp_top", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_parse_round_trips_our_exposition(self):
        obsreg.reset(buckets=(0.001, 0.1))
        obsreg.inc(obsreg.CHUNK_SLOTS["dynamic"], 4)
        obsreg.observe("aomp_barrier_wait_seconds", 0.0005)
        obsreg.set_gauge("aomp_member_alive", {"member": 1}, 1.0)
        top = self._load()
        samples = top.parse_exposition(aomp.render_prometheus())
        assert samples[("aomp_chunks_total", (("schedule", "dynamic"),))] == 4
        assert samples[("aomp_barrier_wait_seconds_count", ())] == 1
        assert samples[("aomp_member_alive", (("member", "1"),))] == 1.0

    def test_quantile_estimate_from_cumulative_buckets(self):
        top = self._load()
        obsreg.reset(buckets=(0.001, 0.1))
        for _ in range(9):
            obsreg.observe("aomp_barrier_wait_seconds", 0.0005)
        obsreg.observe("aomp_barrier_wait_seconds", 5.0)
        samples = top.parse_exposition(aomp.render_prometheus())
        assert top._histogram_quantile(samples, "aomp_barrier_wait_seconds", 0.5) == 0.001
        assert top._histogram_quantile(samples, "aomp_barrier_wait_seconds", 0.99) == float("inf")

    def test_render_once_produces_a_readable_report(self):
        top = self._load()
        obsreg.inc(obsreg.BARRIERS, 2)
        samples = top.parse_exposition(aomp.render_prometheus())
        output = top.render(samples, None, 0.0)
        assert "aomp_barriers_total" in output

    def test_scrape_against_a_live_endpoint(self):
        top = self._load()
        obsreg.inc(obsreg.TUNE_DECISIONS, 3)
        port = expo.ensure_exporter(port=0)
        samples = top.scrape(f"http://127.0.0.1:{port}/metrics", timeout=5)
        assert samples[("aomp_tune_decisions_total", ())] == 3
