#!/usr/bin/env python
"""Benchmark regression gate: fresh run vs the committed BENCH_overhead.json.

Runs the per-construct overhead suite (``benchmarks/bench_overhead.py``) in a
fast mode and compares each headline metric against the committed reference,
exiting non-zero when a construct regressed.  Also runs the
adaptive-scheduling benchmark (``benchmarks/bench_tune.py``) in smoke mode as
a plumbing check (``schedule="auto"`` converges, cache round-trips; disable
with ``--skip-tune``) and the backend-comparison benchmark
(``benchmarks/bench_backends.py``) as a schema/validity check (disable with
``--skip-backends``).  Called from CI's benchmark job and from
``scripts/bench.sh``.

A metric counts as regressed only when **both** hold:

* ``fresh > reference * tolerance``   (default 2x — CI machines vary), and
* ``fresh > reference + floor``       (mode-dependent default; smoke-mode
  measurements resolve single-digit microseconds at best, so sub-microsecond
  reference values would otherwise flag pure timer noise).

This deliberately catches order-of-magnitude regressions (reintroducing a
per-event lock, un-batching scheduler claims, quadratic bookkeeping) while
staying green across hardware generations and noisy shared runners.  The
suite is run several times and the per-metric minimum is kept, which
removes most cold-start noise; finer-grained gating is available by running
``--mode quick``/``--mode full`` with a smaller ``--floor-us``.

Usage::

    PYTHONPATH=src python scripts/check_bench.py --mode smoke
    PYTHONPATH=src python scripts/check_bench.py --mode quick --tolerance 1.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

import bench_backends  # noqa: E402  (path set up above)
import bench_dataplane  # noqa: E402
import bench_overhead  # noqa: E402
import bench_service  # noqa: E402
import bench_tune  # noqa: E402

#: default absolute-increase floor (seconds) per measurement mode: what one
#: best-of-N timing in that mode can actually resolve.
DEFAULT_FLOORS = {"smoke": 50e-6, "quick": 10e-6, "full": 5e-6}

#: (metric label, path into the metrics payload) for every gated number.
GATED_METRICS = [
    ("woven_call", ("woven_call", "overhead_seconds_per_call")),
    ("chunk_dispatch.static_block", ("chunk_dispatch", "static_block", "overhead_seconds_per_chunk")),
    ("chunk_dispatch.static_cyclic", ("chunk_dispatch", "static_cyclic", "overhead_seconds_per_chunk")),
    ("chunk_dispatch.dynamic", ("chunk_dispatch", "dynamic", "overhead_seconds_per_chunk")),
    ("chunk_dispatch.guided", ("chunk_dispatch", "guided", "overhead_seconds_per_chunk")),
    ("barrier", ("barrier", "seconds_per_barrier")),
    ("critical", ("critical", "seconds_per_call")),
    ("region_spawn", ("region_spawn", "seconds_per_region")),
]


def _lookup(metrics: dict, path: tuple) -> float:
    node = metrics
    for key in path:
        node = node[key]
    return float(node)


def _reference_metrics(document: dict) -> dict:
    """The committed reference: the file's ``current`` section (the state the
    repo claims), falling back to ``baseline`` for minimal documents."""
    section = document.get("current") or document.get("baseline") or document
    return section["metrics"]


def run_gate(
    baseline_path: Path,
    *,
    mode: str = "smoke",
    tolerance: float = 2.0,
    floor_seconds: float | None = None,
    runs: int = 3,
) -> int:
    if floor_seconds is None:
        floor_seconds = DEFAULT_FLOORS[mode]
    document = json.loads(baseline_path.read_text())
    reference = _reference_metrics(document)

    fresh_runs = [bench_overhead.run_suite(mode=mode)["metrics"] for _ in range(max(1, runs))]

    failures: list[str] = []
    print(f"benchmark gate: mode={mode}, tolerance={tolerance}x, floor={floor_seconds * 1e6:.0f}us, runs={runs}")
    print(f"{'metric':<30} {'reference':>12} {'fresh':>12}  verdict")
    for label, path in GATED_METRICS:
        ref = _lookup(reference, path)
        fresh = min(_lookup(metrics, path) for metrics in fresh_runs)
        regressed = fresh > ref * tolerance and fresh > ref + floor_seconds
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{label:<30} {ref * 1e6:>10.3f}us {fresh * 1e6:>10.3f}us  {verdict}")
        if regressed:
            failures.append(label)

    if failures:
        print(f"\nFAIL: {len(failures)} construct(s) regressed past the gate: {', '.join(failures)}")
        return 1
    print("\nOK: no construct regressed past the gate")
    return 0


def run_metrics_overhead_gate(
    baseline_path: Path,
    *,
    mode: str = "smoke",
    floor_seconds: float | None = None,
    runs: int = 3,
) -> int:
    """Gate the cost of *enabled* metrics (the observability guard sites).

    Two claims are enforced:

    * metrics **off** (the default every other gate and the committed
      baseline measure) must cost nothing — that is already covered by
      :func:`run_gate`, whose fresh runs execute with metrics disabled
      against the committed reference;
    * metrics **on** may add at most the bound documented in the reference
      document's ``metrics_overhead`` section per dispatched chunk (plus the
      mode's noise floor).  The delta is measured pairwise — each fresh
      metrics-on run is compared against its own back-to-back metrics-off
      run — and the per-key minimum over ``runs`` pairs is gated, mirroring
      the best-of-N discipline of the main gate.
    """
    if floor_seconds is None:
        floor_seconds = DEFAULT_FLOORS[mode]
    document = json.loads(baseline_path.read_text())
    section = document.get("metrics_overhead")
    if not section:
        print(f"FAIL: {baseline_path} has no metrics_overhead section (bound undocumented)")
        return 1
    bound = float(section["bound_seconds_per_chunk"])

    deltas: dict[str, float] = {}
    for _ in range(max(1, runs)):
        off = bench_overhead.run_suite(mode=mode)
        on = bench_overhead.run_suite(mode=mode, metrics=True)
        for key, value in bench_overhead.metrics_overhead(off, on).items():
            deltas[key] = min(deltas.get(key, float("inf")), value)

    failures: list[str] = []
    print(
        f"metrics-overhead gate: mode={mode}, bound={bound * 1e6:.1f}us/chunk, "
        f"floor={floor_seconds * 1e6:.0f}us, runs={runs}"
    )
    print(f"{'construct':<30} {'added':>12}  verdict")
    for key in bench_overhead.METRICS_DELTA_KEYS:
        added = deltas[key]
        gated = key.startswith("chunk_dispatch.")
        regressed = gated and added > bound + floor_seconds
        verdict = "REGRESSED" if regressed else ("ok" if gated else "report-only")
        print(f"{key:<30} {added * 1e6:>10.3f}us  {verdict}")
        if regressed:
            failures.append(key)

    if failures:
        print(f"\nFAIL: enabled metrics exceed the documented bound on: {', '.join(failures)}")
        return 1
    print("\nOK: enabled metrics stay within the documented per-chunk bound")
    return 0


def run_tune_smoke() -> int:
    """Plumbing check of the adaptive-scheduling benchmark (smoke sizes).

    Verifies that ``schedule="auto"`` explores, converges and round-trips its
    cache end-to-end; performance *targets* are not gated here (smoke-mode
    loops are milliseconds and resolve nothing) — they are asserted by
    ``bench_tune.py --mode full --check-targets``.
    """
    payload = bench_tune.run_suite(mode="smoke")
    metrics = payload["metrics"]
    problems: list[str] = []
    if payload.get("schema_version") != bench_tune.SCHEMA_VERSION:
        problems.append("schema_version mismatch")
    for kind in ("uniform", "triangular", "random"):
        workload = metrics["workloads"].get(kind)
        if not workload:
            problems.append(f"missing workload {kind}")
            continue
        if not workload["auto"]["converged"]:
            problems.append(f"{kind}: auto never converged")
        if not workload["auto"]["seconds"] > 0:
            problems.append(f"{kind}: bogus auto timing")
    cache = metrics["cache"]
    if not cache["cache_file_written"]:
        problems.append("tune cache file was not written")
    if cache["warm_invocations"] > 2:
        problems.append(f"warm tuner needed {cache['warm_invocations']} invocations (> 2)")

    if problems:
        print(f"FAIL: adaptive-scheduling smoke: {'; '.join(problems)}")
        return 1
    print(
        "OK: adaptive-scheduling smoke (auto converged on all workloads, cache warm "
        f"reconvergence in {cache['warm_invocations']} invocation(s))"
    )
    return 0


def check_backends_payload(payload: dict) -> list[str]:
    """Validate a ``bench_backends.py --json`` payload against its schema.

    Returns a list of problems (empty when the payload is well-formed).
    Pure structural validation — no performance targets — so it holds on
    1-core runners and interpreters where only a subset of backends exists.
    """
    problems: list[str] = []
    if payload.get("schema_version") != bench_backends.SCHEMA_VERSION:
        problems.append(
            f"schema_version {payload.get('schema_version')!r} != {bench_backends.SCHEMA_VERSION}"
        )
    for field in ("mode", "size", "workers", "available_cores", "free_threaded_build", "gil_enabled"):
        if field not in payload:
            problems.append(f"missing field {field!r}")
    backends = payload.get("backends")
    if not isinstance(backends, dict):
        problems.append("missing backends capability table")
        backends = {}
    for name in bench_backends.BACKENDS:
        info = backends.get(name)
        if not isinstance(info, dict) or not {"available", "true_parallel", "spinup_cost_scale"} <= set(info):
            problems.append(f"backend row {name!r} missing or incomplete")
    measurements = payload.get("measurements")
    if not isinstance(measurements, list) or not measurements:
        problems.append("no measurements")
        measurements = []
    for index, row in enumerate(measurements):
        missing = {
            "kernel", "backend", "kernel_path", "workers", "seconds", "speedup_vs_serial", "value", "valid"
        } - set(row)
        if missing:
            problems.append(f"measurement[{index}] missing {sorted(missing)}")
            continue
        if row["backend"] in backends and not backends[row["backend"]].get("available", True):
            problems.append(f"measurement[{index}] reports unavailable backend {row['backend']!r}")
        if not row["valid"]:
            problems.append(f"measurement[{index}] {row['kernel']}/{row['backend']}: checksum mismatch")
    return problems


def run_backends_smoke() -> int:
    """Plumbing check of the backend-comparison benchmark (smoke sizes).

    Runs ``bench_backends`` on the tiny size with every kernel and validates
    the JSON payload shape; speedup *targets* are not gated (they depend on
    cores granted to the runner) — the honest numbers live in the report.
    """
    payload = {
        "schema_version": bench_backends.SCHEMA_VERSION,
        "mode": "smoke",
        "size": "tiny",
        "workers": 2,
        "repeat": 1,
        "available_cores": bench_backends._available_cores(),
        "free_threaded_build": False,
        "gil_enabled": True,
        "backends": bench_backends.backend_rows(),
        "measurements": [],
    }
    from repro.runtime.backend import free_threaded_build, gil_enabled

    payload["free_threaded_build"] = free_threaded_build()
    payload["gil_enabled"] = gil_enabled()
    for name in bench_backends.KERNELS:
        payload["measurements"].extend(
            vars(row) for row in bench_backends.run_kernel(name, "tiny", 2, 1, "python")
        )
    problems = check_backends_payload(payload)
    if problems:
        print(f"FAIL: backend-comparison smoke: {'; '.join(problems)}")
        return 1
    ran = sorted({row["backend"] for row in payload["measurements"]})
    print(f"OK: backend-comparison smoke (schema v{bench_backends.SCHEMA_VERSION}, backends: {', '.join(ran)})")
    return 0


def run_dataplane_smoke() -> int:
    """Plumbing check of the socket data-plane benchmark (smoke sizes).

    Exercises the production coordinator/worker-session wire path end to end
    and validates the payload shape plus one structural invariant: a batched
    claim's per-chunk cost must undercut a lone proxy round-trip (that
    amortisation is the design premise of distributed dynamic/guided loops;
    the ~``batch``x headroom makes the comparison robust to runner noise).
    Absolute round-trip *targets* are not gated — loopback latency varies
    wildly across runners — the honest numbers live in the benchmark output.
    """
    payload = bench_dataplane.run_suite(mode="smoke")
    metrics = payload["metrics"]
    problems: list[str] = []
    if payload.get("schema_version") != bench_dataplane.SCHEMA_VERSION:
        problems.append("schema_version mismatch")
    for op, key in (("ping", "rtt_seconds"), ("barrier", "seconds_per_barrier")):
        if not metrics.get(op, {}).get(key, 0) > 0:
            problems.append(f"bogus {op} timing")
    fetch = metrics.get("fetch_add", {})
    if not fetch.get("proxy_rtt_seconds", 0) > 0 or not fetch.get("direct_seconds", 0) > 0:
        problems.append("bogus fetch_add timings")
    batch = metrics.get("claim_batch", {})
    if not batch.get("seconds_per_chunk", float("inf")) < fetch.get("proxy_rtt_seconds", 0):
        problems.append(
            "batched claims do not amortise the round-trip "
            f"({batch.get('seconds_per_chunk')}s/chunk vs {fetch.get('proxy_rtt_seconds')}s/claim)"
        )
    arrays = metrics.get("arrays", {})
    if not arrays.get("gather_seconds_per_element", 0) > 0 or not arrays.get("publish_seconds_per_element", 0) > 0:
        problems.append("bogus array movement timings")

    if problems:
        print(f"FAIL: data-plane smoke: {'; '.join(problems)}")
        return 1
    rtt_us = metrics["ping"]["rtt_seconds"] * 1e6
    per_chunk_us = metrics["claim_batch"]["seconds_per_chunk"] * 1e6
    print(
        f"OK: data-plane smoke (schema v{bench_dataplane.SCHEMA_VERSION}, ping {rtt_us:.0f}us, "
        f"batched claim {per_chunk_us:.1f}us/chunk)"
    )
    return 0


def run_service_smoke() -> int:
    """Plumbing check of the compute-service benchmark (smoke sizes).

    Drives a real in-process service with concurrent socket clients and
    validates the payload shape plus the structural invariants: every
    submitted request completed with its reference value (the bench records
    mismatches as failures), latencies are real timings, and the drain left
    no workers behind.  Absolute throughput/latency *targets* are not gated
    — they depend on cores granted to the runner — the honest numbers live
    in the benchmark output.
    """
    payload = bench_service.run_suite(mode="smoke")
    problems: list[str] = []
    if payload.get("schema_version") != bench_service.SCHEMA_VERSION:
        problems.append("schema_version mismatch")
    expected = payload["clients"] * payload["requests_per_client"]
    for label in ("cold", "warm"):
        section = payload["metrics"][label]
        problems.extend(f"{label}: {failure}" for failure in section["failures"])
        if section["completed"] != expected:
            problems.append(f"{label}: {section['completed']}/{expected} requests completed")
        if not section["throughput_rps"] > 0:
            problems.append(f"{label}: bogus throughput")
        for kernel, row in section["kernels"].items():
            if not 0 < row["p50_seconds"] <= row["p99_seconds"]:
                problems.append(f"{label}/{kernel}: bogus latency quantiles")
    if not payload.get("drained", {}).get("drained"):
        problems.append("service did not drain cleanly")

    if problems:
        print(f"FAIL: service smoke: {'; '.join(problems)}")
        return 1
    warm = payload["metrics"]["warm"]
    print(
        f"OK: service smoke (schema v{bench_service.SCHEMA_VERSION}, "
        f"{payload['clients']} clients, warm {warm['throughput_rps']:.1f} req/s, "
        f"warm p99 {max(row['p99_seconds'] for row in warm['kernels'].values()) * 1e3:.0f}ms)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_overhead.json",
        help="committed reference document (default: BENCH_overhead.json)",
    )
    parser.add_argument(
        "--mode",
        choices=sorted(bench_overhead.MODES),
        default="smoke",
        help="measurement size of the fresh run (default: smoke)",
    )
    parser.add_argument("--tolerance", type=float, default=2.0, help="allowed slowdown factor (default: 2.0)")
    parser.add_argument(
        "--floor-us",
        type=float,
        default=None,
        help="minimum absolute increase (microseconds) before a ratio counts "
        "(default: per-mode — smoke 50, quick 10, full 5)",
    )
    parser.add_argument("--runs", type=int, default=3, help="fresh runs to take the per-metric minimum over")
    parser.add_argument(
        "--skip-tune",
        action="store_true",
        help="skip the adaptive-scheduling smoke check (bench_tune.py plumbing)",
    )
    parser.add_argument(
        "--skip-backends",
        action="store_true",
        help="skip the backend-comparison smoke check (bench_backends.py plumbing)",
    )
    parser.add_argument(
        "--skip-dataplane",
        action="store_true",
        help="skip the socket data-plane smoke check (bench_dataplane.py plumbing)",
    )
    parser.add_argument(
        "--skip-metrics",
        action="store_true",
        help="skip the metrics-overhead gate (cost of enabled observability guard sites)",
    )
    parser.add_argument(
        "--skip-service",
        action="store_true",
        help="skip the compute-service smoke check (bench_service.py plumbing)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"error: reference file {args.baseline} not found", file=sys.stderr)
        return 2
    status = run_gate(
        args.baseline,
        mode=args.mode,
        tolerance=args.tolerance,
        floor_seconds=args.floor_us * 1e-6 if args.floor_us is not None else None,
        runs=args.runs,
    )
    if not args.skip_metrics:
        print()
        status = status or run_metrics_overhead_gate(
            args.baseline,
            mode=args.mode,
            floor_seconds=args.floor_us * 1e-6 if args.floor_us is not None else None,
            runs=args.runs,
        )
    if not args.skip_tune:
        print()
        status = status or run_tune_smoke()
    if not args.skip_backends:
        print()
        status = status or run_backends_smoke()
    if not args.skip_dataplane:
        print()
        status = status or run_dataplane_smoke()
    if not args.skip_service:
        print()
        status = status or run_service_smoke()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
