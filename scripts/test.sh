#!/usr/bin/env bash
# Full test entry point: tier-1 suite first (fast, fails fast), then the
# stress tier (contention/livelock scenarios with watchdogs).
#
#   scripts/test.sh              # tier-1 + stress
#   scripts/test.sh -k backend   # extra args are forwarded to the tier-1 run
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 =="
python -m pytest -x -q "$@"

echo "== stress tier =="
python -m pytest -q -m stress
