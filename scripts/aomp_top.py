#!/usr/bin/env python
"""Live terminal view of a running PyAOmpLib program's metrics endpoint.

Point it at the scrape endpoint an instrumented run serves when
``AOMP_METRICS=1 AOMP_METRICS_PORT=<port>`` are set, and it redraws a
compact dashboard — counters with per-second rates, barrier-wait quantile
estimates from the histogram buckets, and per-member liveness gauges —
once per interval, ``top(1)``-style::

    AOMP_METRICS=1 AOMP_METRICS_PORT=9464 python my_program.py &
    python scripts/aomp_top.py --url http://127.0.0.1:9464/metrics

``--once`` prints a single snapshot without clearing the screen (useful in
scripts and CI logs).  Only the stdlib is used; the parser understands the
subset of Prometheus text format 0.0.4 that ``aomp.render_prometheus()``
emits.
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, Tuple

#: (metric name, labels as a sorted tuple of pairs) -> value
Samples = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]

CLEAR = "\x1b[2J\x1b[H"


def parse_exposition(text: str) -> Samples:
    """Parse the text-format 0.0.4 subset ``render_prometheus`` produces."""
    samples: Samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
        except ValueError:
            continue
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            label_part = label_part.rstrip("}")
            labels = []
            for item in label_part.split(","):
                if not item:
                    continue
                key, _, raw = item.partition("=")
                labels.append((key, raw.strip('"')))
            samples[(name, tuple(sorted(labels)))] = value
        else:
            samples[(name_part, ())] = value
    return samples


def scrape(url: str, timeout: float) -> Samples:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return parse_exposition(response.read().decode("utf-8"))


def _labels_str(labels: Tuple[Tuple[str, str], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in labels)


def _histogram_quantile(samples: Samples, base: str, quantile: float) -> float | None:
    """Estimate a quantile from cumulative ``<base>_bucket`` samples."""
    buckets = []
    for (name, labels), value in samples.items():
        if name != f"{base}_bucket":
            continue
        bound = dict(labels).get("le")
        if bound is None:
            continue
        buckets.append((float("inf") if bound == "+Inf" else float(bound), value))
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total <= 0:
        return None
    target = quantile * total
    for bound, cumulative in buckets:
        if cumulative >= target:
            return bound
    return buckets[-1][0]


def render(samples: Samples, previous: Samples | None, elapsed: float) -> str:
    lines = []
    lines.append(f"aomp_top — {time.strftime('%H:%M:%S')}  (interval {elapsed:.1f}s)")
    lines.append("")
    lines.append(f"{'counter':<44} {'total':>12} {'rate/s':>10}")
    counters = sorted(
        (key, value)
        for key, value in samples.items()
        if key[0].endswith("_total")
    )
    for (name, labels), value in counters:
        label = f"{name}{{{_labels_str(labels)}}}" if labels else name
        rate = ""
        if previous is not None and elapsed > 0:
            delta = value - previous.get((name, labels), 0.0)
            rate = f"{delta / elapsed:10.1f}"
        lines.append(f"{label:<44} {value:12g} {rate:>10}")
    for base in ("aomp_barrier_wait_seconds", "aomp_rpc_rtt_seconds"):
        count = samples.get((f"{base}_count", ()))
        if not count:
            continue
        total = samples.get((f"{base}_sum", ()), 0.0)
        p50 = _histogram_quantile(samples, base, 0.50)
        p99 = _histogram_quantile(samples, base, 0.99)
        lines.append("")
        lines.append(
            f"{base}: count={count:g} mean={total / count * 1e6:.1f}us"
            f" p50<={p50 * 1e6:.1f}us p99<={p99 * 1e6:.1f}us"
            if p50 is not None and p99 is not None
            else f"{base}: count={count:g}"
        )
    members = sorted(
        (dict(labels).get("member", "?"), value)
        for (name, labels), value in samples.items()
        if name == "aomp_member_alive"
    )
    if members:
        lines.append("")
        lines.append(
            "members: "
            + " ".join(f"{m}:{'up' if v else 'DOWN'}" for m, v in members)
        )
    depths = sorted(
        (dict(labels).get("member", "?"), value)
        for (name, labels), value in samples.items()
        if name == "aomp_task_deque_depth"
    )
    if depths:
        lines.append("deque depth: " + " ".join(f"{m}:{v:g}" for m, v in depths))
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:9464/metrics",
        help="scrape endpoint (default: %(default)s)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="redraw period in seconds"
    )
    parser.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0, help="per-scrape HTTP timeout"
    )
    args = parser.parse_args(argv)

    previous: Samples | None = None
    last_time = time.monotonic()
    down_since: float | None = None
    while True:
        try:
            samples = scrape(args.url, args.timeout)
        except (urllib.error.URLError, OSError) as exc:
            # The endpoint dropping mid-session (master exited, service
            # draining/restarting) is a normal condition for a live dashboard:
            # show a status line and keep polling.  Only --once, whose whole
            # job is one snapshot, treats an unreachable endpoint as an error.
            if args.once:
                print(f"aomp_top: cannot scrape {args.url}: {exc}", file=sys.stderr)
                return 1
            now = time.monotonic()
            if down_since is None:
                down_since = now
            print(
                CLEAR
                + f"aomp_top — {time.strftime('%H:%M:%S')}\n\n"
                + f"endpoint down, retrying ({args.url}: {exc}; "
                + f"unreachable for {now - down_since:.0f}s)",
                flush=True,
            )
            previous = None  # rates across an outage are meaningless
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0
            continue
        down_since = None
        now = time.monotonic()
        output = render(samples, previous, now - last_time)
        if args.once:
            print(output)
            return 0
        print(CLEAR + output, flush=True)
        previous, last_time = samples, now
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    raise SystemExit(main())
