#!/usr/bin/env python
"""Run the always-on compute service (``src/repro/service``) as a process.

Quick start::

    AOMP_METRICS=1 AOMP_METRICS_PORT=9464 \
    PYTHONPATH=src python scripts/aomp_serve.py --port 9465 --workers 2 &
    python - <<'EOF'
    from repro.service.client import ServiceClient
    with ServiceClient("127.0.0.1", 9465) as client:
        print(client.submit("series", size="tiny", wait=True))
    EOF

Configuration comes from ``AOMP_SERVICE_*`` (see ``repro/service/config.py``)
with flags overriding the environment.  The service prints one
``listening host:port`` line to stdout once ready (CI waits on it), and a
SIGTERM or SIGINT triggers a graceful drain: no new admissions, in-flight
requests finish (bounded by ``--drain-timeout``, then cancelled through the
team-abort path), pools and the metrics endpoint shut down, exit code 0.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.config import ServiceConfig  # noqa: E402  (path set up above)
from repro.service.server import ComputeService  # noqa: E402


def build_config(argv: "list[str] | None" = None) -> ServiceConfig:
    defaults = ServiceConfig()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default=defaults.host, help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=defaults.port, help="listen port; 0 = ephemeral")
    parser.add_argument("--workers", type=int, default=defaults.workers, help="dispatch workers")
    parser.add_argument("--queue", type=int, default=defaults.queue_limit, help="admission queue bound")
    parser.add_argument("--tenant-cap", type=int, default=defaults.tenant_cap, help="per-tenant running cap")
    parser.add_argument("--backend", default=defaults.backend, help="execution backend ('' = AOMP_BACKEND)")
    parser.add_argument("--tune-dir", default=defaults.tune_dir, help="per-tenant tune-cache directory")
    parser.add_argument("--num-threads", type=int, default=defaults.num_threads, help="team size per request")
    parser.add_argument(
        "--drain-timeout", type=float, default=defaults.drain_timeout,
        help="seconds a drain waits for in-flight requests before cancelling them",
    )
    args = parser.parse_args(argv)
    return defaults.with_overrides(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue,
        tenant_cap=args.tenant_cap,
        backend=args.backend,
        tune_dir=args.tune_dir,
        num_threads=args.num_threads,
        drain_timeout=args.drain_timeout,
    )


async def _main(config: ServiceConfig) -> int:
    service = ComputeService(config)
    host, port = await service.start()
    if service.metrics_port is not None:
        print(f"metrics http://127.0.0.1:{service.metrics_port}/metrics", flush=True)
    print(f"listening {host}:{port}", flush=True)

    loop = asyncio.get_running_loop()
    draining = False

    def request_drain(signame: str) -> None:
        nonlocal draining
        if draining:
            return
        draining = True
        print(f"{signame} received; draining", flush=True)
        asyncio.ensure_future(service.drain())

    for signame in ("SIGTERM", "SIGINT"):
        loop.add_signal_handler(getattr(signal, signame), request_drain, signame)

    await service.serve_forever()
    leaked = service.dispatch.leaked_workers()
    snapshot = service.queue.snapshot()
    print(
        f"drained: requests_by_state={snapshot['requests_by_state']} "
        f"leaked_workers={len(leaked)}",
        flush=True,
    )
    return 1 if leaked else 0


def main(argv: "list[str] | None" = None) -> int:
    return asyncio.run(_main(build_config(argv)))


if __name__ == "__main__":
    raise SystemExit(main())
