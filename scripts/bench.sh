#!/usr/bin/env bash
# Benchmark entry point: refresh the per-construct overhead baseline.
#
#   scripts/bench.sh                # quick deterministic run, updates BENCH_overhead.json
#   scripts/bench.sh --full         # full-size run (slower, tighter numbers)
#   scripts/bench.sh --rebaseline   # also replace the stored pre-PR baseline
#
# The run rewrites the "current" section of BENCH_overhead.json and keeps
# the committed "baseline" section (the pre-optimisation measurements) so the
# speedup_vs_baseline ratios track the perf trajectory across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

MODE="--quick"
EXTRA=()
for arg in "$@"; do
  case "$arg" in
    --full) MODE="" ;;
    *) EXTRA+=("$arg") ;;
  esac
done

# Regression gate FIRST, against the still-committed reference — running it
# after the refresh below would compare fresh numbers against numbers written
# seconds earlier and could never catch a regression (see check_bench.py for
# the tolerance policy).
python scripts/check_bench.py --mode smoke

# ${EXTRA[@]+...} keeps `set -u` happy on bash < 4.4 when EXTRA is empty.
python benchmarks/bench_overhead.py ${MODE} --output BENCH_overhead.json ${EXTRA[@]+"${EXTRA[@]}"}

# Task-runtime overhead companion (spawn/steal/taskloop dispatch).
python benchmarks/bench_tasks.py --mode quick
