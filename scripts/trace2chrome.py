#!/usr/bin/env python
"""Export a TraceRecorder dump to Chrome trace-viewer JSON.

The runtime's trace events carry durations (``elapsed``) but no absolute
timestamps — recording wall-clock stamps per event would put a clock read on
the hot path for data only a visualiser needs.  This exporter reconstructs a
*synthetic* timeline instead: per (region, thread) a running clock advances
by each timed event's duration, and untimed events become instant markers at
the current clock.  Relative lane lengths (load imbalance, serialised
sections, steal bursts) are faithful; absolute alignment between lanes is
approximate.

Mapping:

* ``CHUNK`` / ``CRITICAL`` / ``PHASE_WORK`` / ``TASK_COMPLETE`` → duration
  events (``ph: "X"``) on the emitting member's lane;
* ``TASK_SPAWN`` / ``TASK_STEAL`` / ``BARRIER`` / ``TUNE_DECISION`` /
  ``SINGLE`` / ``MASTER`` / ``ORDERED`` / ``REDUCTION`` → instant events
  (``ph: "i"``), tune decisions carrying the decided schedule in ``args``;
* regions → Chrome "processes" (``pid``), team members → "threads" (``tid``).

Usage::

    # dump a trace from your program
    json.dump(recorder.to_dicts(), open("trace.json", "w"))
    # convert it
    python scripts/trace2chrome.py trace.json chrome_trace.json
    # then load chrome_trace.json in chrome://tracing or https://ui.perfetto.dev
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterable

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.trace import EventKind, TraceEvent, events_from_dicts  # noqa: E402

#: event kinds rendered as duration slices (they carry ``elapsed`` payloads).
DURATION_KINDS = {
    EventKind.CHUNK,
    EventKind.PHASE_WORK,
    EventKind.TASK_COMPLETE,
    EventKind.SECTION,
}

#: payload keys shown in the trace viewer's argument pane, per kind.
_ARG_KEYS = {
    EventKind.CHUNK: ("loop", "start", "end", "step", "count", "weight"),
    EventKind.CRITICAL: ("key", "waited", "held"),
    EventKind.TASK_SPAWN: ("count",),
    EventKind.TASK_STEAL: ("victim", "count"),
    EventKind.TUNE_DECISION: (
        "loop",
        "schedule",
        "chunk",
        "serial",
        "transition",
        "invocation",
        "elapsed",
        "converged",
        "best_schedule",
        "best_chunk",
        "best_seconds",
    ),
    EventKind.BARRIER: ("label",),
    EventKind.REDUCTION: ("field", "count"),
    EventKind.SECTION: ("sections", "index", "method"),
    EventKind.WORKER_DEAD: ("member", "pid", "exitcode", "signal"),
    EventKind.FAULT_INJECTED: ("action", "site", "member", "fault_region", "rule"),
    EventKind.REGION_RETRY: ("name", "action", "attempt", "backend", "from_backend", "delay"),
}


def _name_of(event: TraceEvent) -> str:
    if event.kind is EventKind.CHUNK:
        return str(event.data.get("loop", "chunk"))
    if event.kind is EventKind.TUNE_DECISION:
        schedule = "serial" if event.data.get("serial") else event.data.get("schedule", "?")
        return f"tune: {event.data.get('loop', '?')} -> {schedule}"
    if event.kind is EventKind.CRITICAL:
        return f"critical:{event.data.get('key', '?')}"
    if event.kind is EventKind.BARRIER:
        label = event.data.get("label")
        return f"barrier:{label}" if label else "barrier"
    if event.kind is EventKind.SECTION:
        group = event.data.get("sections", "sections")
        index = event.data.get("index")
        return f"{group}[{index}]" if index is not None else str(event.data.get("method", group))
    return event.kind.value


def _args_of(event: TraceEvent) -> dict[str, Any]:
    keys = _ARG_KEYS.get(event.kind, ())
    return {key: event.data[key] for key in keys if event.data.get(key) is not None}


def events_to_chrome(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """Convert runtime trace events to a Chrome trace-viewer document."""
    clocks: dict[tuple[int, int], float] = {}  # (region, thread) -> µs cursor
    trace_events: list[dict[str, Any]] = []
    seen_lanes: set[tuple[int, int]] = set()

    for event in sorted(events, key=lambda e: e.seq):
        lane = (event.region, event.thread_id)
        if lane not in seen_lanes:
            seen_lanes.add(lane)
            trace_events.append(
                {
                    "ph": "M",
                    "pid": event.region,
                    "tid": event.thread_id,
                    "name": "thread_name",
                    "args": {"name": f"member {event.thread_id}"},
                }
            )
        cursor = clocks.get(lane, 0.0)
        common = {"pid": event.region, "tid": event.thread_id, "cat": event.kind.value}

        elapsed = event.data.get("elapsed")
        if event.kind is EventKind.CRITICAL:
            # waited + held, rendered as one slice with the wait in args.
            elapsed = float(event.data.get("waited", 0.0)) + float(event.data.get("held", 0.0))
        if event.kind in DURATION_KINDS or (event.kind is EventKind.CRITICAL and elapsed):
            duration_us = float(elapsed or 0.0) * 1e6
            trace_events.append(
                {
                    **common,
                    "ph": "X",
                    "name": _name_of(event),
                    "ts": cursor,
                    "dur": duration_us,
                    "args": _args_of(event),
                }
            )
            clocks[lane] = cursor + duration_us
        else:
            trace_events.append(
                {
                    **common,
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "name": _name_of(event),
                    "ts": cursor,
                    "args": _args_of(event),
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generated_by": "scripts/trace2chrome.py",
            "note": "synthetic timeline: per-lane clocks accumulate recorded durations",
        },
    }


def load_events(path: Path) -> list[TraceEvent]:
    """Read a trace dump (a list of event dicts, or {\"events\": [...]})."""
    document = json.loads(path.read_text())
    if isinstance(document, dict):
        document = document.get("events", [])
    return events_from_dicts(document)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("input", type=Path, help="trace dump (TraceRecorder.to_dicts() JSON)")
    parser.add_argument(
        "output",
        type=Path,
        nargs="?",
        default=None,
        help="Chrome trace JSON to write (default: <input>.chrome.json)",
    )
    args = parser.parse_args(argv)

    output = args.output if args.output is not None else args.input.with_suffix(".chrome.json")
    document = events_to_chrome(load_events(args.input))
    output.write_text(json.dumps(document, indent=1) + "\n")
    print(f"wrote {output} ({len(document['traceEvents'])} events)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
