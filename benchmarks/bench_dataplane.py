"""Socket data-plane cost model — what one claim round-trip actually costs.

Companion to ``bench_overhead.py`` for the distributed backend
(:mod:`repro.runtime.dataplane`).  The socket plane replaces shared-memory
atomics with length-prefixed TCP RPCs to a master-side coordinator, so every
scheduling decision a remote member makes has a wire cost; this benchmark
measures it against an in-process :class:`~repro.runtime.shm.SyncArena`
doing the identical claim sequence, using a real coordinator + worker
session over loopback (no spawned processes — the wire, framing and
dispatch code paths are exactly the production ones; only the worker lives
in this process).

Headline numbers:

* ``ping`` — empty-payload RPC round-trip: the floor any remote claim pays;
* ``fetch_add`` — one static/cyclic-style counter claim, proxy vs direct
  (the direct number is the shm plane's cost for the same operation);
* ``claim_batch`` — one *batched* dynamic claim returning up to ``batch``
  chunks: the per-chunk cost is the RTT amortised over the batch, which is
  why dynamic/guided distributed loops reuse the ``_claim_batch`` shapes
  instead of claiming chunk-by-chunk;
* ``barrier`` — a 2-party barrier round-trip (handler thread waits on the
  remote member's behalf);
* ``gather``/``publish`` — bulk array movement per element, the BSP
  coherence cost paid at barriers.

Usage::

    PYTHONPATH=src python benchmarks/bench_dataplane.py                # table
    PYTHONPATH=src python benchmarks/bench_dataplane.py --mode smoke   # CI smoke
    PYTHONPATH=src python benchmarks/bench_dataplane.py --json         # JSON
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from typing import Any

import numpy as np

from repro.runtime import dataplane, shm

SCHEMA_VERSION = 1

#: (rpc repetitions, barrier repetitions, array elements) per mode.
MODES = {
    "smoke": (200, 50, 4_096),
    "quick": (1_000, 200, 65_536),
    "full": (5_000, 1_000, 262_144),
}

#: chunks claimed per batched dynamic round-trip (the worksharing default).
CLAIM_BATCH = 8


def _best_of(repeats: int, measure) -> float:
    return min(measure() for _ in range(repeats))


def run_suite(mode: str = "quick", *, repeats: int = 3) -> "dict[str, Any]":
    rpc_reps, barrier_reps, elements = MODES[mode]
    coordinator = dataplane.Coordinator(2)
    coordinator.start()
    session = dataplane.WorkerSession(
        dataplane.LOOPBACK_HOST, coordinator.port, coordinator.token, 1, install_hook=False
    )
    master = shm.shared_zeros(elements)
    try:
        metrics: "dict[str, Any]" = {}

        def time_rpcs(call) -> float:
            start = time.perf_counter()
            for _ in range(rpc_reps):
                call()
            return (time.perf_counter() - start) / rpc_reps

        metrics["ping"] = {"rtt_seconds": _best_of(repeats, lambda: time_rpcs(lambda: session.call("ping")))}

        # -- fetch_add: proxy RTT vs the identical in-process arena claim ----
        proxy_slot = dataplane.ProxySyncArena(session).slot(0)
        metrics["fetch_add"] = {
            "proxy_rtt_seconds": _best_of(repeats, lambda: time_rpcs(lambda: proxy_slot.fetch_add(1)))
        }
        direct = shm.SyncArena(cells=[0] * (shm.SyncArena.CELLS_PER_SLOT * 256), lock=threading.Lock()).slot(0)

        def time_direct() -> float:
            start = time.perf_counter()
            for _ in range(rpc_reps):
                direct.fetch_add(1)
            return (time.perf_counter() - start) / rpc_reps

        metrics["fetch_add"]["direct_seconds"] = _best_of(repeats, time_direct)

        # -- batched dynamic claims: RTT amortised over the batch ------------
        batch_slot = dataplane.ProxySyncArena(session).slot(1)
        total_chunks = rpc_reps * CLAIM_BATCH * (repeats + 1)

        def time_batched() -> float:
            start = time.perf_counter()
            for _ in range(rpc_reps):
                batch_slot.claim_batch(CLAIM_BATCH, 2, total_chunks)
            return (time.perf_counter() - start) / rpc_reps

        batch_rtt = _best_of(repeats, time_batched)
        metrics["claim_batch"] = {
            "batch": CLAIM_BATCH,
            "rtt_seconds": batch_rtt,
            "seconds_per_chunk": batch_rtt / CLAIM_BATCH,
        }

        # -- barrier round-trip (handler thread represents the remote party) -
        barrier = dataplane.SocketBarrier(session, 2)

        def master_waits() -> None:
            for _ in range(barrier_reps):
                coordinator.barrier.wait()

        def time_barriers() -> float:
            thread = threading.Thread(target=master_waits)
            start = time.perf_counter()
            thread.start()
            for _ in range(barrier_reps):
                barrier.wait()
            thread.join()
            return (time.perf_counter() - start) / barrier_reps

        metrics["barrier"] = {"seconds_per_barrier": _best_of(repeats, time_barriers)}

        # -- bulk array movement: the BSP coherence cost ---------------------
        mirror = session.attach_array(master.name, master.np.shape, master.np.dtype.str)

        def time_gather() -> float:
            start = time.perf_counter()
            mirror.refresh()
            return time.perf_counter() - start

        gather_seconds = _best_of(repeats, time_gather)

        def time_publish() -> float:
            np.asarray(mirror)[:] += 1.0  # dirty every element
            start = time.perf_counter()
            mirror.flush()
            return time.perf_counter() - start

        publish_seconds = _best_of(repeats, time_publish)
        metrics["arrays"] = {
            "elements": elements,
            "gather_seconds_per_element": gather_seconds / elements,
            "publish_seconds_per_element": publish_seconds / elements,
        }

        return {
            "schema_version": SCHEMA_VERSION,
            "benchmark": "bench_dataplane",
            "mode": mode,
            "python": platform.python_version(),
            "transport": dataplane.SOCKET_TRANSPORT,
            "metrics": metrics,
        }
    finally:
        session.close()
        coordinator.shutdown()
        master.close()


def _print_table(payload: "dict[str, Any]") -> None:
    metrics = payload["metrics"]
    us = 1e6
    print(f"socket data-plane costs (mode={payload['mode']}, {payload['transport']})")
    print(f"{'operation':<28} {'cost':>12}")
    print(f"{'ping RTT':<28} {metrics['ping']['rtt_seconds'] * us:>10.1f}us")
    print(f"{'fetch_add via proxy':<28} {metrics['fetch_add']['proxy_rtt_seconds'] * us:>10.1f}us")
    print(f"{'fetch_add direct (shm-style)':<28} {metrics['fetch_add']['direct_seconds'] * us:>10.3f}us")
    batch = metrics["claim_batch"]
    print(f"{'claim_batch(' + str(batch['batch']) + ') RTT':<28} {batch['rtt_seconds'] * us:>10.1f}us")
    print(f"{'  per claimed chunk':<28} {batch['seconds_per_chunk'] * us:>10.1f}us")
    print(f"{'barrier (2 parties)':<28} {metrics['barrier']['seconds_per_barrier'] * us:>10.1f}us")
    arrays = metrics["arrays"]
    print(f"{'gather per element':<28} {arrays['gather_seconds_per_element'] * 1e9:>10.2f}ns")
    print(f"{'publish per element':<28} {arrays['publish_seconds_per_element'] * 1e9:>10.2f}ns")
    ratio = metrics["fetch_add"]["proxy_rtt_seconds"] / max(metrics["fetch_add"]["direct_seconds"], 1e-12)
    print(f"\none remote claim costs ~{ratio:,.0f}x an in-process claim; batching {batch['batch']} "
          f"chunks per RTT recovers {batch['batch']}x of that")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--mode", choices=sorted(MODES), default="quick")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions per metric")
    parser.add_argument("--json", action="store_true", help="emit the JSON payload instead of a table")
    args = parser.parse_args(argv)
    payload = run_suite(args.mode, repeats=max(1, args.repeats))
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        _print_table(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
