"""Table 2 benchmark harness.

Regenerates the paper's Table 2 (refactorings and abstractions used per
benchmark) from the aspect bundles the AOmp drivers actually weave, and times
the weaving/unweaving path itself (the cost of plugging the aspects in, which
the paper argues is a development-time operation).

Run with ``pytest benchmarks/bench_table2.py --benchmark-only``; print the
table with ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

import pytest

from repro.core import Weaver
from repro.experiments import table2
from repro.jgf import BENCHMARKS
from repro.jgf.series.kernel import FourierSeries
from repro.jgf.series.parallel import build_aspects as series_aspects


def test_bench_table2_rows(benchmark):
    """Time the full Table 2 derivation and validate it against the paper."""
    rows = benchmark(table2.run, 4)
    by_name = {row.benchmark: row for row in rows}
    assert set(by_name) == set(BENCHMARKS)
    assert "FOR(cyclic)" in by_name["MolDyn"].abstractions
    assert "2xTLF" in by_name["MolDyn"].abstractions
    assert "CS" in by_name["Sparse"].abstractions
    assert "4xBR" in by_name["LUFact"].abstractions


def test_bench_weave_unweave_cycle(benchmark):
    """Time one weave/unweave cycle of a full benchmark parallelisation."""

    def cycle():
        weaver = Weaver()
        weaver.weave_all(series_aspects(4), FourierSeries)
        weaver.unweave_all()
        return len(weaver.records)

    leftovers = benchmark(cycle)
    assert leftovers == 0


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_bench_aspect_bundle_construction(benchmark, name):
    """Time constructing each benchmark's aspect bundle (Table 2 input)."""
    aspects = benchmark(table2.benchmark_aspects, name, 4)
    assert aspects
