"""Ablation: weaving styles and interception overhead (DESIGN.md Section 5).

Quantifies (i) the per-call overhead an aspect wrapper adds compared with a
direct method call, (ii) annotation-style versus pointcut-style weaving cost,
and (iii) captured-lock versus shared-lock critical sections — the design
alternatives the paper discusses in Sections III.B-III.C.
"""

from __future__ import annotations

import pytest

from repro.core import CriticalAspect, MethodAspect, Weaver, call
from repro.core import annotations as aomp
from repro.core.annotation_weaver import weave_annotations
from repro.runtime.team import parallel_region


class Probe:
    def poke(self) -> int:
        return 1

    @aomp.critical(id="annotated")
    def guarded(self) -> int:
        return 2


def test_bench_direct_call(benchmark):
    probe = Probe()
    assert benchmark(probe.poke) == 1


def test_bench_woven_call(benchmark):
    weaver = Weaver()
    weaver.weave(MethodAspect(call("Probe.poke")), Probe)
    try:
        probe = Probe()
        assert benchmark(probe.poke) == 1
    finally:
        weaver.unweave_all()


def test_bench_pointcut_weaving_cycle(benchmark):
    def cycle():
        weaver = Weaver()
        weaver.weave(MethodAspect(call("Probe.poke")), Probe)
        weaver.unweave_all()

    benchmark(cycle)


def test_bench_annotation_weaving_cycle(benchmark):
    def cycle():
        weaver = weave_annotations(Probe)
        weaver.unweave_all()

    benchmark(cycle)


@pytest.mark.parametrize("style", ["shared-lock", "captured-lock", "named-lock"])
def test_bench_critical_lock_styles(benchmark, style):
    """Compare the three critical-section lock-selection strategies under contention."""
    if style == "named-lock":
        aspect = CriticalAspect(call("Probe.poke"), lock_id=f"bench-{style}")
    else:
        aspect = CriticalAspect(call("Probe.poke"), use_captured_lock=(style == "captured-lock"))
    weaver = Weaver()
    weaver.weave(aspect, Probe)
    try:
        probe = Probe()

        def contended_region():
            parallel_region(lambda: [probe.poke() for _ in range(50)], num_threads=4)

        benchmark(contended_region)
    finally:
        weaver.unweave_all()
