"""Compute-service benchmark: concurrent clients against a live service.

Starts an in-process :class:`repro.service.server.ServiceThread` (the exact
stack ``scripts/aomp_serve.py`` serves, minus the OS process boundary) and
drives it with N concurrent socket clients submitting JGF kernels, measuring
what the always-on deployment model actually buys:

* **throughput** — completed requests per second across all clients;
* **latency** — per-request p50/p99 wall time as a client sees it (queueing
  + dispatch + region execution);
* **warm vs cold** — the same request mix replayed against the now-warm
  service (pools pre-spawned and hot, per-tenant tuner populated), the
  pay-once-per-service costs amortised out versus the first pass, which pays
  them per deployment the way a script pays them per run.

Every result is validated against the kernel's serial reference — a
benchmark that returns wrong answers fast measures nothing.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py                # table
    PYTHONPATH=src python benchmarks/bench_service.py --mode smoke   # CI smoke
    PYTHONPATH=src python benchmarks/bench_service.py --json         # JSON
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from typing import Any

from repro.service.client import ServiceClient
from repro.service.kernels import KERNELS
from repro.service.server import ServiceThread

SCHEMA_VERSION = 1

#: (clients, requests per client per pass, kernels, size) per mode.
MODES = {
    "smoke": (4, 3, ("series",), "tiny"),
    "quick": (4, 8, ("series", "crypt"), "small"),
    "full": (8, 12, ("series", "crypt", "sor", "sparse"), "small"),
}

#: team size per request — fixed so results compare across hosts.
TEAM_SIZE = 2


def _percentile(sorted_values: "list[float]", fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _drive_pass(
    host: str,
    port: int,
    *,
    clients: int,
    requests: int,
    kernels: "tuple[str, ...]",
    size: str,
) -> "dict[str, Any]":
    """One full pass: every client thread submits its request mix, blocking
    per request; returns per-kernel latencies plus validation failures."""
    latencies: "dict[str, list[float]]" = {kernel: [] for kernel in kernels}
    failures: "list[str]" = []
    lock = threading.Lock()

    def one_client(client_index: int) -> None:
        try:
            with ServiceClient(host, port, timeout=300.0) as client:
                for request_index in range(requests):
                    kernel = kernels[(client_index + request_index) % len(kernels)]
                    began = time.perf_counter()
                    response = client.submit(
                        kernel,
                        size=size,
                        tenant=f"client-{client_index}",
                        num_threads=TEAM_SIZE,
                        coalesce=False,
                        wait=True,
                        timeout=300,
                    )
                    elapsed = time.perf_counter() - began
                    with lock:
                        if response.get("status") != "done":
                            failures.append(f"{kernel}: {response}")
                        elif not _close(response.get("value"), KERNELS[kernel].reference(size)):
                            failures.append(
                                f"{kernel}: value {response.get('value')!r} != reference"
                            )
                        else:
                            latencies[kernel].append(elapsed)
        except Exception as exc:
            with lock:
                failures.append(f"client-{client_index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=one_client, args=(index,)) for index in range(clients)]
    began = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - began

    total = sum(len(values) for values in latencies.values())
    per_kernel: "dict[str, Any]" = {}
    for kernel, values in latencies.items():
        values.sort()
        per_kernel[kernel] = {
            "count": len(values),
            "p50_seconds": _percentile(values, 0.50),
            "p99_seconds": _percentile(values, 0.99),
        }
    return {
        "wall_seconds": wall,
        "completed": total,
        "throughput_rps": total / wall if wall > 0 else 0.0,
        "kernels": per_kernel,
        "failures": failures,
    }


def _close(value: Any, reference: Any, rel: float = 1e-6) -> bool:
    if isinstance(reference, list):
        return (
            isinstance(value, list)
            and len(value) == len(reference)
            and all(_close(v, r, rel) for v, r in zip(value, reference))
        )
    try:
        return abs(float(value) - float(reference)) <= rel * max(1.0, abs(float(reference)))
    except (TypeError, ValueError):
        return value == reference


def run_suite(mode: str = "quick", *, backend: str = "threads") -> "dict[str, Any]":
    clients, requests, kernels, size = MODES[mode]
    with tempfile.TemporaryDirectory(prefix="aomp-bench-tune-") as tune_dir:
        service = ServiceThread(
            backend=backend,
            workers=2,
            port=0,
            queue_limit=max(64, clients * requests),
            tenant_cap=2,
            tune_dir=tune_dir,
            num_threads=TEAM_SIZE,
        )
        host, port = service.start()
        try:
            cold = _drive_pass(
                host, port, clients=clients, requests=requests, kernels=kernels, size=size
            )
            warm = _drive_pass(
                host, port, clients=clients, requests=requests, kernels=kernels, size=size
            )
        finally:
            drained = service.drain()
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "bench_service",
        "mode": mode,
        "backend": backend,
        "python": platform.python_version(),
        "clients": clients,
        "requests_per_client": requests,
        "size": size,
        "team_size": TEAM_SIZE,
        "metrics": {"cold": cold, "warm": warm},
        "drained": drained,
    }


def _print_table(payload: "dict[str, Any]") -> None:
    metrics = payload["metrics"]
    print(
        f"compute service (mode={payload['mode']}, backend={payload['backend']}, "
        f"{payload['clients']} clients x {payload['requests_per_client']} requests, "
        f"size={payload['size']})"
    )
    print(f"{'pass':<6} {'kernel':<8} {'count':>6} {'p50':>10} {'p99':>10} {'rps':>8}")
    for label in ("cold", "warm"):
        section = metrics[label]
        for kernel, row in sorted(section["kernels"].items()):
            print(
                f"{label:<6} {kernel:<8} {row['count']:>6} "
                f"{row['p50_seconds'] * 1e3:>8.1f}ms {row['p99_seconds'] * 1e3:>8.1f}ms "
                f"{section['throughput_rps']:>8.1f}"
            )
    for section in metrics.values():
        for failure in section["failures"]:
            print(f"FAILURE: {failure}")
    cold_wall, warm_wall = metrics["cold"]["wall_seconds"], metrics["warm"]["wall_seconds"]
    if warm_wall > 0:
        print(
            f"\nwarm pass took {warm_wall / cold_wall:.2f}x the cold pass wall time "
            "(pools pre-spawned + tuner populated on the warm pass)"
        )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--mode", choices=sorted(MODES), default="quick")
    parser.add_argument("--backend", default="threads", help="service execution backend")
    parser.add_argument("--json", action="store_true", help="emit the JSON payload instead of a table")
    args = parser.parse_args(argv)
    payload = run_suite(args.mode, backend=args.backend)
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        _print_table(payload)
    failed = any(payload["metrics"][label]["failures"] for label in ("cold", "warm"))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
