"""Per-construct runtime overhead benchmark — the repo's perf baseline.

The paper's central claim is that aspect-woven parallel constructs can match
hand-parallelised code, which makes the runtime's *dispatch overhead* the
reproduction's figure of merit.  This benchmark measures, with tracing
disabled, what each construct costs **on top of** a hand-written baseline:

* ``woven_call``       — calling a woven-but-sequential method vs a plain call;
* ``chunk_dispatch.*`` — per-chunk cost of a workshared loop under each
  schedule (``static_block``, ``static_cyclic``, ``dynamic``, ``guided``)
  vs calling the loop body directly the same number of times;
* ``barrier``          — one team barrier round (2 threads);
* ``critical``         — one uncontended named critical section;
* ``region_spawn``     — entering+leaving an empty 2-thread parallel region.

The chunk-dispatch harness pushes an :class:`ExecutionContext` for a 2-member
team and runs ``run_for`` with ``nowait=True`` on the calling thread only:
member 0 claims its chunks (for dynamic/guided: *every* chunk, as the other
member never runs) deterministically, free of thread-scheduling noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_overhead.py                # table
    PYTHONPATH=src python benchmarks/bench_overhead.py --json        # JSON to stdout
    PYTHONPATH=src python benchmarks/bench_overhead.py --quick \
        --output BENCH_overhead.json                                 # CI mode

``--output`` writes ``{"baseline": ..., "current": ...}``: the fresh run
becomes ``current``; a ``baseline`` section already present in the output
file is preserved (that section holds the pre-optimisation numbers this PR
measured, the trajectory anchor for future PRs).  ``--rebaseline`` replaces
it with the fresh run.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.core import MethodAspect, Weaver, call
from repro.runtime import context as ctx
from repro.runtime.config import config_override
from repro.runtime.critical import critical_call
from repro.runtime.team import Team, parallel_region
from repro.runtime.worksharing import run_for

SCHEMA_VERSION = 1

SCHEDULES = ("static_block", "static_cyclic", "dynamic", "guided")


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    """Run ``fn`` (returning elapsed seconds) ``repeats`` times, keep the minimum."""
    return min(fn() for _ in range(max(1, repeats)))


# ---------------------------------------------------------------------------
# woven call
# ---------------------------------------------------------------------------


class _Probe:
    def poke(self) -> int:
        return 1


def measure_woven_call(samples: int, repeats: int) -> dict[str, float]:
    """Plain method call vs the same method behind a pass-through aspect."""
    obj = _Probe()

    def plain() -> float:
        poke = obj.poke
        start = time.perf_counter()
        for _ in range(samples):
            poke()
        return time.perf_counter() - start

    baseline = _best_of(repeats, plain)

    weaver = Weaver()
    weaver.weave(MethodAspect(call("_Probe.poke")), _Probe)
    try:
        woven = _best_of(repeats, plain)
    finally:
        weaver.unweave_all()

    return {
        "samples": samples,
        "baseline_seconds_per_call": baseline / samples,
        "woven_seconds_per_call": woven / samples,
        "overhead_seconds_per_call": max(0.0, (woven - baseline) / samples),
    }


# ---------------------------------------------------------------------------
# per-chunk dispatch
# ---------------------------------------------------------------------------


class _CountingBody:
    """Loop body that only counts invocations (one call per dispatched chunk)."""

    __slots__ = ("calls",)

    def __init__(self) -> None:
        self.calls = 0

    def __call__(self, start: int, end: int, step: int) -> None:
        self.calls += 1


def _run_for_on_fake_team(
    schedule: str, iterations: int, chunk: int
) -> tuple[float, int]:
    """Execute ``run_for`` as member 0 of a 2-member team; return (elapsed, chunks)."""
    team = Team(2, name="bench-overhead")
    frame = ctx.ExecutionContext(team=team, thread_id=0, nesting_level=0)
    body = _CountingBody()
    ctx.push_context(frame)
    try:
        start = time.perf_counter()
        run_for(body, 0, iterations, 1, schedule=schedule, chunk=chunk, nowait=True)
        elapsed = time.perf_counter() - start
    finally:
        ctx.pop_context()
    return elapsed, body.calls


def measure_chunk_dispatch(iterations: int, repeats: int) -> dict[str, dict[str, float]]:
    """Per-chunk dispatch overhead per schedule, against direct body calls."""
    results: dict[str, dict[str, float]] = {}
    for schedule in SCHEDULES:
        best: float | None = None
        chunks = 0
        for _ in range(max(1, repeats)):
            elapsed, chunks = _run_for_on_fake_team(schedule, iterations, chunk=1)
            best = elapsed if best is None else min(best, elapsed)
        assert best is not None and chunks > 0

        # Hand-written baseline: call the body directly the same number of times.
        body = _CountingBody()

        def bare(calls: int = chunks, body: _CountingBody = body) -> float:
            start = time.perf_counter()
            for i in range(calls):
                body(i, i + 1, 1)
            return time.perf_counter() - start

        baseline = _best_of(repeats, bare)
        results[schedule] = {
            "iterations": iterations,
            "chunks": chunks,
            "seconds_total": best,
            "baseline_seconds_total": baseline,
            "overhead_seconds_per_chunk": max(0.0, (best - baseline) / chunks),
        }
    return results


# ---------------------------------------------------------------------------
# barrier / critical / region spawn
# ---------------------------------------------------------------------------


def measure_barrier(rounds: int, repeats: int) -> dict[str, float]:
    """One barrier round of a 2-thread team (threads backend)."""

    def once() -> float:
        def body() -> None:
            team = ctx.current_team()
            for _ in range(rounds):
                team.barrier()

        start = time.perf_counter()
        parallel_region(body, num_threads=2, backend="threads", name="bench-barrier")
        return time.perf_counter() - start

    best = _best_of(repeats, once)
    return {"rounds": rounds, "seconds_per_barrier": best / rounds}


def measure_critical(samples: int, repeats: int) -> dict[str, float]:
    """One uncontended named critical section (lock registry + bookkeeping)."""

    def once() -> float:
        noop = lambda: None  # noqa: E731
        start = time.perf_counter()
        for _ in range(samples):
            critical_call(noop, key="bench-critical")
        return time.perf_counter() - start

    best = _best_of(repeats, once)
    return {"samples": samples, "seconds_per_call": best / samples}


def measure_region_spawn(regions: int, repeats: int) -> dict[str, float]:
    """Spawn+join of an empty 2-thread parallel region."""

    def noop() -> None:
        return None

    def once() -> float:
        start = time.perf_counter()
        for _ in range(regions):
            parallel_region(noop, num_threads=2, backend="threads", name="bench-region")
        return time.perf_counter() - start

    best = _best_of(repeats, once)
    return {"regions": regions, "seconds_per_region": best / regions}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


#: measurement sizes per mode: (call samples, loop iterations, barrier
#: rounds, regions, repeats).  All fixed — runs are deterministic in shape.
MODES = {
    "full": (100_000, 20_000, 1_000, 200, 5),
    "quick": (20_000, 4_000, 200, 40, 2),
    "smoke": (2_000, 400, 20, 5, 1),  # schema/plumbing check only
}


def run_suite(*, mode: str = "full", metrics: bool = False) -> dict[str, Any]:
    """Run every measurement with tracing disabled; return the metrics payload.

    ``metrics=True`` runs the identical measurements with the observability
    registry enabled (``AOMP_METRICS``), so the delta against a default run
    is the per-construct cost of the counter/histogram guard sites.  The
    committed baseline document is always measured with ``metrics=False``.
    """
    call_samples, iters, rounds, regions, repeats = MODES[mode]

    with config_override(tracing=False, metrics=metrics):
        payload_metrics = {
            "woven_call": measure_woven_call(call_samples, repeats),
            "chunk_dispatch": measure_chunk_dispatch(iters, repeats),
            "barrier": measure_barrier(rounds, repeats),
            "critical": measure_critical(call_samples // 4, repeats),
            "region_spawn": measure_region_spawn(regions, repeats),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_overhead.py",
        "mode": mode,
        "python": platform.python_version(),
        "tracing": False,
        "metrics_enabled": metrics,
        "metrics": payload_metrics,
    }


#: the headline numbers the metrics-on/off comparison reports deltas for —
#: every construct with a counter or histogram guard site on its hot path.
METRICS_DELTA_KEYS = tuple(f"chunk_dispatch.{schedule}" for schedule in SCHEDULES) + (
    "barrier",
    "region_spawn",
)


def _headline(metrics: dict[str, Any], key: str) -> float:
    if key.startswith("chunk_dispatch."):
        return float(metrics["chunk_dispatch"][key.split(".", 1)[1]]["overhead_seconds_per_chunk"])
    if key == "barrier":
        return float(metrics["barrier"]["seconds_per_barrier"])
    return float(metrics["region_spawn"]["seconds_per_region"])


def metrics_overhead(off: dict[str, Any], on: dict[str, Any]) -> dict[str, float]:
    """Seconds each construct gains when metrics are enabled (clamped at 0)."""
    return {
        key: max(0.0, _headline(on["metrics"], key) - _headline(off["metrics"], key))
        for key in METRICS_DELTA_KEYS
    }


def _ratio(baseline: float, current: float) -> float:
    # Overheads are clamped at 0.0, so noise can produce an exact zero;
    # flooring both sides at timer resolution keeps ratios finite (JSON has
    # no standard Infinity) without distorting any measurable value.
    floor = 1e-9
    return max(baseline, floor) / max(current, floor)


def compare(baseline: dict[str, Any], current: dict[str, Any]) -> dict[str, float]:
    """Baseline/current speedup ratios for the headline per-construct numbers."""
    ratios: dict[str, float] = {}
    b, c = baseline["metrics"], current["metrics"]
    ratios["woven_call_overhead"] = _ratio(
        b["woven_call"]["overhead_seconds_per_call"], c["woven_call"]["overhead_seconds_per_call"]
    )
    for schedule in SCHEDULES:
        ratios[f"chunk_dispatch.{schedule}"] = _ratio(
            b["chunk_dispatch"][schedule]["overhead_seconds_per_chunk"],
            c["chunk_dispatch"][schedule]["overhead_seconds_per_chunk"],
        )
    ratios["barrier"] = _ratio(b["barrier"]["seconds_per_barrier"], c["barrier"]["seconds_per_barrier"])
    ratios["critical"] = _ratio(b["critical"]["seconds_per_call"], c["critical"]["seconds_per_call"])
    ratios["region_spawn"] = _ratio(
        b["region_spawn"]["seconds_per_region"], c["region_spawn"]["seconds_per_region"]
    )
    return ratios


def _format_table(payload: dict[str, Any]) -> str:
    m = payload["metrics"]
    lines = [
        f"Per-construct overhead — mode={payload['mode']}, tracing off, Python {payload['python']}",
        f"{'construct':<28} {'overhead':>14}",
        f"{'woven call':<28} {m['woven_call']['overhead_seconds_per_call'] * 1e6:>11.3f} us",
    ]
    for schedule in SCHEDULES:
        row = m["chunk_dispatch"][schedule]
        lines.append(
            f"{'chunk ' + schedule:<28} {row['overhead_seconds_per_chunk'] * 1e6:>11.3f} us"
            f"   ({row['chunks']} chunks)"
        )
    lines.append(f"{'barrier (2 threads)':<28} {m['barrier']['seconds_per_barrier'] * 1e6:>11.3f} us")
    lines.append(f"{'critical (uncontended)':<28} {m['critical']['seconds_per_call'] * 1e6:>11.3f} us")
    lines.append(f"{'region spawn (2 threads)':<28} {m['region_spawn']['seconds_per_region'] * 1e6:>11.3f} us")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--mode",
        choices=sorted(MODES),
        default=None,
        help="measurement sizes: full (default), quick (CI), smoke (plumbing check)",
    )
    parser.add_argument("--quick", action="store_true", help="alias for --mode quick")
    parser.add_argument("--smoke", action="store_true", help="alias for --mode smoke")
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON to stdout")
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="also run the suite with the metrics registry enabled and report "
        "the per-construct cost of the guard sites (metrics-on vs metrics-off)",
    )
    parser.add_argument("--output", type=Path, default=None, help="write/update a BENCH_overhead.json file")
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="with --output: replace the stored baseline section with this run",
    )
    args = parser.parse_args(argv)

    mode = args.mode or ("smoke" if args.smoke else ("quick" if args.quick else "full"))
    current = run_suite(mode=mode)
    metrics_on = run_suite(mode=mode, metrics=True) if args.metrics else None

    if args.output is not None:
        baseline = None
        existing: dict[str, Any] = {}
        if args.output.exists():
            try:
                existing = json.loads(args.output.read_text())
            except (json.JSONDecodeError, OSError):
                existing = {}
            if not args.rebaseline:
                baseline = existing.get("baseline")
        if baseline is None:
            baseline = current
        document = {
            "schema_version": SCHEMA_VERSION,
            "baseline": baseline,
            "current": current,
            "speedup_vs_baseline": compare(baseline, current),
        }
        # The metrics-overhead section (the documented bound check_bench.py
        # gates against) survives re-measurement; a --metrics run refreshes
        # its measured deltas while keeping the bound and its rationale.
        overhead_section = existing.get("metrics_overhead")
        if metrics_on is not None:
            overhead_section = dict(overhead_section or {"bound_seconds_per_chunk": 1e-06})
            overhead_section["measured_seconds_added"] = metrics_overhead(current, metrics_on)
        if overhead_section is not None:
            document["metrics_overhead"] = overhead_section
        args.output.write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)

    if args.json:
        if metrics_on is not None:
            print(
                json.dumps(
                    {
                        "metrics_off": current,
                        "metrics_on": metrics_on,
                        "metrics_added_seconds": metrics_overhead(current, metrics_on),
                    },
                    indent=2,
                )
            )
        else:
            print(json.dumps(current, indent=2))
    else:
        print(_format_table(current))
        if metrics_on is not None:
            added = metrics_overhead(current, metrics_on)
            print(f"\nCost of enabled metrics (AOMP_METRICS=1) — mode={mode}")
            print(f"{'construct':<28} {'added':>14}")
            for key in METRICS_DELTA_KEYS:
                print(f"{key:<28} {added[key] * 1e6:>11.3f} us")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
