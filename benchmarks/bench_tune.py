"""Adaptive-scheduling benchmark — ``schedule="auto"`` vs hand-picked schedules.

Companion to ``bench_overhead.py``/``bench_tasks.py`` for the tune subsystem
(:mod:`repro.tune`).  Three workload shapes, each a work-shared loop whose
per-iteration cost is a ``time.sleep`` (sleeping releases the GIL, so load
imbalance shows up in wall time even on one core — exactly the signal the
tuner optimises):

* ``uniform``    — every iteration costs the same; every schedule is fine and
  auto must simply not be worse;
* ``triangular`` — iteration *i* costs ∝ ``n - i`` (the MolDyn/LUFact shape);
  ``static_block`` front-loads the first member (~1.7× the ideal share) while
  cyclic/dynamic balance it;
* ``random``     — a fixed heavy-tailed cost landscape (seeded; the seed is
  chosen so the contiguous block partition is adversarial: ~1.9× the ideal
  share) with no single dominant iteration, so claim-based schedules can
  balance it.

For each workload every *static* candidate from the tuner's own search space
is measured, then a fresh tuner drives ``schedule="auto"`` until the site
converges and its steady state is measured.  Targets (evaluated in every
mode, meaningful in ``full``):

* uniform and triangular: converged auto within 10% of the best static choice;
* random: auto ≥ 1.5× faster than the worst static choice;
* tune-cache persistence: a second tuner warmed from ``AOMP_TUNE_CACHE``
  converges in ≤ 2 invocations.

Usage::

    PYTHONPATH=src python benchmarks/bench_tune.py                 # table
    PYTHONPATH=src python benchmarks/bench_tune.py --mode smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_tune.py --json          # JSON
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.runtime.config import config_override
from repro.runtime.team import parallel_region
from repro.runtime.worksharing import run_for
from repro.tune import Candidate, LoopTuner, TunerConfig, candidates_for, tuner_override

SCHEMA_VERSION = 1
THREADS = 4

#: Seed of the ``random`` workload.  Chosen (by scanning seeds) so that the
#: contiguous block partition of the weights is adversarial — ~1.9× the ideal
#: per-member share — while no single iteration dominates (the workload stays
#: balanceable by claim-based schedules).  Fixed: runs are deterministic.
RANDOM_SEED = 174

#: measurement sizes per mode: (iterations n, total sleep seconds per
#: invocation, steady-state repeats, max auto invocations).
MODES = {
    "full": (64, 0.12, 2, 30),
    "quick": (64, 0.045, 2, 30),
    "smoke": (16, 0.006, 1, 30),
}


def _weights(kind: str, n: int) -> list[float]:
    if kind == "uniform":
        return [1.0] * n
    if kind == "triangular":
        return [float(n - i) for i in range(n)]
    if kind == "random":
        rng = random.Random(RANDOM_SEED)
        return [rng.random() ** 4 * 16 + 0.2 for _ in range(n)]
    raise ValueError(f"unknown workload {kind!r}")


def _make_loop(weights: list[float], scale: float) -> Callable[[int, int, int], None]:
    def loop(start: int, end: int, step: int) -> None:
        for i in range(start, end, step):
            time.sleep(weights[i] * scale)

    return loop


def _measure_invocation(loop, n: int, *, schedule, chunk: int = 1, loop_name: str) -> float:
    """Wall time of one parallel region running the loop once."""

    def body() -> None:
        run_for(loop, 0, n, 1, schedule=schedule, chunk=chunk, loop_name=loop_name)

    start = time.perf_counter()
    parallel_region(body, num_threads=THREADS, backend="threads")
    return time.perf_counter() - start


def _static_candidates(n: int) -> list[Candidate]:
    return [c for c in candidates_for(n, THREADS) if not c.serial]


def measure_workload(kind: str, *, n: int, total_sleep: float, repeats: int, max_invocations: int) -> dict[str, Any]:
    """Measure every static candidate and the converged auto schedule."""
    weights = _weights(kind, n)
    scale = total_sleep / sum(weights)
    loop = _make_loop(weights, scale)
    loop_name = f"bench_tune.{kind}"

    static: dict[str, float] = {}
    for candidate in _static_candidates(n):
        best = min(
            _measure_invocation(loop, n, schedule=candidate.schedule, chunk=candidate.chunk, loop_name=loop_name)
            for _ in range(max(1, repeats))
        )
        static[candidate.label] = best
    best_label = min(static, key=static.get)
    worst_label = max(static, key=static.get)

    # Fresh tuner: drive auto until the site leaves exploration.
    tuner = LoopTuner(TunerConfig(), cache_path=None)
    invocations = 0
    with tuner_override(tuner):
        for _ in range(max_invocations):
            invocations += 1
            _measure_invocation(loop, n, schedule="auto", loop_name=loop_name)
            sites = tuner.sites()
            if sites and sites[0].converged and not sites[0].probation:
                break
        auto_best = min(
            _measure_invocation(loop, n, schedule="auto", loop_name=loop_name)
            for _ in range(max(1, repeats))
        )
    site = tuner.sites()[0] if tuner.sites() else None
    choice = site.choice.label if site is not None and site.choice is not None else None

    return {
        "iterations": n,
        "total_sleep_seconds": total_sleep,
        "static_seconds": static,
        "best_static": {"schedule": best_label, "seconds": static[best_label]},
        "worst_static": {"schedule": worst_label, "seconds": static[worst_label]},
        "auto": {
            "seconds": auto_best,
            "converged": bool(site is not None and site.converged),
            "choice": choice,
            "invocations_to_converge": invocations,
        },
        "auto_vs_best_ratio": auto_best / static[best_label] if static[best_label] > 0 else 1.0,
        "worst_vs_auto_ratio": static[worst_label] / auto_best if auto_best > 0 else 1.0,
    }


def measure_cache_persistence(*, n: int, total_sleep: float, max_invocations: int, cache_path: Path) -> dict[str, Any]:
    """Cold tuner converges and persists; a warm tuner reconverges from disk."""
    weights = _weights("uniform", n)
    loop = _make_loop(weights, total_sleep / sum(weights))
    loop_name = "bench_tune.cache"

    def converge(tuner: LoopTuner) -> int:
        invocations = 0
        with tuner_override(tuner):
            for _ in range(max_invocations):
                invocations += 1
                _measure_invocation(loop, n, schedule="auto", loop_name=loop_name)
                sites = tuner.sites()
                if sites and sites[0].converged and not sites[0].probation:
                    break
        return invocations

    cold = converge(LoopTuner(TunerConfig(), cache_path=str(cache_path)))
    warm = converge(LoopTuner(TunerConfig(), cache_path=str(cache_path)))
    return {
        "cache_file_written": cache_path.exists(),
        "cold_invocations": cold,
        "warm_invocations": warm,
    }


def run_suite(*, mode: str = "full", cache_path: "Path | None" = None) -> dict[str, Any]:
    """Run every measurement with tracing disabled; return the metrics payload."""
    n, total_sleep, repeats, max_invocations = MODES[mode]
    temp_dir = None
    if cache_path is None:
        import tempfile

        temp_dir = tempfile.TemporaryDirectory(prefix="bench_tune_")
        cache_path = Path(temp_dir.name) / "tune_cache.json"

    try:
        with config_override(tracing=False, num_threads=THREADS):
            workloads = {
                kind: measure_workload(
                    kind, n=n, total_sleep=total_sleep, repeats=repeats, max_invocations=max_invocations
                )
                for kind in ("uniform", "triangular", "random")
            }
            cache = measure_cache_persistence(
                n=n, total_sleep=total_sleep, max_invocations=max_invocations, cache_path=cache_path
            )
    finally:
        if temp_dir is not None:
            temp_dir.cleanup()

    targets = {
        "uniform_within_10pct": workloads["uniform"]["auto_vs_best_ratio"] <= 1.10,
        "triangular_within_10pct": workloads["triangular"]["auto_vs_best_ratio"] <= 1.10,
        "random_speedup_vs_worst": workloads["random"]["worst_vs_auto_ratio"],
        "random_target_met": workloads["random"]["worst_vs_auto_ratio"] >= 1.5,
        "cache_warm_within_2_invocations": cache["warm_invocations"] <= 2,
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_tune.py",
        "mode": mode,
        "python": platform.python_version(),
        "threads": THREADS,
        "tracing": False,
        "metrics": {"workloads": workloads, "cache": cache, "targets": targets},
    }


def _format_table(payload: dict[str, Any]) -> str:
    metrics = payload["metrics"]
    lines = [
        f"Adaptive scheduling — mode={payload['mode']}, {payload['threads']} threads, "
        f"Python {payload['python']}",
        f"{'workload':<12} {'best static':>22} {'worst static':>22} {'auto (choice)':>28}",
    ]
    for kind, entry in metrics["workloads"].items():
        best, worst, auto = entry["best_static"], entry["worst_static"], entry["auto"]
        lines.append(
            f"{kind:<12} "
            f"{best['seconds'] * 1e3:>9.1f}ms {best['schedule']:>12} "
            f"{worst['seconds'] * 1e3:>9.1f}ms {worst['schedule']:>12} "
            f"{auto['seconds'] * 1e3:>9.1f}ms {str(auto['choice']):>14} "
            f"[{auto['invocations_to_converge']} inv]"
        )
    cache = metrics["cache"]
    lines.append(
        f"cache: cold converged in {cache['cold_invocations']} invocations, "
        f"warm in {cache['warm_invocations']}"
    )
    targets = metrics["targets"]
    lines.append(
        "targets: "
        + ", ".join(
            f"{name}={value if not isinstance(value, float) else round(value, 2)}"
            for name, value in targets.items()
        )
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--mode",
        choices=sorted(MODES),
        default="full",
        help="measurement sizes: full (default), quick (CI), smoke (plumbing check)",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON to stdout")
    parser.add_argument("--output", type=Path, default=None, help="write the payload to a JSON file")
    parser.add_argument(
        "--check-targets",
        action="store_true",
        help="exit non-zero when an acceptance target fails (use with --mode full)",
    )
    args = parser.parse_args(argv)

    current = run_suite(mode=args.mode)

    if args.output is not None:
        args.output.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)

    if args.json:
        print(json.dumps(current, indent=2))
    else:
        print(_format_table(current))

    if args.check_targets:
        targets = current["metrics"]["targets"]
        failed = [
            name
            for name in (
                "uniform_within_10pct",
                "triangular_within_10pct",
                "random_target_met",
                "cache_warm_within_2_invocations",
            )
            if not targets[name]
        ]
        if failed:
            print(f"FAIL: target(s) not met: {', '.join(failed)}", file=sys.stderr)
            return 1
        print("OK: all adaptive-scheduling targets met", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
