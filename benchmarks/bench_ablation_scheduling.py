"""Ablation: loop schedules on a triangular workload (DESIGN.md Section 5).

The paper picks cyclic scheduling for MolDyn/MonteCarlo/RayTracer because
their iteration costs are non-uniform.  This ablation quantifies that choice:
a triangular loop is distributed with each schedule and the modelled speedup
(load balance) is compared, while pytest-benchmark times the scheduling
machinery itself.
"""

from __future__ import annotations

import pytest

from repro.perf.cost import CostModel, LoopCost, triangular_weight
from repro.perf.machines import MachineModel
from repro.perf.model import MakespanModel
from repro.runtime.scheduler import make_scheduler
from repro.runtime.team import parallel_region
from repro.runtime.trace import TraceRecorder
from repro.runtime.worksharing import run_for

ITERATIONS = 256
THREADS = 8
SCHEDULES = ("staticBlock", "staticCyclic", "dynamic", "guided")


def _trace_schedule(schedule: str) -> TraceRecorder:
    recorder = TraceRecorder()
    weight = triangular_weight(ITERATIONS)

    def loop(start, end, step):
        pass

    def body():
        run_for(loop, 0, ITERATIONS, 1, schedule=schedule, chunk=4, loop_name="triangular", weight=weight)

    parallel_region(body, num_threads=THREADS, recorder=recorder)
    return recorder


def _modelled_speedup(recorder: TraceRecorder) -> float:
    machine = MachineModel("ablation", cores=THREADS, hardware_threads=THREADS, sync_overhead_us=0.0)
    cost_model = CostModel(loops={"triangular": LoopCost(seconds_per_unit=1e-6, weight_fn=triangular_weight(ITERATIONS))})
    return MakespanModel(cost_model, machine).estimate(recorder, THREADS).speedup


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_bench_schedule_partitioning(benchmark, schedule):
    """Time producing a full partition with each scheduler."""
    scheduler = make_scheduler(schedule, chunk=4)

    def partition():
        return [list(scheduler.chunks_for(t, THREADS, 0, ITERATIONS, 1)) for t in range(THREADS)]

    chunks = benchmark(partition)
    if schedule in ("staticBlock", "staticCyclic"):
        # Static schedules partition the range across threads exactly once.
        executed = sorted(i for per_thread in chunks for chunk in per_thread for i in chunk.indices())
        assert executed == list(range(ITERATIONS))
    else:
        # Dynamic/guided claims are per-consumer here (fresh shared state per
        # call), so each consumer covers the whole range exactly once.
        for per_thread in chunks:
            executed = sorted(i for chunk in per_thread for i in chunk.indices())
            assert executed == list(range(ITERATIONS))


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_bench_schedule_end_to_end(benchmark, schedule):
    """Time a traced parallel region using each schedule."""
    recorder = benchmark(_trace_schedule, schedule)
    assert recorder.events()


def test_cyclic_balances_triangular_loops_better_than_block():
    """The design choice the paper makes for MolDyn: cyclic > block on triangular loops."""
    block = _modelled_speedup(_trace_schedule("staticBlock"))
    cyclic = _modelled_speedup(_trace_schedule("staticCyclic"))
    dynamic = _modelled_speedup(_trace_schedule("dynamic"))
    assert cyclic > block
    assert dynamic > block
