"""Backend comparison: serial vs threads vs processes vs subinterp wall-clock.

Runs the shared-memory-ported JGF kernels (Series, Crypt, SOR, Sparse)
through ``parallel_region`` on each execution backend and reports wall-clock
times and speedups over the serial backend — the repo's *hardware-true*
numbers, as opposed to the calibrated :mod:`repro.perf` model.

Two knobs shape the comparison:

* **backend** — ``serial`` / ``threads`` / ``processes`` / ``subinterp``.
  Rows for backends that cannot run here (no fork, no usable interpreters
  module) are reported as unavailable rather than silently dropped.
* **kernel path** — ``python`` (the paper-faithful pure-Python chunk bodies)
  or ``vector`` (numpy chunk bodies that release the GIL; Series, SOR and
  Sparse only).  ``--mode full`` measures both paths.

How to read the numbers honestly:

* ``threads`` — on a regular GIL build, little to no speedup for the
  pure-Python bodies (the GIL serialises the bytecode); the *vector* bodies
  can scale because numpy releases the GIL inside the chunk.  On a
  free-threaded build (PEP 703) the python bodies scale too — the report
  prints the live GIL state rather than assuming.
* ``processes`` / ``subinterp`` — genuine multi-core execution, *bounded by
  the cores the OS grants this process*.  On a 1-core container no backend
  can beat serial no matter how many workers are configured; the detected
  core count is printed with every report.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py --mode full --size small --workers 4 --json

The per-kernel validation column compares each run's checksum against the
sequential kernel *on the same kernel path*; a mismatch is reported and the
exit code is non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass

from repro.jgf.common import values_match
from repro.jgf.crypt import parallel as crypt
from repro.jgf.series import parallel as series
from repro.jgf.sor import parallel as sor
from repro.jgf.sparse import parallel as sparse
from repro.runtime import shm
from repro.runtime.backend import backend_by_name, free_threaded_build, gil_enabled

#: bumped whenever the JSON payload shape changes (scripts/check_bench.py
#: validates against this).
SCHEMA_VERSION = 2

KERNELS = {
    "series": series,
    "crypt": crypt,
    "sor": sor,
    "sparse": sparse,
}

#: kernels whose drivers accept a ``kernel="vector"`` path
VECTOR_KERNELS = frozenset({"series", "sor", "sparse"})

BACKENDS = ("serial", "threads", "processes", "subinterp")


@dataclass
class Measurement:
    kernel: str
    backend: str
    kernel_path: str
    workers: int
    seconds: float
    speedup_vs_serial: float
    value: float
    valid: bool


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _backend_available(name: str) -> bool:
    if name == "processes":
        return shm.fork_available()
    if name == "subinterp":
        from repro.runtime.subinterp import subinterpreters_available

        return subinterpreters_available()
    return True


def backend_rows() -> dict[str, dict]:
    """Availability and capability facts per backend (for the JSON payload)."""
    rows: dict[str, dict] = {}
    for name in BACKENDS:
        backend = backend_by_name(name)
        rows[name] = {
            "available": _backend_available(name),
            "true_parallel": bool(backend.true_parallel),
            "spinup_cost_scale": float(backend.spinup_cost_scale),
        }
    return rows


def run_kernel(name: str, size: str, workers: int, repeat: int, kernel_path: str) -> list[Measurement]:
    """Measure one kernel × kernel-path across all available backends.

    Best-of-``repeat`` wall clock; speedups are relative to the *serial
    backend on the same kernel path*, so a vector speedup never hides behind
    the vector-vs-python sequential gain.
    """
    module = KERNELS[name]
    path_kwargs = {"kernel": kernel_path} if name in VECTOR_KERNELS else {}
    reference = module.run_sequential(size, **path_kwargs)
    measurements: list[Measurement] = []
    serial_time: float | None = None
    for backend in BACKENDS:
        if not _backend_available(backend):
            continue
        best: float | None = None
        value = None
        valid = True
        for _ in range(repeat):
            result = module.run_backend(size, num_threads=workers, backend=backend, **path_kwargs)
            value = result.value
            valid = valid and values_match(result.value, reference.value, tolerance=1e-8)
            best = result.elapsed if best is None else min(best, result.elapsed)
        assert best is not None
        if backend == "serial":
            serial_time = best
        speedup = (serial_time / best) if serial_time else float("nan")
        measurements.append(
            Measurement(
                kernel=module.INFO.name,
                backend=backend,
                kernel_path=kernel_path if name in VECTOR_KERNELS else "python",
                workers=workers if backend != "serial" else 1,
                seconds=best,
                speedup_vs_serial=speedup,
                value=float(value),
                valid=valid,
            )
        )
    return measurements


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--size", default="small", help="problem size name (tiny|small|a)")
    parser.add_argument("--workers", type=int, default=4, help="team size for parallel backends")
    parser.add_argument("--repeat", type=int, default=3, help="repetitions per cell (best is kept)")
    parser.add_argument("--kernels", nargs="*", default=list(KERNELS), choices=list(KERNELS))
    parser.add_argument(
        "--mode",
        choices=("smoke", "full"),
        default="smoke",
        help="smoke: python kernel path only; full: python and vector paths",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    cores = _available_cores()
    paths = ("python", "vector") if args.mode == "full" else ("python",)
    rows: list[Measurement] = []
    started = time.perf_counter()
    for name in args.kernels:
        for path in paths:
            if path == "vector" and name not in VECTOR_KERNELS:
                continue
            rows.extend(run_kernel(name, args.size, args.workers, args.repeat, path))
    total = time.perf_counter() - started

    # Keep the persistent pool from outliving the report.
    backend_by_name("processes").shutdown()

    backends = backend_rows()
    if args.json:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "mode": args.mode,
            "size": args.size,
            "workers": args.workers,
            "repeat": args.repeat,
            "available_cores": cores,
            "free_threaded_build": free_threaded_build(),
            "gil_enabled": gil_enabled(),
            "backends": backends,
            "measurements": [asdict(row) for row in rows],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"Backend comparison — size={args.size}, workers={args.workers}, mode={args.mode}, "
            f"best of {args.repeat}, {cores} core(s) available to this process"
        )
        print(f"free-threaded build: {free_threaded_build()}, GIL enabled: {gil_enabled()}")
        unavailable = [name for name, info in backends.items() if not info["available"]]
        if unavailable:
            print(f"unavailable backends (skipped): {', '.join(unavailable)}")
        print(
            f"{'kernel':<8} {'path':<7} {'backend':<10} {'workers':>7} "
            f"{'seconds':>10} {'speedup':>9} {'valid':>6}"
        )
        for row in rows:
            print(
                f"{row.kernel:<8} {row.kernel_path:<7} {row.backend:<10} {row.workers:>7} "
                f"{row.seconds:>10.4f} {row.speedup_vs_serial:>8.2f}x {str(row.valid):>6}"
            )
        print(f"total benchmark time: {total:.1f}s")
        if cores < 2:
            print(
                "note: only one core is available; no parallel backend can "
                "outrun serial here — run on a multi-core host for real speedups."
            )

    return 0 if all(row.valid for row in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
