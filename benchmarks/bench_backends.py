"""Backend comparison: serial vs threads vs processes wall-clock.

Runs the shared-memory-ported JGF kernels (Series, Crypt, SOR) through
``parallel_region`` on each execution backend and reports wall-clock times
and speedups over the serial backend — the repo's first *hardware-true*
numbers, as opposed to the calibrated :mod:`repro.perf` model.

What to expect:

* ``threads`` — little to no speedup for these pure-Python kernels: the GIL
  serialises the bytecode even though the loop chunks run on real OS
  threads.  (SOR's numpy row updates release the GIL briefly, so it can see
  a modest gain.)
* ``processes`` — genuine multi-core speedup, *bounded by the cores the OS
  grants this process*.  On a 1-core container the process backend cannot
  beat serial no matter how many workers are configured; the report prints
  the detected core count so the numbers can be read honestly.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py --size small --workers 4 --repeat 3 --json

The per-kernel validation column compares each backend's checksum against
the sequential kernel; a mismatch is reported and the exit code is non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass

from repro.jgf.common import values_match
from repro.jgf.crypt import parallel as crypt
from repro.jgf.series import parallel as series
from repro.jgf.sor import parallel as sor
from repro.runtime.backend import backend_by_name

KERNELS = {
    "series": series,
    "crypt": crypt,
    "sor": sor,
}

BACKENDS = ("serial", "threads", "processes")


@dataclass
class Measurement:
    kernel: str
    backend: str
    workers: int
    seconds: float
    speedup_vs_serial: float
    value: float
    valid: bool


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_kernel(name: str, size: str, workers: int, repeat: int) -> list[Measurement]:
    """Measure one kernel across all backends; best-of-``repeat`` wall clock."""
    module = KERNELS[name]
    reference = module.run_sequential(size)
    measurements: list[Measurement] = []
    serial_time: float | None = None
    for backend in BACKENDS:
        best: float | None = None
        value = None
        valid = True
        for _ in range(repeat):
            result = module.run_backend(size, num_threads=workers, backend=backend)
            value = result.value
            valid = valid and values_match(result.value, reference.value, tolerance=1e-8)
            best = result.elapsed if best is None else min(best, result.elapsed)
        assert best is not None
        if backend == "serial":
            serial_time = best
        speedup = (serial_time / best) if serial_time else float("nan")
        measurements.append(
            Measurement(
                kernel=module.INFO.name,
                backend=backend,
                workers=workers if backend != "serial" else 1,
                seconds=best,
                speedup_vs_serial=speedup,
                value=float(value),
                valid=valid,
            )
        )
    return measurements


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--size", default="small", help="problem size name (tiny|small|a)")
    parser.add_argument("--workers", type=int, default=4, help="team size for threads/processes")
    parser.add_argument("--repeat", type=int, default=3, help="repetitions per cell (best is kept)")
    parser.add_argument("--kernels", nargs="*", default=list(KERNELS), choices=list(KERNELS))
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    cores = _available_cores()
    rows: list[Measurement] = []
    started = time.perf_counter()
    for name in args.kernels:
        rows.extend(run_kernel(name, args.size, args.workers, args.repeat))
    total = time.perf_counter() - started

    # Keep the persistent pool from outliving the report.
    backend_by_name("processes").shutdown()

    if args.json:
        payload = {
            "size": args.size,
            "workers": args.workers,
            "repeat": args.repeat,
            "available_cores": cores,
            "measurements": [asdict(row) for row in rows],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"Backend comparison — size={args.size}, workers={args.workers}, "
              f"best of {args.repeat}, {cores} core(s) available to this process")
        print(f"{'kernel':<8} {'backend':<10} {'workers':>7} {'seconds':>10} {'speedup':>9} {'valid':>6}")
        for row in rows:
            print(
                f"{row.kernel:<8} {row.backend:<10} {row.workers:>7} "
                f"{row.seconds:>10.4f} {row.speedup_vs_serial:>8.2f}x {str(row.valid):>6}"
            )
        print(f"total benchmark time: {total:.1f}s")
        if cores < 2:
            print(
                "note: only one core is available; the process backend cannot "
                "outrun serial here — run on a multi-core host for real speedups."
            )

    return 0 if all(row.valid for row in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
