"""Figure 13 benchmark harness.

Regenerates the paper's Figure 13 (speedup of the JGF-MT and AOmp versions of
eight JGF benchmarks on the two modelled machines) and, under
pytest-benchmark, times the AOmp execution of every kernel so regressions in
the weaving/runtime path show up as wall-clock changes.

Run with ``pytest benchmarks/bench_figure13.py --benchmark-only``; print the
full figure with ``python -m repro.experiments.figure13``.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure13
from repro.jgf import BENCHMARKS

#: Size used for the timed kernels: small enough for a benchmark session,
#: large enough that per-chunk work dominates the weaving overhead.
BENCH_SIZE = "tiny"
BENCH_THREADS = 4


@pytest.fixture(scope="module")
def figure13_report():
    """The Figure 13 report computed once per benchmark session (tiny size)."""
    return figure13.run(size="tiny", benchmarks=["Series", "SOR", "MolDyn"])


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_bench_aomp_kernel(benchmark, name):
    """Time the AOmp (aspect-woven) execution of each JGF kernel."""
    module = BENCHMARKS[name]
    result = benchmark(module.run_aomp, BENCH_SIZE, BENCH_THREADS)
    assert result.value is not None


@pytest.mark.parametrize("name", ["Series", "Crypt", "SOR"])
def test_bench_sequential_kernel(benchmark, name):
    """Time the sequential base programs (the denominator of every speedup)."""
    module = BENCHMARKS[name]
    result = benchmark(module.run_sequential, BENCH_SIZE)
    assert result.value is not None


def test_bench_figure13_rows(benchmark, figure13_report):
    """Reproduce the Figure 13 rows and check the paper's two claims on them."""

    def summarise():
        rows = {}
        for bench in figure13_report.benchmarks():
            rows[bench] = {
                configuration: figure13_report.speedup(configuration, bench)
                for configuration in figure13_report.configurations()
            }
        return rows

    rows = benchmark(summarise)
    for bench, row in rows.items():
        for machine_key in ("i7-8threads", "xeon-24threads"):
            jgf = row[f"JGF {machine_key}"]
            aomp = row[f"AOmp {machine_key}"]
            # Claim 1: the AOmp version tracks the hand-written JGF version.
            assert aomp <= jgf and (jgf - aomp) / jgf < 0.10
    # Claim 2: the embarrassingly parallel kernel out-scales the memory-bound one.
    assert rows["Series"]["JGF xeon-24threads"] > rows["SOR"]["JGF xeon-24threads"]
