"""Task-runtime overhead benchmark — spawn, steal and taskloop dispatch.

Companion to ``bench_overhead.py`` for the task subsystem: measures, with
tracing disabled, what the work-stealing runtime costs **on top of** a
hand-rolled baseline:

* ``task_spawn``        — ``TaskPool.spawn`` + ``task_wait`` of no-op tasks on
  a team pool, vs a hand-rolled executor (append closures to a list, run
  them in a loop — the cheapest possible deferred execution);
* ``taskloop_dispatch`` — per-task cost of ``run_taskloop`` with
  ``grainsize=1``, vs calling the loop body directly the same number of
  times.  The harness runs as member 0 of a 2-member team, so half the
  tiles are claimed locally and half are *stolen* from the absent member's
  deck — the reported overhead therefore prices spawn **and** steal, which
  is the repo's headline number for the task runtime (target: ≤ 2 µs/task
  on the threads backend);
* ``steal_claim``       — the raw claim paths of the taskloop deck (local
  pop vs cross-member steal), isolating the stealing cost itself;
* ``dependency_chain``  — spawn-to-completion latency of a chain of
  ``depends``-linked tasks on the executor pool (informational: includes
  real thread hand-offs).

Usage::

    PYTHONPATH=src python benchmarks/bench_tasks.py                    # table
    PYTHONPATH=src python benchmarks/bench_tasks.py --mode smoke       # CI smoke
    PYTHONPATH=src python benchmarks/bench_tasks.py --json             # JSON
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.runtime import context as ctx
from repro.runtime.config import config_override
from repro.runtime.tasks import TaskPool, _HeapTaskLoopState, run_taskloop
from repro.runtime.team import Team

SCHEMA_VERSION = 1


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    """Run ``fn`` (returning elapsed seconds) ``repeats`` times, keep the minimum."""
    return min(fn() for _ in range(max(1, repeats)))


class _CountingBody:
    """Loop body that only counts invocations (one call per executed tile)."""

    __slots__ = ("calls",)

    def __init__(self) -> None:
        self.calls = 0

    def __call__(self, start: int, end: int, step: int) -> None:
        self.calls += 1


def _noop() -> None:
    return None


# ---------------------------------------------------------------------------
# task spawn + wait (team pool, deterministic single-member execution)
# ---------------------------------------------------------------------------


def measure_task_spawn(tasks: int, repeats: int) -> dict[str, float]:
    """``spawn``+``task_wait`` per no-op task vs a hand-rolled deferred list."""

    def aomp() -> float:
        team = Team(2, name="bench-tasks")
        frame = ctx.ExecutionContext(team=team, thread_id=0, nesting_level=0)
        ctx.push_context(frame)
        try:
            pool = TaskPool.for_team(team)
            start = time.perf_counter()
            for _ in range(tasks):
                pool.spawn(_noop)
            pool.wait_all()
            return time.perf_counter() - start
        finally:
            ctx.pop_context()

    def baseline() -> float:
        start = time.perf_counter()
        queued: list[Callable[[], None]] = []
        for _ in range(tasks):
            queued.append(_noop)
        for fn in queued:
            fn()
        return time.perf_counter() - start

    best = _best_of(repeats, aomp)
    base = _best_of(repeats, baseline)
    return {
        "tasks": tasks,
        "seconds_total": best,
        "baseline_seconds_total": base,
        "overhead_seconds_per_task": max(0.0, (best - base) / tasks),
    }


# ---------------------------------------------------------------------------
# taskloop dispatch (the headline spawn+steal number)
# ---------------------------------------------------------------------------


def measure_taskloop_dispatch(iterations: int, repeats: int) -> dict[str, float]:
    """Per-task cost of a grainsize-1 taskloop where half the tiles are stolen."""

    def once() -> tuple[float, int]:
        team = Team(2, name="bench-taskloop")
        frame = ctx.ExecutionContext(team=team, thread_id=0, nesting_level=0)
        body = _CountingBody()
        ctx.push_context(frame)
        try:
            start = time.perf_counter()
            run_taskloop(body, 0, iterations, 1, grainsize=1, nowait=True)
            return time.perf_counter() - start, body.calls
        finally:
            ctx.pop_context()

    best: float | None = None
    ntasks = 0
    for _ in range(max(1, repeats)):
        elapsed, ntasks = once()
        best = elapsed if best is None else min(best, elapsed)
    assert best is not None and ntasks == iterations

    body = _CountingBody()

    def bare() -> float:
        start = time.perf_counter()
        for i in range(iterations):
            body(i, i + 1, 1)
        return time.perf_counter() - start

    base = _best_of(repeats, bare)
    return {
        "iterations": iterations,
        "tasks": ntasks,
        "seconds_total": best,
        "baseline_seconds_total": base,
        "overhead_seconds_per_task": max(0.0, (best - base) / ntasks),
    }


def measure_steal_claim(tiles: int, repeats: int) -> dict[str, float]:
    """Raw deck claims: local pops vs cross-member steals, per claim."""

    def local() -> float:
        state = _HeapTaskLoopState(1, tiles)
        start = time.perf_counter()
        while state.claim_local(0) is not None:
            pass
        return time.perf_counter() - start

    def steal() -> float:
        # Two-member deck, the claimer owns nothing: every claim is a steal.
        state = _HeapTaskLoopState(2, 2 * tiles)
        while state.claim_local(0) is not None:
            pass
        start = time.perf_counter()
        while state.claim_steal(0) is not None:
            pass
        return time.perf_counter() - start

    local_best = _best_of(repeats, local)
    steal_best = _best_of(repeats, steal)
    return {
        "tiles": tiles,
        "seconds_per_local_claim": local_best / tiles,
        "seconds_per_steal": steal_best / tiles,
    }


# ---------------------------------------------------------------------------
# dependency chain (executor pool, informational)
# ---------------------------------------------------------------------------


def measure_dependency_chain(length: int, repeats: int) -> dict[str, float]:
    """Spawn-to-completion latency of a ``depends``-linked chain of no-ops."""

    def once() -> float:
        pool = TaskPool(workers=2, name="bench-deps")
        try:
            start = time.perf_counter()
            handle = pool.spawn(_noop)
            for _ in range(length - 1):
                handle = pool.spawn(_noop, depends=[handle])
            handle.join(timeout=60.0)
            return time.perf_counter() - start
        finally:
            pool.shutdown()

    best = _best_of(repeats, once)
    return {"length": length, "seconds_per_task": best / length}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


#: measurement sizes per mode: (spawned tasks, taskloop iterations, steal
#: tiles, dependency-chain length, repeats).  Fixed — runs are deterministic
#: in shape.
MODES = {
    "full": (20_000, 20_000, 20_000, 400, 5),
    "quick": (4_000, 4_000, 4_000, 100, 2),
    "smoke": (400, 400, 400, 20, 1),  # schema/plumbing check only
}


def run_suite(*, mode: str = "full") -> dict[str, Any]:
    """Run every measurement with tracing disabled; return the metrics payload."""
    tasks, iters, tiles, chain, repeats = MODES[mode]

    with config_override(tracing=False):
        metrics = {
            "task_spawn": measure_task_spawn(tasks, repeats),
            "taskloop_dispatch": measure_taskloop_dispatch(iters, repeats),
            "steal_claim": measure_steal_claim(tiles, repeats),
            "dependency_chain": measure_dependency_chain(chain, repeats),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_tasks.py",
        "mode": mode,
        "python": platform.python_version(),
        "tracing": False,
        "metrics": metrics,
    }


def _format_table(payload: dict[str, Any]) -> str:
    m = payload["metrics"]
    spawn = m["task_spawn"]
    loop = m["taskloop_dispatch"]
    claims = m["steal_claim"]
    chain = m["dependency_chain"]
    return "\n".join(
        [
            f"Task-runtime overhead — mode={payload['mode']}, tracing off, Python {payload['python']}",
            f"{'measurement':<34} {'overhead':>14}",
            f"{'task spawn+wait':<34} {spawn['overhead_seconds_per_task'] * 1e6:>11.3f} us/task",
            f"{'taskloop dispatch (incl. steal)':<34} {loop['overhead_seconds_per_task'] * 1e6:>11.3f} us/task"
            f"   ({loop['tasks']} tasks)",
            f"{'deck local claim':<34} {claims['seconds_per_local_claim'] * 1e6:>11.3f} us",
            f"{'deck steal':<34} {claims['seconds_per_steal'] * 1e6:>11.3f} us",
            f"{'dependency chain (2 workers)':<34} {chain['seconds_per_task'] * 1e6:>11.3f} us/task",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--mode",
        choices=sorted(MODES),
        default="full",
        help="measurement sizes: full (default), quick (CI), smoke (plumbing check)",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON to stdout")
    parser.add_argument("--output", type=Path, default=None, help="write the payload to a JSON file")
    args = parser.parse_args(argv)

    current = run_suite(mode=args.mode)

    if args.output is not None:
        args.output.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)

    if args.json:
        print(json.dumps(current, indent=2))
    else:
        print(_format_table(current))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
