"""Figure 15 benchmark harness.

Regenerates the paper's Figure 15 (MolDyn parallelisation strategies across
particle counts and thread counts) and times the executed MolDyn strategy
variants at a small particle count, so the cost of the three aspect bundles
(thread-local + reduce, critical, per-particle locks) can be compared
directly.

Run with ``pytest benchmarks/bench_figure15.py --benchmark-only``; print the
full figure with ``python -m repro.experiments.figure15``.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure15
from repro.jgf.moldyn import fcc_particle_count, run_variant

PARTICLES = fcc_particle_count(3)  # 108 particles: enough to exercise every code path
THREADS = 4


@pytest.fixture(scope="module")
def figure15_report():
    calibration = figure15.calibrate(neighbour_sample_particles=256)
    return figure15.run(calibration=calibration)


@pytest.mark.parametrize("strategy", figure15.STRATEGIES)
def test_bench_moldyn_strategy_execution(benchmark, strategy):
    """Time the real execution of each Figure 15 strategy at a small size."""
    lock_mode = "exact" if strategy == "locks" else "modelled"
    _, value = benchmark(run_variant, strategy, PARTICLES, num_threads=THREADS, moves=1, lock_mode=lock_mode)
    assert value is not None


def test_bench_figure15_model(benchmark, figure15_report):
    """Time the analytic sweep and check the paper's two qualitative claims."""

    def collect():
        return {
            (entry["strategy"], entry["threads"], entry["particles"]): entry["speedup"]
            for entry in figure15_report.entries
        }

    speedups = benchmark(collect)
    # Claim 1: per-particle locks beat the JGF thread-local variant at 12 threads (largest sizes).
    assert speedups[("locks", 12, 500_000)] > speedups[("jgf", 12, 500_000)]
    # Claim 2: the critical-region variant is the best strategy at 500k particles with 4 threads.
    assert speedups[("critical", 4, 500_000)] >= speedups[("jgf", 4, 500_000)]
    assert speedups[("critical", 4, 500_000)] >= speedups[("locks", 4, 500_000)]
