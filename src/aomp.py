"""``aomp`` — the user-facing observability facade for PyAOmpLib.

The runtime's metrics live in :mod:`repro.obs`; this module is the short
import path the README and tooling use::

    import aomp
    snap = aomp.stats()                  # nested dict snapshot
    text = aomp.render_prometheus()      # text-format 0.0.4 exposition

Metrics collection is off by default; enable it with ``AOMP_METRICS=1`` (or
``config_override(metrics=True)``).  Set ``AOMP_METRICS_PORT`` to serve the
Prometheus rendering over stdlib HTTP — ``scripts/aomp_top.py`` consumes
that endpoint for a live terminal view.
"""

from __future__ import annotations

from repro.obs.exposition import (
    CONTENT_TYPE,
    ensure_exporter,
    exporter_port,
    render_prometheus,
    stats,
    stop_exporter,
)
from repro.obs.registry import (
    get_registry,
    metrics_enabled,
    reset,
)

__all__ = [
    "CONTENT_TYPE",
    "ensure_exporter",
    "exporter_port",
    "get_registry",
    "metrics_enabled",
    "render_prometheus",
    "reset",
    "stats",
    "stop_exporter",
]
