"""Persistent storage for adaptive-scheduling decisions.

Converged tunings are written to a small JSON document so a warmed process
(or a worker process forked before any tuning happened) starts from the
previous run's decisions instead of re-exploring.  The file is advisory: a
missing, unreadable or schema-incompatible cache is treated as empty, and
writes are atomic (temp file + ``os.replace``) so a crashed writer can never
leave a truncated document behind.

Document schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "generated_by": "repro.tune",
      "sites": {
        "MolDyn.compute_forces|11|4": {
          "schedule": "static_cyclic",   # Schedule value, or "serial"
          "chunk": 1,
          "serial": false,
          "best_seconds": 0.0123,
          "invocations": 9
        },
        ...
      }
    }

Site keys are ``loop-name|trip-count-bucket|team-size`` — the same key the
in-memory tuner uses (:class:`repro.tune.tuner.SiteKey`).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

SCHEMA_VERSION = 1


def load_cache(path: "str | os.PathLike | None") -> dict[str, dict[str, Any]]:
    """Read the cached site entries, or ``{}`` for missing/invalid documents."""
    if path is None:
        return {}
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(document, dict) or document.get("schema_version") != SCHEMA_VERSION:
        return {}
    sites = document.get("sites")
    if not isinstance(sites, dict):
        return {}
    entries: dict[str, dict[str, Any]] = {}
    for key, entry in sites.items():
        if isinstance(key, str) and isinstance(entry, dict) and "schedule" in entry:
            entries[key] = dict(entry)
    return entries


def save_cache(path: "str | os.PathLike", sites: Mapping[str, Mapping[str, Any]]) -> None:
    """Atomically write the site entries to ``path`` (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "repro.tune",
        "sites": {key: dict(entry) for key, entry in sites.items()},
    }
    fd, temp_name = tempfile.mkstemp(dir=target.parent, prefix=target.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
