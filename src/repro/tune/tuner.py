"""Per-loop-site adaptive schedule tuning (``schedule="auto"``).

The tuner is the runtime's answer to ``OMP_SCHEDULE=auto``: instead of the
programmer hand-picking a schedule and chunk size per loop, each *tune site*
— a work-shared loop identified by its name and a trip-count bucket —
measures successive invocations under a small set of candidate schedules and
converges on the fastest one.

How a site evolves
------------------

1. **Probe** — the first invocation runs ``static_block`` and measures the
   loop's wall time (master's dispatch + implicit barrier ≈ the loop phase
   makespan).  If that time is below the serial cutoff — the loop is too
   small to amortise the *measured team spin-up cost* (see
   :attr:`repro.perf.cost.CostModel.team_spinup_seconds`) — the site
   converges immediately to the **serial fallback**: the master executes the
   whole range and the other members skip straight to the barrier.
2. **Explore** — otherwise each candidate in
   {static_block, static_cyclic, dynamic, guided} × chunk sizes is measured
   ``samples_per_candidate`` times (minimum kept, which filters scheduling
   jitter).
3. **Converged** — the fastest candidate wins and is used from then on.
   Every converged observation is drift-checked: if the measured time
   exceeds the converged best by ``drift_tolerance`` for ``drift_patience``
   consecutive invocations, the site re-enters exploration (the workload
   changed shape under the same trip count).  A *trip-count* regime change
   (different power-of-two bucket) maps to a different site altogether, so
   re-exploration there is automatic.

Decisions persist to a JSON cache (``AOMP_TUNE_CACHE``; see
:mod:`repro.tune.cache`), so a warmed process starts converged — and worker
processes forked before any tuning happened seed themselves from the same
file.  Every decision the runtime acts on is recorded as a ``TUNE_DECISION``
trace event by the work-sharing executor.

The tuner does not execute anything itself: it maps ``(site, invocation)``
to a :class:`Candidate` and consumes wall-time observations.  It does know
the *identity and spin-up cost* of the backend running each site (sites are
keyed per backend, and the serial cutoff scales with
:attr:`repro.runtime.backend.Backend.spinup_cost_scale`) — a loop tuned
under GIL-bound threads must not dictate the plan for the same loop under
processes or subinterpreters.  Cross-member agreement is the work-sharing
executor's job
(team shared slots in-process, the shm plan-publication arena for process
teams — see :func:`repro.runtime.worksharing.run_for`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Mapping

from repro.runtime.config import get_config
from repro.runtime.scheduler import Schedule
from repro.tune.cache import load_cache, save_cache

def _default_team_spinup_seconds() -> float:
    """The un-calibrated team spin-up estimate.

    Single source of truth is :attr:`repro.perf.cost.CostModel.team_spinup_seconds`
    (whose default matches the committed ``region_spawn`` benchmark's order of
    magnitude); imported lazily so the tune package stays importable without
    pulling in the whole perf package at module-import time.
    """
    from repro.perf.cost import CostModel

    return CostModel.team_spinup_seconds

#: Integer codes for shm plan publication (``repro.runtime.shm.TunePlanArena``
#: slots carry (schedule_code, chunk, flags)).
_SCHEDULE_CODES: dict[Schedule, int] = {
    Schedule.STATIC_BLOCK: 0,
    Schedule.STATIC_CYCLIC: 1,
    Schedule.DYNAMIC: 2,
    Schedule.GUIDED: 3,
}
_CODE_SCHEDULES = {code: schedule for schedule, code in _SCHEDULE_CODES.items()}
_FLAG_SERIAL = 1


@dataclass(frozen=True, slots=True)
class Candidate:
    """One concrete scheduling choice the tuner can run a loop with."""

    schedule: Schedule
    chunk: int = 1
    #: serial fallback: the master executes the whole range, the team skips.
    serial: bool = False

    @property
    def label(self) -> str:
        if self.serial:
            return "serial"
        return f"{self.schedule.value},{self.chunk}"

    def encode(self) -> tuple[int, int, int]:
        """``(schedule_code, chunk, flags)`` for the shm plan slot."""
        return (
            _SCHEDULE_CODES[self.schedule],
            int(self.chunk),
            _FLAG_SERIAL if self.serial else 0,
        )

    @classmethod
    def decode(cls, schedule_code: int, chunk: int, flags: int) -> "Candidate":
        return cls(
            schedule=_CODE_SCHEDULES[int(schedule_code)],
            chunk=max(1, int(chunk)),
            serial=bool(flags & _FLAG_SERIAL),
        )


@dataclass(frozen=True, slots=True)
class SiteKey:
    """Identity of a tune site: loop name × trip-count bucket × team size.

    ``backend`` additionally separates sites by the backend that executes the
    team: a loop that converged to ``dynamic,64`` under threads may want the
    serial fallback under processes (the same trip count no longer amortises
    the spin-up), so decisions must not leak across backends.  Empty for
    callers that never learned the backend; the cache key then keeps the
    pre-backend format, so existing persisted caches stay valid.
    """

    loop: str
    bucket: int
    team: int
    backend: str = ""

    def cache_key(self) -> str:
        base = f"{self.loop}|{self.bucket}|{self.team}"
        return f"{base}|{self.backend}" if self.backend else base


def trip_bucket(total: int) -> int:
    """Power-of-two bucket of a trip count (1000 and 1023 share a bucket).

    Bucketing keeps jittery trip counts from fragmenting a site while making
    a genuine regime change (10^3 → 10^6 iterations) a *different* site that
    re-explores from scratch.
    """
    return int(total).bit_length()


def candidates_for(total: int, team: int) -> tuple[Candidate, ...]:
    """The candidate set searched for a loop of ``total`` iterations.

    Chunk sizes are derived from the per-member share so the dynamic
    candidates span "fine-grained, balances anything" to "coarse, near-zero
    claim traffic"; duplicates collapse for small loops.
    """
    per_member = max(1, total // max(1, team))
    seen: dict[tuple[Schedule, int], Candidate] = {}
    for candidate in (
        Candidate(Schedule.STATIC_BLOCK),
        Candidate(Schedule.STATIC_CYCLIC, 1),
        Candidate(Schedule.DYNAMIC, max(1, per_member // 16)),
        Candidate(Schedule.DYNAMIC, max(1, per_member // 4)),
        Candidate(Schedule.GUIDED, 1),
    ):
        seen.setdefault((candidate.schedule, candidate.chunk), candidate)
    return tuple(seen.values())


@dataclass(slots=True)
class TuneTicket:
    """One loop invocation's scheduling decision, to be observed after it ran."""

    site: "TuneSite"
    candidate: Candidate
    invocation: int
    phase: str  # "probe" | "explore" | "confirm" | "converged" | "serial"

    def encode(self) -> tuple[int, int, int]:
        return self.candidate.encode()


class TuneSite:
    """Tuning state for one ``(loop, trip-bucket, team-size)`` site."""

    __slots__ = (
        "key",
        "total_hint",
        "candidates",
        "samples",
        "counts",
        "invocations",
        "converged",
        "choice",
        "best_seconds",
        "probation",
        "drift_strikes",
        "reexplorations",
        "_samples_needed",
        "_serial_cutoff",
        "_drift_tolerance",
        "_drift_floor",
        "_drift_patience",
    )

    def __init__(
        self,
        key: SiteKey,
        total_hint: int,
        *,
        samples_per_candidate: int,
        serial_cutoff: float,
        drift_tolerance: float,
        drift_patience: int,
        drift_floor: float = 0.0,
        seeded: "Mapping[str, Any] | None" = None,
    ) -> None:
        self.key = key
        self.total_hint = total_hint
        self.candidates = candidates_for(total_hint, key.team)
        self.samples: dict[Candidate, float] = {}
        self.counts: dict[Candidate, int] = {}
        self.invocations = 0
        self.converged = False
        self.choice: Candidate | None = None
        self.best_seconds: float | None = None
        self.probation = False
        self.drift_strikes = 0
        self.reexplorations = 0
        self._samples_needed = max(1, samples_per_candidate)
        self._serial_cutoff = serial_cutoff
        self._drift_tolerance = drift_tolerance
        self._drift_floor = max(0.0, drift_floor)
        self._drift_patience = max(1, drift_patience)
        if seeded is not None:
            self._seed(seeded)

    # -- seeding from the persistent cache -----------------------------------

    def _seed(self, entry: Mapping[str, Any]) -> None:
        try:
            candidate = Candidate(
                schedule=Schedule.parse(entry["schedule"]) if not entry.get("serial") else Schedule.STATIC_BLOCK,
                chunk=max(1, int(entry.get("chunk", 1))),
                serial=bool(entry.get("serial", False)),
            )
            best = float(entry.get("best_seconds") or 0.0) or None
        except Exception:
            return  # malformed entry: start cold
        if not candidate.serial and Schedule.parse(entry["schedule"]) is Schedule.AUTO:
            return
        self.converged = True
        self.probation = True  # first live observation must confirm the cache
        self.choice = candidate
        self.best_seconds = best

    # -- decision / observation ------------------------------------------------

    def decide(self) -> TuneTicket:
        """Pick the candidate for the next invocation (tuner lock held)."""
        self.invocations += 1
        if self.converged:
            assert self.choice is not None
            phase = "serial" if self.choice.serial else ("confirm" if self.probation else "converged")
            return TuneTicket(self, self.choice, self.invocations, phase)
        if not self.counts:
            # First measured invocation: probe with the cheapest static plan
            # to learn the loop's scale before committing to a full search.
            return TuneTicket(self, self.candidates[0], self.invocations, "probe")
        pending = min(self.candidates, key=lambda c: self.counts.get(c, 0))
        return TuneTicket(self, pending, self.invocations, "explore")

    def observe(self, candidate: Candidate, elapsed: float, invocation: "int | None" = None) -> dict[str, Any]:
        """Feed one wall-time observation; returns the trace-event payload.

        ``invocation`` is the ticket's invocation number (decisions can be
        handed out ahead of their observations when members pipeline loop
        executions, so the site counter may already be further along).
        """
        elapsed = max(0.0, float(elapsed))
        transition: str | None = None
        if self.converged:
            if self.choice is not None and candidate == self.choice:
                transition = self._observe_converged(elapsed)
            else:
                # Observation of a *different* candidate than the converged
                # choice (a stale plan published by a forked worker): fold it
                # into the search statistics, but it cannot advance or
                # regress the converged state.
                self._record_sample(candidate, elapsed)
        else:
            transition = self._observe_exploring(candidate, elapsed)
        return self._payload(candidate, elapsed, transition, invocation)

    def _observe_converged(self, elapsed: float) -> "str | None":
        if self.probation:
            reference = self.best_seconds
            if reference is None or not self._drifted(elapsed, reference):
                self.probation = False
                self.best_seconds = min(elapsed, reference) if reference is not None else elapsed
                return "cache-confirmed"
            self._reset_search()
            return "cache-rejected"
        if self.best_seconds is None:
            # Serial convergence happens off the *parallel* probe measurement;
            # the first observation of the choice itself sets the baseline.
            self.best_seconds = elapsed
            return None
        if self._drifted(elapsed, self.best_seconds):
            self.drift_strikes += 1
            if self.drift_strikes >= self._drift_patience:
                self._reset_search()
                return "re-explore"
            return None
        self.drift_strikes = 0
        if elapsed < self.best_seconds:
            self.best_seconds = elapsed
        return None

    def _drifted(self, elapsed: float, reference: float) -> bool:
        """Whether ``elapsed`` is slow enough, relatively *and* absolutely, to
        suggest the workload changed shape under the converged choice."""
        return (
            elapsed > reference * self._drift_tolerance
            and elapsed > reference + self._drift_floor
        )

    def _observe_exploring(self, candidate: Candidate, elapsed: float) -> "str | None":
        probe = not self.counts
        self._record_sample(candidate, elapsed)
        if probe and elapsed <= self._serial_cutoff:
            # The whole loop finished within a few team spin-ups: parallel
            # dispatch cannot pay for itself, stop searching and serialise.
            self.converged = True
            self.probation = False
            self.choice = Candidate(Schedule.STATIC_BLOCK, 1, serial=True)
            # The probe measured *parallel* dispatch; the serial baseline is
            # set by the first observation of the serial fallback itself.
            self.best_seconds = None
            return "serial"
        if all(self.counts.get(c, 0) >= self._samples_needed for c in self.candidates):
            return self._converge()
        return None

    def _record_sample(self, candidate: Candidate, elapsed: float) -> None:
        self.counts[candidate] = self.counts.get(candidate, 0) + 1
        best = self.samples.get(candidate)
        if best is None or elapsed < best:
            self.samples[candidate] = elapsed

    def _converge(self) -> str:
        self.choice = min(self.candidates, key=lambda c: self.samples.get(c, float("inf")))
        self.best_seconds = self.samples[self.choice]
        self.converged = True
        self.probation = False
        self.drift_strikes = 0
        return "converged"

    def _reset_search(self) -> None:
        self.converged = False
        self.probation = False
        self.choice = None
        self.best_seconds = None
        self.drift_strikes = 0
        self.samples.clear()
        self.counts.clear()
        self.reexplorations += 1

    # -- serialisation ---------------------------------------------------------

    def cache_entry(self) -> "dict[str, Any] | None":
        if not self.converged or self.choice is None:
            return None
        return {
            "schedule": self.choice.schedule.value,
            "chunk": self.choice.chunk,
            "serial": self.choice.serial,
            "best_seconds": self.best_seconds,
            "invocations": self.invocations,
        }

    def _payload(
        self, candidate: Candidate, elapsed: float, transition: "str | None", invocation: "int | None" = None
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "loop": self.key.loop,
            "bucket": self.key.bucket,
            "team": self.key.team,
            "schedule": "serial" if candidate.serial else candidate.schedule.value,
            "chunk": candidate.chunk,
            "serial": candidate.serial,
            "invocation": invocation if invocation is not None else self.invocations,
            "elapsed": elapsed,
            "converged": self.converged,
        }
        if transition is not None:
            payload["transition"] = transition
        if self.converged and self.choice is not None:
            payload["best_schedule"] = "serial" if self.choice.serial else self.choice.schedule.value
            payload["best_chunk"] = self.choice.chunk
            payload["best_seconds"] = self.best_seconds
        return payload


@dataclass
class TunerConfig:
    """Knobs of the adaptive tuner (defaults fit sub-second loops)."""

    #: observations per candidate before converging (minimum kept).
    samples_per_candidate: int = 2
    #: converged observations beyond ``best * drift_tolerance`` count as drift.
    drift_tolerance: float = 2.5
    #: ... but only when also ``best + drift_floor_seconds`` slower: micro
    #: loops resolve single-digit microseconds at best, and a pure ratio test
    #: would re-explore on timer noise.
    drift_floor_seconds: float = 2.0e-3
    #: consecutive drifting observations before the site re-explores.
    drift_patience: int = 3
    #: serial fallback when the probe finishes within ``margin`` team spin-ups.
    serial_margin: float = 4.0
    #: cost model supplying the measured team spin-up (``None``: module default).
    cost_model: Any = None
    #: extra entries merged into the candidate search (tests/benchmarks).
    extra_candidates: tuple = ()

    def team_spinup_seconds(self) -> float:
        spinup = getattr(self.cost_model, "team_spinup_seconds", None)
        # `is not None`, not truthiness: a calibrated 0.0 means "spin-up is
        # negligible, never take the serial fallback" and must be honoured.
        return float(spinup) if spinup is not None else _default_team_spinup_seconds()

    def serial_cutoff(self) -> float:
        return self.team_spinup_seconds() * self.serial_margin


#: sentinel: "resolve the cache path from the runtime configuration".
_CONFIGURED = object()


class LoopTuner:
    """Process-wide registry of :class:`TuneSite` states.

    One tuner serves every ``schedule="auto"`` loop in the process; the
    work-sharing executor asks it for a :class:`TuneTicket` per invocation
    (:meth:`begin_invocation`) and feeds the measured wall time back
    (:meth:`observe`).  Thread-safe; the persistent cache is loaded lazily on
    first use and rewritten whenever a site (re)converges.
    """

    def __init__(self, config: TunerConfig | None = None, *, cache_path: Any = _CONFIGURED) -> None:
        self.config = config if config is not None else TunerConfig()
        self._explicit_cache_path = cache_path
        self._lock = threading.Lock()
        self._sites: dict[SiteKey, TuneSite] = {}
        self._cache_entries: "dict[str, dict[str, Any]] | None" = None
        self._cache_loaded_for: Any = None

    # -- cache -----------------------------------------------------------------

    @property
    def cache_path(self) -> "str | None":
        if self._explicit_cache_path is not _CONFIGURED:
            return self._explicit_cache_path
        return get_config().tune_cache

    def _entries(self) -> dict[str, dict[str, Any]]:
        # Re-read when the resolved path changed (config-driven paths are
        # live: a tuner first used before AOMP_TUNE_CACHE/config.tune_cache
        # was set must not latch the empty cache forever).
        path = self.cache_path
        if self._cache_entries is None or path != self._cache_loaded_for:
            self._cache_entries = load_cache(path)
            self._cache_loaded_for = path
        return self._cache_entries

    def _persist_locked(self) -> None:
        path = self.cache_path
        if path is None:
            return
        entries = dict(self._entries())
        for site in self._sites.values():
            entry = site.cache_entry()
            if entry is not None:
                entries[site.key.cache_key()] = entry
        try:
            save_cache(path, entries)
        except OSError:
            pass  # persistence is advisory; never fail the loop over it

    # -- sites -----------------------------------------------------------------

    def site(
        self, loop: str, total: int, team: int, *, backend: str = "", spinup_scale: float = 1.0
    ) -> TuneSite:
        """The tune site for ``loop`` at this trip-count bucket and team size.

        ``backend``/``spinup_scale`` carry the resolved execution backend's
        identity and relative team spin-up cost
        (:attr:`repro.runtime.backend.Backend.spinup_cost_scale`): sites are
        keyed per backend, and an expensive-to-start backend's serial-fallback
        cutoff scales up so small loops serialise sooner there.  The defaults
        preserve the historical backend-oblivious behaviour.
        """
        key = SiteKey(loop, trip_bucket(total), max(1, team), backend)
        with self._lock:
            return self._site_locked(key, total, spinup_scale=spinup_scale)

    def _site_locked(self, key: SiteKey, total: int, *, spinup_scale: float = 1.0) -> TuneSite:
        site = self._sites.get(key)
        if site is None:
            config = self.config
            site = TuneSite(
                key,
                total,
                samples_per_candidate=config.samples_per_candidate,
                serial_cutoff=config.serial_cutoff() * max(1.0, float(spinup_scale)),
                drift_tolerance=config.drift_tolerance,
                drift_patience=config.drift_patience,
                drift_floor=config.drift_floor_seconds,
                seeded=self._entries().get(key.cache_key()),
            )
            if config.extra_candidates:
                merged = dict.fromkeys(site.candidates)
                merged.update(dict.fromkeys(config.extra_candidates))
                site.candidates = tuple(merged)
            self._sites[key] = site
        return site

    def sites(self) -> list[TuneSite]:
        """Snapshot of every site (introspection/benchmarks)."""
        with self._lock:
            return list(self._sites.values())

    # -- the two calls the executor makes --------------------------------------

    def begin_invocation(
        self, loop: str, total: int, team: int, *, backend: str = "", spinup_scale: float = 1.0
    ) -> TuneTicket:
        """Decide the schedule for the next invocation of ``loop``.

        See :meth:`site` for the ``backend``/``spinup_scale`` semantics.
        """
        key = SiteKey(loop, trip_bucket(total), max(1, team), backend)
        with self._lock:
            return self._site_locked(key, total, spinup_scale=spinup_scale).decide()

    def observe(self, ticket: TuneTicket, elapsed: float) -> dict[str, Any]:
        """Feed a wall-time observation; returns the TUNE_DECISION payload.

        Persists the cache whenever the observation (re)converged the site.
        """
        with self._lock:
            was_converged = ticket.site.converged and not ticket.site.probation
            payload = ticket.site.observe(ticket.candidate, elapsed, ticket.invocation)
            if ticket.site.converged and (not was_converged or "transition" in payload):
                self._persist_locked()
        return payload

    def save(self) -> None:
        """Persist converged sites to the cache now (the service drain path)."""
        with self._lock:
            self._persist_locked()


# ---------------------------------------------------------------------------
# process-wide tuner
# ---------------------------------------------------------------------------

_global_lock = threading.Lock()
_global_tuner: LoopTuner | None = None


def get_tuner() -> LoopTuner:
    """The process-wide tuner serving every ``schedule="auto"`` loop."""
    global _global_tuner
    tuner = _global_tuner
    if tuner is None:
        with _global_lock:
            tuner = _global_tuner
            if tuner is None:
                tuner = _global_tuner = LoopTuner()
    return tuner


def set_tuner(tuner: "LoopTuner | None") -> "LoopTuner | None":
    """Install ``tuner`` as the process-wide tuner; returns the previous one."""
    global _global_tuner
    with _global_lock:
        previous, _global_tuner = _global_tuner, tuner
    return previous


def reset_tuner() -> None:
    """Drop the process-wide tuner (tests; a fresh one is created lazily)."""
    set_tuner(None)


class tuner_override:
    """Context manager running a block under a specific tuner instance."""

    def __init__(self, tuner: "LoopTuner | None") -> None:
        self._tuner = tuner
        self._previous: "LoopTuner | None" = None

    def __enter__(self) -> "LoopTuner | None":
        self._previous = set_tuner(self._tuner)
        return self._tuner

    def __exit__(self, *exc_info) -> None:
        set_tuner(self._previous)


# ---------------------------------------------------------------------------
# thread-scoped tuners (per-tenant caches under concurrent callers)
# ---------------------------------------------------------------------------

_scope_local = threading.local()


def scoped_tuner() -> "LoopTuner | None":
    """The calling thread's scoped tuner, if inside a :class:`tuner_scope`."""
    return getattr(_scope_local, "tuner", None)


def tuner_for_team(team: Any) -> LoopTuner:
    """The tuner serving ``team``'s ``schedule="auto"`` loops.

    Regions started under a :class:`tuner_scope` stamp the scoped tuner onto
    the team at creation (see ``_execute_region``), so *every* member — not
    just the thread that entered the scope — agrees on it; the in-process
    auto path lets the first arriver open the invocation, and that can be a
    worker thread.  Teams without a stamp use the process-wide tuner.
    """
    tuner = getattr(team, "tuner", None)
    return tuner if tuner is not None else get_tuner()


class tuner_scope:
    """Run a block under a tuner visible only to the *calling thread*.

    Unlike :class:`tuner_override`, which swaps the process-wide tuner and is
    therefore racy when several threads serve different tenants concurrently,
    this override is thread-local: the compute service's dispatch workers
    each enter the scope of their current tenant's tuner, and regions started
    on that thread (plus their teams, via the team stamp) tune against that
    tenant's cache without disturbing anyone else.  Nests: the innermost
    scope wins; ``None`` re-exposes the process-wide tuner.
    """

    def __init__(self, tuner: "LoopTuner | None") -> None:
        self._tuner = tuner
        self._previous: "LoopTuner | None" = None

    def __enter__(self) -> "LoopTuner | None":
        self._previous = getattr(_scope_local, "tuner", None)
        _scope_local.tuner = self._tuner
        return self._tuner

    def __exit__(self, *exc_info) -> None:
        _scope_local.tuner = self._previous
