"""Adaptive scheduling: the ``schedule="auto"`` tuner subsystem.

See :mod:`repro.tune.tuner` for the search/convergence model and
:mod:`repro.tune.cache` for the persistent decision cache
(``AOMP_TUNE_CACHE``).
"""

from repro.tune.cache import SCHEMA_VERSION, load_cache, save_cache
from repro.tune.tuner import (
    Candidate,
    LoopTuner,
    SiteKey,
    TuneSite,
    TuneTicket,
    TunerConfig,
    candidates_for,
    get_tuner,
    reset_tuner,
    scoped_tuner,
    set_tuner,
    trip_bucket,
    tuner_for_team,
    tuner_override,
    tuner_scope,
)

__all__ = [
    "SCHEMA_VERSION",
    "load_cache",
    "save_cache",
    "Candidate",
    "LoopTuner",
    "SiteKey",
    "TuneSite",
    "TuneTicket",
    "TunerConfig",
    "candidates_for",
    "get_tuner",
    "reset_tuner",
    "scoped_tuner",
    "set_tuner",
    "trip_bucket",
    "tuner_for_team",
    "tuner_override",
    "tuner_scope",
]
