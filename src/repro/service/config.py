"""Compute-service configuration: the ``AOMP_SERVICE_*`` environment contract.

Follows the same discipline as :mod:`repro.runtime.config`: every parser
rejects garbage *loudly*, naming the exact variable the user set — a typo'd
setting that silently does nothing is worse than a crash at startup.  All
variables are also overridable per :class:`ServiceConfig` instance, which is
what tests and embedded services use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace


def _default_service_host() -> str:
    """Bind address from ``AOMP_SERVICE_HOST`` (default loopback only)."""
    env = (os.environ.get("AOMP_SERVICE_HOST") or "").strip()
    return env or "127.0.0.1"


def _default_service_port() -> int:
    """Listen port from ``AOMP_SERVICE_PORT`` (0..65535; 0 = ephemeral)."""
    env = (os.environ.get("AOMP_SERVICE_PORT") or "").strip()
    if not env:
        return 0
    try:
        value = int(env)
    except ValueError:
        raise ValueError(f"AOMP_SERVICE_PORT must be an integer in 0..65535; got {env!r}") from None
    if not 0 <= value <= 65535:
        raise ValueError(f"AOMP_SERVICE_PORT must be an integer in 0..65535; got {env!r}")
    return value


def _default_service_workers() -> int:
    """Dispatch worker count from ``AOMP_SERVICE_WORKERS`` (int >= 1).

    Each dispatch worker owns a private warm backend (its own persistent
    process pool under the ``processes`` backend), so the default stays
    modest: enough for overlap, not enough to oversubscribe the host with
    ``workers x team_size`` processes.
    """
    env = (os.environ.get("AOMP_SERVICE_WORKERS") or "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"AOMP_SERVICE_WORKERS must be an integer >= 1; got {env!r}") from None
        if value < 1:
            raise ValueError(f"AOMP_SERVICE_WORKERS must be an integer >= 1; got {env!r}")
        return value
    return max(1, min(4, (os.cpu_count() or 2) // 2))


def _default_service_queue() -> int:
    """Admission queue bound from ``AOMP_SERVICE_QUEUE`` (int >= 1).

    Requests beyond this many *waiting* (running requests do not count) are
    rejected with ``queue_full`` — bounded queues are the backpressure story:
    reject early and cheaply instead of accepting work the service cannot
    start before the client gives up.
    """
    env = (os.environ.get("AOMP_SERVICE_QUEUE") or "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"AOMP_SERVICE_QUEUE must be an integer >= 1; got {env!r}") from None
        if value < 1:
            raise ValueError(f"AOMP_SERVICE_QUEUE must be an integer >= 1; got {env!r}")
        return value
    return 64


def _default_service_tenant_cap() -> int:
    """Per-tenant running-request cap from ``AOMP_SERVICE_TENANT_CAP`` (>= 1).

    A tenant at its cap keeps its queued requests waiting while other
    tenants' requests are dispatched past them — FIFO within a tenant,
    fair-share across tenants.
    """
    env = (os.environ.get("AOMP_SERVICE_TENANT_CAP") or "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"AOMP_SERVICE_TENANT_CAP must be an integer >= 1; got {env!r}") from None
        if value < 1:
            raise ValueError(f"AOMP_SERVICE_TENANT_CAP must be an integer >= 1; got {env!r}")
        return value
    return 2


def _default_service_backend() -> str:
    """Execution backend from ``AOMP_SERVICE_BACKEND``.

    Empty means "use the runtime default" (``AOMP_BACKEND``).  Like
    ``AOMP_BACKEND`` itself, validity is checked loudly at use by
    ``backend_by_name`` so plugin backends registered after import resolve.
    """
    env = (os.environ.get("AOMP_SERVICE_BACKEND") or "").strip().lower()
    return env


def _default_service_tune_dir() -> "str | None":
    """Directory for per-tenant tuner caches from ``AOMP_SERVICE_TUNE_DIR``.

    Unset disables persistent per-tenant caches (tenants still get isolated
    in-memory tuners).  Each tenant's cache lands in ``<dir>/<tenant>.json``
    — the per-request analogue of ``AOMP_TUNE_CACHE``.
    """
    env = (os.environ.get("AOMP_SERVICE_TUNE_DIR") or "").strip()
    return env or None


@dataclass(frozen=True)
class ServiceConfig:
    """Frozen snapshot of the compute service's settings."""

    host: str = field(default_factory=_default_service_host)
    port: int = field(default_factory=_default_service_port)
    workers: int = field(default_factory=_default_service_workers)
    queue_limit: int = field(default_factory=_default_service_queue)
    tenant_cap: int = field(default_factory=_default_service_tenant_cap)
    backend: str = field(default_factory=_default_service_backend)
    tune_dir: "str | None" = field(default_factory=_default_service_tune_dir)
    #: default team size per request (requests may override); 0 = runtime default.
    num_threads: int = 0
    #: seconds a drain waits for in-flight requests before cancelling them.
    drain_timeout: float = 30.0

    def with_overrides(self, **overrides) -> "ServiceConfig":
        return replace(self, **overrides)
