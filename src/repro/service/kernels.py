"""The servable kernel catalogue: what a compute-service request can run.

Each entry wraps one of the JGF ``run_backend`` drivers (the paper's SPMD
kernels, now invoked per-request instead of once per script) behind a
uniform call shape, plus a ``sleep`` kernel whose work-shared body is pure
waiting — the cancellation/drain tests need an in-flight region that is slow
on purpose but cheap to abort.

``deterministic`` marks kernels whose result is a pure function of
``(size,)`` — those are safe to coalesce: concurrent identical submissions
can share one execution and every follower receives the leader's result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.jgf.crypt import parallel as crypt
from repro.jgf.series import parallel as series
from repro.jgf.sor import parallel as sor
from repro.jgf.sparse import parallel as sparse
from repro.runtime.team import parallel_region
from repro.runtime.worksharing import run_for

#: one work-shared sleep slice (seconds).  Small enough that an aborted
#: region unwinds promptly — members notice the broken barrier at the next
#: chunk boundary.
SLEEP_SLICE = 0.02

SLEEP_SIZES = {"tiny": 4, "small": 25, "a": 250}


def _sleep_chunk(start: int, end: int, step: int) -> None:
    for _ in range(start, end, step):
        time.sleep(SLEEP_SLICE)


def _run_sleep(size: "str | int", num_threads: int, backend: str, on_failure: "str | None") -> "tuple[Any, float]":
    slices = SLEEP_SIZES[size] if isinstance(size, str) else int(size)

    def body() -> None:
        run_for(_sleep_chunk, 0, slices, 1, loop_name="service.sleep", schedule="dynamic", chunk=1)

    began = time.perf_counter()
    parallel_region(
        body,
        num_threads=num_threads,
        backend=backend,
        name="service.sleep",
        on_failure=on_failure,
    )
    return float(slices), time.perf_counter() - began


def _json_value(value: Any) -> Any:
    """A JSON-serialisable copy of a kernel's validation value."""
    if isinstance(value, (list, tuple)):
        return [_json_value(item) for item in value]
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    return float(value)


@dataclass(frozen=True)
class ServiceKernel:
    """One servable kernel: its metadata and the callable that runs it."""

    name: str
    description: str
    sizes: "tuple[str, ...]"
    #: result is a pure function of ``size`` — identical submissions may
    #: share one execution (request coalescing).
    deterministic: bool
    #: whether replaying the region is safe (forwarded recovery policies).
    retry_safe: bool
    _run: "Callable[[str | int, int, str, str | None], tuple[Any, float]]"
    _reference: "Callable[[str | int], Any]"

    def run(
        self,
        *,
        size: "str | int",
        num_threads: int,
        backend: str,
        on_failure: "str | None" = None,
    ) -> "dict[str, Any]":
        """Execute once; returns ``{"value": ..., "elapsed": seconds}``."""
        value, elapsed = self._run(size, num_threads, backend, on_failure)
        return {"value": _json_value(value), "elapsed": elapsed}

    def reference(self, size: "str | int") -> Any:
        """The serial result for ``size`` (validation oracle for tests)."""
        return _json_value(self._reference(size))

    def describe(self) -> "dict[str, Any]":
        return {
            "name": self.name,
            "description": self.description,
            "sizes": list(self.sizes),
            "deterministic": self.deterministic,
            "retry_safe": self.retry_safe,
        }


def _jgf(module, **kwargs) -> "Callable[[str | int, int, str, str | None], tuple[Any, float]]":
    def run(size: "str | int", num_threads: int, backend: str, on_failure: "str | None") -> "tuple[Any, float]":
        result = module.run_backend(size, num_threads=num_threads, backend=backend, on_failure=on_failure, **kwargs)
        return result.value, result.elapsed

    return run


KERNELS: "dict[str, ServiceKernel]" = {
    kernel.name: kernel
    for kernel in (
        ServiceKernel(
            name="series",
            description="JGF Fourier series coefficients (embarrassingly parallel rows).",
            sizes=tuple(series.SIZES),
            deterministic=True,
            retry_safe=True,
            _run=_jgf(series),
            _reference=lambda size: series.run_sequential(size).value,
        ),
        ServiceKernel(
            name="crypt",
            description="JGF IDEA encrypt/decrypt (process-safe body, exercises warm pools).",
            sizes=tuple(crypt.SIZES),
            deterministic=True,
            retry_safe=True,
            _run=_jgf(crypt),
            _reference=lambda size: crypt.run_sequential(size).value,
        ),
        ServiceKernel(
            name="sor",
            description="JGF successive over-relaxation (in-place sweeps; not replay-safe).",
            sizes=tuple(sor.SIZES),
            deterministic=True,
            retry_safe=False,
            _run=_jgf(sor),
            _reference=lambda size: sor.run_sequential(size).value,
        ),
        ServiceKernel(
            name="sparse",
            description="JGF sparse matmult (accumulating output; not replay-safe).",
            sizes=tuple(sparse.SIZES),
            deterministic=True,
            retry_safe=False,
            _run=_jgf(sparse),
            _reference=lambda size: sparse.run_sequential(size).value,
        ),
        ServiceKernel(
            name="sleep",
            description="Work-shared sleep (cancellation/drain testing; result = slice count).",
            sizes=tuple(SLEEP_SIZES),
            deterministic=False,
            retry_safe=True,
            _run=_run_sleep,
            _reference=lambda size: float(SLEEP_SIZES[size] if isinstance(size, str) else int(size)),
        ),
    )
}
