"""A small blocking client for the compute service's line-JSON protocol.

Used by the end-to-end tests, ``benchmarks/bench_service.py`` and the CI
driver — anything that needs to speak to the service from plain synchronous
code.  One socket per client; thread-safe for *sequential* use per instance
(drive concurrency with one client per thread, like real callers would).
"""

from __future__ import annotations

import json
import socket
from typing import Any


class ServiceError(RuntimeError):
    """A ``{"ok": false}`` response; ``code`` is the wire error code."""

    def __init__(self, message: str, code: str) -> None:
        super().__init__(message)
        self.code = code


class ServiceClient:
    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    # -- protocol ------------------------------------------------------------

    def call(self, op: str, **fields: Any) -> "dict[str, Any]":
        """One round-trip; raises :class:`ServiceError` on ``ok: false``."""
        payload = {"op": op, **{k: v for k, v in fields.items() if v is not None}}
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"), response.get("code", "error"))
        return response

    # -- convenience wrappers ------------------------------------------------

    def ping(self) -> "dict[str, Any]":
        return self.call("ping")

    def kernels(self) -> "list[dict[str, Any]]":
        return self.call("kernels")["kernels"]

    def submit(
        self,
        kernel: str,
        *,
        size: "str | int" = "tiny",
        tenant: str = "default",
        num_threads: "int | None" = None,
        on_failure: "str | None" = None,
        coalesce: bool = True,
        wait: bool = False,
        timeout: "float | None" = None,
    ) -> "dict[str, Any]":
        return self.call(
            "submit",
            kernel=kernel,
            size=size,
            tenant=tenant,
            num_threads=num_threads,
            on_failure=on_failure,
            coalesce=coalesce,
            wait=wait or None,
            timeout=timeout,
        )

    def poll(self, request_id: str) -> "dict[str, Any]":
        return self.call("poll", id=request_id)

    def wait(self, request_id: str, *, timeout: "float | None" = None) -> "dict[str, Any]":
        return self.call("wait", id=request_id, timeout=timeout)

    def cancel(self, request_id: str) -> "dict[str, Any]":
        return self.call("cancel", id=request_id)

    def stats(self) -> "dict[str, Any]":
        return self.call("stats")

    def drain(self) -> "dict[str, Any]":
        return self.call("drain")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
