"""Dispatch: worker threads that run admitted requests on warm backends.

Each :class:`DispatchWorker` owns a *private* backend instance — under the
``processes`` backend that means its own :class:`PersistentProcessPool`,
pre-spawned at service start (``prewarm``) and kept hot across requests, so
concurrent requests never contend on one pool lock and the fork cost is paid
once, not per request.  In-process backends (threads/serial) are stateless
and shared.

Per-tenant tuning: the worker wraps each request in a
:class:`repro.tune.tuner_scope` carrying the tenant's own
:class:`~repro.tune.LoopTuner` (persisted to ``<tune_dir>/<tenant>.json``
when configured), so ``schedule="auto"`` convergence amortises across that
tenant's requests without tenants polluting each other's caches.

Cancellation: the worker watches region entry (``watch_teams``) to learn the
live :class:`Team` handles; an external cancel aborts the team barrier —
members fail fast at their next sync point — and, for pooled process teams,
condemns the pool (PR-7 ``condemn``/``heal`` machinery) so even a *wedged*
team is torn down and rebuilt rather than leaked.
"""

from __future__ import annotations

import os
import threading
from typing import Any

from repro.runtime.backend import Backend, ProcessBackend, resolve_backend
from repro.runtime.team import watch_teams
from repro.service.admission import AdmissionQueue, Request
from repro.service.kernels import KERNELS
from repro.tune.tuner import LoopTuner, tuner_scope

#: how long a worker blocks in ``claim`` before re-checking for shutdown.
_CLAIM_POLL_SECONDS = 0.1


def _make_backend(name: str) -> Backend:
    """A backend instance for one dispatch worker.

    The ``processes`` backend gets a *fresh private* instance so each worker
    owns its own persistent pool (the shared registry instance guards its
    pool with a non-blocking lock and falls back to fork-per-region under
    contention — exactly what a warm service must avoid).  Everything else
    resolves through the shared registry.
    """
    backend = resolve_backend(name or None)
    if isinstance(backend, ProcessBackend):
        return ProcessBackend()
    return backend


class TenantTuners:
    """Lazily-built per-tenant tuner map shared by all dispatch workers."""

    def __init__(self, tune_dir: "str | None") -> None:
        self._tune_dir = tune_dir
        self._lock = threading.Lock()
        self._tuners: "dict[str, LoopTuner]" = {}

    def for_tenant(self, tenant: str) -> LoopTuner:
        with self._lock:
            tuner = self._tuners.get(tenant)
            if tuner is None:
                cache_path = None
                if self._tune_dir:
                    os.makedirs(self._tune_dir, exist_ok=True)
                    cache_path = os.path.join(self._tune_dir, f"{tenant}.json")
                tuner = LoopTuner(cache_path=cache_path)
                self._tuners[tenant] = tuner
            return tuner

    def save_all(self) -> None:
        """Persist every tenant cache (drain path)."""
        with self._lock:
            tuners = list(self._tuners.values())
        for tuner in tuners:
            try:
                tuner.save()
            except Exception:
                continue  # a read-only tune_dir must not block the drain


class DispatchWorker(threading.Thread):
    """One request-execution thread owning one warm backend."""

    def __init__(
        self,
        index: int,
        queue: AdmissionQueue,
        *,
        backend_name: str,
        tuners: TenantTuners,
        default_num_threads: int,
    ) -> None:
        super().__init__(name=f"aomp-dispatch-{index}", daemon=True)
        self.index = index
        self._queue = queue
        self._backend = _make_backend(backend_name)
        self._tuners = tuners
        self._default_num_threads = default_num_threads
        self._halt = threading.Event()
        self._current: "Request | None" = None
        self._teams: "list[Any]" = []
        self._state_lock = threading.Lock()

    @property
    def backend(self) -> Backend:
        return self._backend

    def warm(self, team_size: int) -> bool:
        """Pre-spawn this worker's pool so the first request finds it hot."""
        prewarm = getattr(self._backend, "prewarm", None)
        if prewarm is None:
            return False
        return bool(prewarm(max(1, team_size - 1)))

    # -- execution loop ------------------------------------------------------

    def run(self) -> None:
        while not self._halt.is_set():
            request = self._queue.claim(timeout=_CLAIM_POLL_SECONDS)
            if request is not None:
                self._execute(request)

    def _execute(self, request: Request) -> None:
        with self._state_lock:
            self._current = request
            self._teams = []
        try:
            kernel = KERNELS[request.kernel]
            num_threads = int(request.params.get("num_threads") or self._default_num_threads or 0) or None
            with tuner_scope(self._tuners.for_tenant(request.tenant)):
                with watch_teams(self._note_team):
                    outcome = kernel.run(
                        size=request.params.get("size", "tiny"),
                        num_threads=num_threads,
                        backend=self._backend,
                        on_failure=request.params.get("on_failure"),
                    )
            if request.cancel_requested:
                # The region finished before (or despite) the abort — honour
                # the cancel: the client was already told it took effect.
                self._queue.finish(request, cancelled=True)
            else:
                self._queue.finish(request, value=outcome["value"], elapsed=outcome["elapsed"])
        except Exception as exc:
            if request.cancel_requested:
                self._queue.finish(request, cancelled=True, error=f"cancelled: {exc}")
            else:
                self._queue.finish(request, error=f"{type(exc).__name__}: {exc}")
        finally:
            with self._state_lock:
                self._current = None
                self._teams = []

    def _note_team(self, team: Any) -> None:
        with self._state_lock:
            self._teams.append(team)

    # -- external control ----------------------------------------------------

    def abort_request(self, request: Request) -> bool:
        """Abort ``request`` if it is live on this worker (cancel path).

        Breaks every team barrier the request's region stack holds — members
        fail fast at their next sync point instead of draining the loop — and
        condemns the process pool so a wedged pooled team is rebuilt, not
        leaked.  Returns whether an abort was issued.
        """
        with self._state_lock:
            if self._current is not request:
                return False
            teams = list(self._teams)
        for team in teams:
            try:
                team.abort()
            except Exception:
                continue
        condemn = getattr(self._backend, "condemn_pool", None)
        if condemn is not None:
            condemn()
        return bool(teams)

    def shutdown(self, timeout: float = 10.0) -> None:
        self._halt.set()
        self.join(timeout=timeout)
        shutdown = getattr(self._backend, "shutdown", None)
        if isinstance(self._backend, ProcessBackend) and shutdown is not None:
            shutdown()


class DispatchPool:
    """The set of dispatch workers plus their shared tenant tuners."""

    def __init__(
        self,
        queue: AdmissionQueue,
        *,
        workers: int,
        backend_name: str = "",
        tune_dir: "str | None" = None,
        default_num_threads: int = 0,
    ) -> None:
        self._queue = queue
        self.tuners = TenantTuners(tune_dir)
        self.workers = [
            DispatchWorker(
                index,
                queue,
                backend_name=backend_name,
                tuners=self.tuners,
                default_num_threads=default_num_threads,
            )
            for index in range(max(1, workers))
        ]

    def start(self, *, warm_team_size: int = 0) -> None:
        for worker in self.workers:
            if warm_team_size > 1:
                worker.warm(warm_team_size)
            worker.start()

    def abort_request(self, request: Request) -> bool:
        return any(worker.abort_request(request) for worker in self.workers)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop workers and their warm pools; persists tenant tune caches."""
        for worker in self.workers:
            worker._halt.set()
        for worker in self.workers:
            worker.shutdown(timeout=timeout)
        self.tuners.save_all()

    def leaked_workers(self) -> "list[Any]":
        """Live pool worker processes after shutdown (must be empty)."""
        leaked: "list[Any]" = []
        for worker in self.workers:
            pool = getattr(worker.backend, "_pool", None)
            if pool is None:
                continue
            for proc in getattr(pool, "_procs", []):
                if proc.is_alive():
                    leaked.append(proc)
        return leaked
