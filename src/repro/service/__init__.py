"""The always-on compute service: an asyncio front-end over warm teams.

ROADMAP item 3: wrap the runtime in a long-lived server so the SPMD kernels
the paper ran once per script are served per-request to concurrent clients.

Layers (one module each, front to back):

* :mod:`repro.service.server` — asyncio TCP front-end speaking
  newline-delimited JSON (submit / poll / wait / cancel / stats), graceful
  drain on SIGTERM;
* :mod:`repro.service.admission` — bounded queue with backpressure
  (``queue_full`` rejections), per-tenant concurrency caps and duplicate
  coalescing;
* :mod:`repro.service.dispatch` — worker threads owning *warm* backends
  (pre-spawned persistent process pools) and per-tenant tuners, with
  external cancellation via ``team.abort()`` + pool condemnation;
* :mod:`repro.service.kernels` — the servable kernel catalogue (JGF drivers
  plus a cancellation-friendly sleep kernel);
* :mod:`repro.service.config` — the ``AOMP_SERVICE_*`` environment contract;
* :mod:`repro.service.client` — a small blocking client for tests, benches
  and CI drivers.

Request metrics land in the existing :mod:`repro.obs` registry, so the
``AOMP_METRICS_PORT`` endpoint exposes them with zero new exposition code.
"""

from repro.service.admission import AdmissionQueue, Draining, QueueFull, Request
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.dispatch import DispatchPool
from repro.service.kernels import KERNELS
from repro.service.server import ComputeService, ServiceThread

__all__ = [
    "AdmissionQueue",
    "ComputeService",
    "DispatchPool",
    "Draining",
    "KERNELS",
    "QueueFull",
    "Request",
    "ServiceClient",
    "ServiceConfig",
    "ServiceThread",
]
