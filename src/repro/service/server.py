"""The asyncio front-end: newline-delimited JSON over TCP.

Protocol: one JSON object per line in each direction.  Every request names
an ``op``; every response is ``{"ok": true, ...}`` or ``{"ok": false,
"error": "...", "code": "..."}``.

=========  ==================================================================
op         semantics
=========  ==================================================================
ping       liveness probe; returns the protocol version
kernels    the servable kernel catalogue
submit     admit a request (``kernel``, ``size``, ``tenant``,
           ``num_threads``, ``on_failure``); ``wait=true`` blocks for the
           result, otherwise returns the request id immediately.
           Rejections: ``queue_full`` (backpressure), ``draining``.
poll       non-blocking status/result for a request id
wait       block (with optional ``timeout``) for a request to finish
cancel     cancel a request (queued: immediate; running: aborts the team)
stats      admission snapshot + metrics endpoint metadata
drain      stop admissions, wait for in-flight work, then shut down
=========  ==================================================================

A client that disconnects mid-``wait`` merely detaches its waiter — the
request keeps running and stays pollable from another connection.

Lifecycle: :meth:`ComputeService.drain` (wired to SIGTERM in
``scripts/aomp_serve.py``) stops admissions, waits for in-flight requests
(bounded by ``drain_timeout``, then cancels stragglers via the team-abort
path), stops the dispatch workers and their pools, and unregisters the
service's gauge collector — repeated start/stop cycles leak neither threads
nor collectors.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

import repro.obs.registry as obsreg
from repro.runtime.config import get_config
from repro.service.admission import AdmissionError, AdmissionQueue
from repro.service.config import ServiceConfig
from repro.service.dispatch import DispatchPool
from repro.service.kernels import KERNELS

PROTOCOL_VERSION = 1

#: request line size bound (a kernel submission is tiny; oversized lines are
#: a protocol error, not a memory commitment).
MAX_LINE_BYTES = 64 * 1024


class ComputeService:
    """One service instance: admission queue + dispatch pool + TCP listener."""

    def __init__(self, config: "ServiceConfig | None" = None, **overrides: Any) -> None:
        base = config if config is not None else ServiceConfig()
        self.config = base.with_overrides(**overrides) if overrides else base
        self.queue = AdmissionQueue(
            queue_limit=self.config.queue_limit, tenant_cap=self.config.tenant_cap
        )
        self.dispatch = DispatchPool(
            self.queue,
            workers=self.config.workers,
            backend_name=self.config.backend,
            tune_dir=self.config.tune_dir,
            default_num_threads=self.config.num_threads,
        )
        self._server: "asyncio.base_events.Server | None" = None
        self._collector = self.queue.gauge_samples
        self._metrics_port: "int | None" = None
        self._draining = False
        self._drained = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Start dispatch workers (warming pools) and the TCP listener."""
        warm_size = self.config.num_threads or get_config().num_threads
        self.dispatch.start(warm_team_size=warm_size)
        if get_config().metrics:
            obsreg.register_collector(self._collector)
            obsreg.set_gauge("aomp_service_workers", None, float(len(self.dispatch.workers)))
            from repro.obs.exposition import ensure_exporter

            self._metrics_port = ensure_exporter()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        return self.address

    @property
    def address(self) -> "tuple[str, int]":
        assert self._server is not None, "service not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def metrics_port(self) -> "int | None":
        return self._metrics_port

    async def serve_forever(self) -> None:
        """Serve until :meth:`drain` completes (the aomp_serve main loop)."""
        await self._drained.wait()

    async def drain(self) -> "dict[str, Any]":
        """Graceful shutdown: reject new work, finish in-flight, tear down."""
        if self._draining:
            await self._drained.wait()
            return {"drained": True, "forced_cancels": 0}
        self._draining = True
        self.queue.drain()
        if self._server is not None:
            self._server.close()
        # Bounded wait for in-flight work; stragglers are cancelled through
        # the same team-abort path a client cancel uses, so a wedged region
        # cannot hold the drain hostage.
        loop = asyncio.get_running_loop()
        idle = await loop.run_in_executor(
            None, lambda: self.queue.wait_idle(self.config.drain_timeout)
        )
        forced = 0
        if not idle:
            for request_id in self.queue.live_request_ids():
                self.queue.cancel(request_id, abort_running=self.dispatch.abort_request)
                forced += 1
            await loop.run_in_executor(None, lambda: self.queue.wait_idle(10.0))
        await loop.run_in_executor(None, self.dispatch.shutdown)
        if get_config().metrics:
            obsreg.unregister_collector(self._collector)
            obsreg.clear_gauge("aomp_service_workers")
        if self._server is not None:
            await self._server.wait_closed()
        self._drained.set()
        return {"drained": True, "forced_cancels": forced}

    # -- connection handling -------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break  # client closed its end; in-flight requests continue
                if len(line) > MAX_LINE_BYTES:
                    await self._send(writer, {"ok": False, "error": "request line too long", "code": "bad_request"})
                    break
                response = await self._dispatch_op(line)
                try:
                    await self._send(writer, response)
                except (ConnectionError, RuntimeError):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: "dict[str, Any]") -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch_op(self, line: bytes) -> "dict[str, Any]":
        try:
            message = json.loads(line)
        except ValueError:
            return {"ok": False, "error": "request is not valid JSON", "code": "bad_json"}
        if not isinstance(message, dict):
            return {"ok": False, "error": "request must be a JSON object", "code": "bad_request"}
        op = message.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}", "code": "unknown_op"}
        try:
            return await handler(message)
        except AdmissionError as exc:
            return {"ok": False, "error": str(exc), "code": exc.code}
        except Exception as exc:  # a malformed field must not kill the connection
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}", "code": "bad_request"}

    # -- ops -----------------------------------------------------------------

    async def _op_ping(self, message: "dict[str, Any]") -> "dict[str, Any]":
        return {"ok": True, "pong": True, "version": PROTOCOL_VERSION}

    async def _op_kernels(self, message: "dict[str, Any]") -> "dict[str, Any]":
        return {"ok": True, "kernels": [kernel.describe() for kernel in KERNELS.values()]}

    async def _op_submit(self, message: "dict[str, Any]") -> "dict[str, Any]":
        kernel_name = message.get("kernel")
        kernel = KERNELS.get(kernel_name)
        if kernel is None:
            return {
                "ok": False,
                "error": f"unknown kernel {kernel_name!r}; have {sorted(KERNELS)}",
                "code": "unknown_kernel",
            }
        params: "dict[str, Any]" = {"size": message.get("size", "tiny")}
        if message.get("num_threads") is not None:
            params["num_threads"] = int(message["num_threads"])
        if message.get("on_failure") is not None:
            params["on_failure"] = str(message["on_failure"])
        coalescable = kernel.deterministic and bool(message.get("coalesce", True))
        request, coalesced = self.queue.submit(
            tenant=str(message.get("tenant", "default")),
            kernel=kernel.name,
            params=params,
            coalescable=coalescable,
        )
        if message.get("wait"):
            return await self._await_request(request, message.get("timeout"))
        return {"ok": True, "id": request.id, "status": request.state, "coalesced": coalesced}

    async def _op_poll(self, message: "dict[str, Any]") -> "dict[str, Any]":
        request = self.queue.get(str(message.get("id")))
        if request is None:
            return {"ok": False, "error": "unknown request id", "code": "not_found"}
        return {"ok": True, **request.payload()}

    async def _op_wait(self, message: "dict[str, Any]") -> "dict[str, Any]":
        request = self.queue.get(str(message.get("id")))
        if request is None:
            return {"ok": False, "error": "unknown request id", "code": "not_found"}
        return await self._await_request(request, message.get("timeout"))

    async def _op_cancel(self, message: "dict[str, Any]") -> "dict[str, Any]":
        request_id = str(message.get("id"))
        status = self.queue.cancel(request_id, abort_running=self.dispatch.abort_request)
        if status == "unknown":
            return {"ok": False, "error": "unknown request id", "code": "not_found"}
        return {"ok": True, "id": request_id, "status": status}

    async def _op_stats(self, message: "dict[str, Any]") -> "dict[str, Any]":
        return {
            "ok": True,
            "service": self.queue.snapshot(),
            "workers": len(self.dispatch.workers),
            "backend": self.config.backend or get_config().backend,
            "metrics_port": self._metrics_port,
            "version": PROTOCOL_VERSION,
        }

    async def _op_drain(self, message: "dict[str, Any]") -> "dict[str, Any]":
        result = await self.drain()
        return {"ok": True, **result}

    async def _await_request(self, request: Any, timeout: Any) -> "dict[str, Any]":
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        request.add_waiter(loop, future)
        try:
            await asyncio.wait_for(
                asyncio.shield(future), float(timeout) if timeout is not None else None
            )
        except asyncio.TimeoutError:
            return {"ok": True, **request.payload(), "timed_out": True}
        finally:
            request.discard_waiter(future)
            future.cancel()
        return {"ok": True, **request.payload()}


class ServiceThread:
    """Run a :class:`ComputeService` on a dedicated event-loop thread.

    The synchronous harness tests, benchmarks and ``scripts/aomp_serve.py``'s
    signal handling all need a service that *blocks someone else* — this
    wrapper owns the event loop thread and exposes a blocking start/stop API.
    """

    def __init__(self, config: "ServiceConfig | None" = None, **overrides: Any) -> None:
        import threading

        self.service = ComputeService(config, **overrides)
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, name="aomp-service", daemon=True)
        self._start_error: "BaseException | None" = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.service.start()
        except BaseException as exc:
            self._start_error = exc
            self._started.set()
            return
        self._started.set()
        await self.service.serve_forever()
        # One extra turn so a connection that *requested* the drain gets its
        # response written before asyncio.run tears the loop down.
        await asyncio.sleep(0.1)

    def start(self, timeout: float = 30.0) -> "tuple[str, int]":
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("service failed to start within the timeout")
        if self._start_error is not None:
            raise RuntimeError(f"service failed to start: {self._start_error}") from self._start_error
        return self.service.address

    @property
    def address(self) -> "tuple[str, int]":
        return self.service.address

    def drain(self, timeout: float = 60.0) -> "dict[str, Any]":
        """Blocking graceful shutdown from any thread."""
        assert self._loop is not None, "service not started"
        future = asyncio.run_coroutine_threadsafe(self.service.drain(), self._loop)
        result = future.result(timeout)
        self._thread.join(timeout=10.0)
        return result
