"""Admission control: bounded queueing, per-tenant caps, request coalescing.

The admission queue is the synchronous heart of the service — plain
``threading`` primitives, no asyncio — so dispatch workers block on it
directly and the asyncio front-end bridges through
``loop.call_soon_threadsafe`` waiter callbacks.

Backpressure is a *bounded wait queue*: a submit past ``queue_limit``
waiting requests is rejected immediately with ``queue_full`` (the 429 of
this protocol) instead of being accepted into an unbounded backlog the
service cannot serve before the client gives up.

Per-tenant fairness is a *running-request cap*: claim order is FIFO except
that a tenant already running ``tenant_cap`` requests is skipped, letting
other tenants' work pass until one of its slots frees.

Coalescing folds concurrent identical submissions of a *deterministic*
kernel onto the in-flight leader: followers get the leader's request id (and
therefore its result) and only one region runs.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

import repro.obs.registry as obsreg
from repro.runtime.config import get_config

#: finished requests kept pollable after completion (bounded history).
HISTORY_LIMIT = 1024

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a request can still be coalesced onto / cancelled in.
_LIVE_STATES = (QUEUED, RUNNING)


class AdmissionError(Exception):
    """Base for admission rejections; ``code`` is the wire error code."""

    code = "rejected"


class QueueFull(AdmissionError):
    """The bounded wait queue is at capacity (back off and retry)."""

    code = "queue_full"


class Draining(AdmissionError):
    """The service is draining and accepts no new work."""

    code = "draining"


class Request:
    """One admitted compute request and its lifecycle bookkeeping."""

    def __init__(self, request_id: str, tenant: str, kernel: str, params: "dict[str, Any]") -> None:
        self.id = request_id
        self.tenant = tenant
        self.kernel = kernel
        self.params = params
        self.state = QUEUED
        self.created = time.monotonic()
        self.started = 0.0
        self.finished = 0.0
        self.value: Any = None
        self.elapsed = 0.0
        self.error: "str | None" = None
        self.error_code: "str | None" = None
        self.cancel_requested = False
        #: followers coalesced onto this request (diagnostics).
        self.merged = 0
        self.done = threading.Event()
        #: ``(loop, future)`` pairs resolved via call_soon_threadsafe on finish.
        self._waiters: "list[tuple[Any, Any]]" = []

    # -- wire views ----------------------------------------------------------

    def payload(self) -> "dict[str, Any]":
        """The JSON-safe completion/status view clients receive."""
        out: "dict[str, Any]" = {
            "id": self.id,
            "tenant": self.tenant,
            "kernel": self.kernel,
            "status": self.state,
            "merged": self.merged,
        }
        if self.state in (DONE, FAILED, CANCELLED):
            out["queued_seconds"] = (self.started or self.finished) - self.created
            out["total_seconds"] = self.finished - self.created
        if self.state == DONE:
            out["value"] = self.value
            out["elapsed"] = self.elapsed
        if self.error is not None:
            out["error"] = self.error
        if self.error_code is not None:
            out["error_code"] = self.error_code
        return out

    # -- waiter plumbing (called by the asyncio front-end) -------------------

    def add_waiter(self, loop: Any, future: Any) -> None:
        notify = False
        with _WAITER_LOCK:
            if self.done.is_set():
                notify = True
            else:
                self._waiters.append((loop, future))
        if notify:
            _resolve_waiter(loop, future, self)

    def discard_waiter(self, future: Any) -> None:
        """Detach a waiter whose client went away; the request keeps running."""
        with _WAITER_LOCK:
            self._waiters = [(lp, fut) for lp, fut in self._waiters if fut is not future]

    def _notify(self) -> None:
        with _WAITER_LOCK:
            waiters, self._waiters = self._waiters, []
            self.done.set()
        for loop, future in waiters:
            _resolve_waiter(loop, future, self)


#: waiter registration vs completion ordering (shared: contention is nil).
_WAITER_LOCK = threading.Lock()


def _resolve_waiter(loop: Any, future: Any, request: Request) -> None:
    def complete() -> None:
        if not future.done():
            future.set_result(request)

    try:
        loop.call_soon_threadsafe(complete)
    except RuntimeError:
        pass  # the waiter's event loop already closed (client is gone)


def _coalesce_key(tenant: str, kernel: str, params: "dict[str, Any]") -> "tuple[Any, ...]":
    return (tenant, kernel, tuple(sorted(params.items())))


class AdmissionQueue:
    """Thread-safe bounded admission queue with caps and coalescing."""

    def __init__(self, *, queue_limit: int, tenant_cap: int) -> None:
        self.queue_limit = queue_limit
        self.tenant_cap = tenant_cap
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._pending: "list[Request]" = []
        self._running: "dict[str, int]" = {}  # tenant -> running count
        self._requests: "OrderedDict[str, Request]" = OrderedDict()
        self._by_key: "dict[tuple[Any, ...], Request]" = {}
        self._ids = itertools.count(1)
        self._draining = False

    # -- metrics -------------------------------------------------------------

    def _count(self, event: str) -> None:
        if get_config().metrics:
            obsreg.inc(obsreg.SERVICE_REQUEST_SLOTS[event])

    def gauge_samples(self) -> "list[tuple[str, dict, float]]":
        """Queue-depth/running gauges (registered as an obs collector)."""
        with self._lock:
            depth = len(self._pending)
            running = sum(self._running.values())
        return [
            ("aomp_service_queue_depth", {}, float(depth)),
            ("aomp_service_running", {}, float(running)),
        ]

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        *,
        tenant: str,
        kernel: str,
        params: "dict[str, Any]",
        coalescable: bool = False,
    ) -> "tuple[Request, bool]":
        """Admit one request; returns ``(request, coalesced)``.

        Raises :class:`Draining` once a drain started and :class:`QueueFull`
        when the wait queue is at capacity.  ``coalescable`` submissions of
        an identical live request return the leader instead of a new entry.
        """
        key = _coalesce_key(tenant, kernel, params)
        with self._lock:
            if self._draining:
                self._count("rejected")
                raise Draining("service is draining; not accepting new requests")
            if coalescable:
                leader = self._by_key.get(key)
                if leader is not None and leader.state in _LIVE_STATES and not leader.cancel_requested:
                    leader.merged += 1
                    self._count("coalesced")
                    return leader, True
            if len(self._pending) >= self.queue_limit:
                self._count("rejected")
                raise QueueFull(
                    f"admission queue is full ({self.queue_limit} waiting); retry with backoff"
                )
            request = Request(f"r-{next(self._ids)}", tenant, kernel, params)
            self._pending.append(request)
            self._requests[request.id] = request
            if coalescable:
                self._by_key[key] = request
            self._trim_history()
            self._work_ready.notify()
        self._count("accepted")
        return request, False

    def get(self, request_id: str) -> "Request | None":
        with self._lock:
            return self._requests.get(request_id)

    # -- dispatch side -------------------------------------------------------

    def claim(self, timeout: "float | None" = None) -> "Request | None":
        """Block for the next dispatchable request (FIFO, tenants under cap).

        Returns ``None`` on timeout — dispatch workers poll so they can
        observe shutdown.  The claimed request is in ``RUNNING`` state and
        counted against its tenant until :meth:`finish`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                for index, request in enumerate(self._pending):
                    if self._running.get(request.tenant, 0) < self.tenant_cap:
                        del self._pending[index]
                        request.state = RUNNING
                        request.started = time.monotonic()
                        self._running[request.tenant] = self._running.get(request.tenant, 0) + 1
                        return request
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._work_ready.wait(remaining)

    def finish(
        self,
        request: Request,
        *,
        value: Any = None,
        elapsed: float = 0.0,
        error: "str | None" = None,
        error_code: "str | None" = None,
        cancelled: bool = False,
    ) -> None:
        """Record a running request's outcome and wake its waiters."""
        with self._lock:
            request.finished = time.monotonic()
            if cancelled:
                request.state = CANCELLED
                request.error = error or "cancelled"
                request.error_code = error_code or "cancelled"
            elif error is not None:
                request.state = FAILED
                request.error = error
                request.error_code = error_code or "kernel_error"
            else:
                request.state = DONE
                request.value = value
                request.elapsed = elapsed
            count = self._running.get(request.tenant, 0) - 1
            if count > 0:
                self._running[request.tenant] = count
            else:
                self._running.pop(request.tenant, None)
            # a freed tenant slot may unblock a skipped request
            self._work_ready.notify_all()
            self._idle.notify_all()
        self._count("cancelled" if request.state == CANCELLED else
                    "failed" if request.state == FAILED else "completed")
        if get_config().metrics:
            obsreg.observe("aomp_service_request_seconds", request.finished - request.created)
        request._notify()

    # -- cancellation --------------------------------------------------------

    def cancel(self, request_id: str, *, abort_running: "Callable[[Request], bool] | None" = None) -> str:
        """Cancel a request; returns the resulting status string.

        Queued requests are removed immediately.  Running requests are marked
        ``cancel_requested`` and ``abort_running`` (the dispatch hook that
        aborts the live team) is invoked; the dispatch worker records the
        final ``cancelled`` state when the region unwinds.
        """
        with self._lock:
            request = self._requests.get(request_id)
            if request is None:
                return "unknown"
            if request.state == QUEUED:
                self._pending.remove(request)
                request.state = CANCELLED
                request.finished = time.monotonic()
                request.error = "cancelled before dispatch"
                request.error_code = "cancelled"
                self._idle.notify_all()
            elif request.state == RUNNING:
                request.cancel_requested = True
            else:
                return request.state  # already finished; nothing to do
        if request.state == CANCELLED:
            self._count("cancelled")
            request._notify()
            return CANCELLED
        if abort_running is not None:
            abort_running(request)
        return "cancelling"

    # -- drain ---------------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting; already-queued and running work continues."""
        with self._lock:
            self._draining = True
            self._work_ready.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def wait_idle(self, timeout: "float | None" = None) -> bool:
        """Block until no request is queued or running; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._pending or self._running:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def live_request_ids(self) -> "list[str]":
        """Ids of every queued or running request (drain stragglers)."""
        with self._lock:
            return [rid for rid, req in self._requests.items() if req.state in _LIVE_STATES]

    def snapshot(self) -> "dict[str, Any]":
        """Point-in-time stats for the ``stats`` op and tests."""
        with self._lock:
            states: "dict[str, int]" = {}
            for request in self._requests.values():
                states[request.state] = states.get(request.state, 0) + 1
            return {
                "queued": len(self._pending),
                "running": sum(self._running.values()),
                "running_by_tenant": dict(self._running),
                "draining": self._draining,
                "queue_limit": self.queue_limit,
                "tenant_cap": self.tenant_cap,
                "requests_by_state": states,
            }

    def _trim_history(self) -> None:
        # under self._lock — drop the oldest *finished* requests past the bound
        excess = len(self._requests) - HISTORY_LIMIT
        if excess <= 0:
            return
        for request_id in [
            rid for rid, req in self._requests.items() if req.state not in _LIVE_STATES
        ][:excess]:
            request = self._requests.pop(request_id)
            key = _coalesce_key(request.tenant, request.kernel, request.params)
            if self._by_key.get(key) is request:
                del self._by_key[key]
