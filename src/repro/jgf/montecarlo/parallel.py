"""MonteCarlo benchmark drivers: sequential, JGF-MT threaded, and AOmp versions."""

from __future__ import annotations

from repro.core import ForCyclic, ParallelRegion, TaskLoop, Weaver, call
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, resolve_size, spawn_jgf_threads, timed
from repro.jgf.montecarlo.kernel import MonteCarloPaths
from repro.runtime.trace import TraceRecorder

#: Problem sizes (number of Monte Carlo runs).  JGF size A is 10 000 runs.
SIZES = {"tiny": 24, "small": 200, "a": 2000}

INFO = BenchmarkInfo(
    name="MonteCarlo",
    refactorings=("M2FOR", "M2M"),
    abstractions=("PR", "FOR(cyclic)"),
    description="Monte Carlo simulation of GBM price paths; independent runs.",
)


def run_sequential(size: "str | int" = "small") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n = resolve_size(SIZES, size)
    kernel = MonteCarloPaths(n)
    value, elapsed = timed(kernel.run)
    return BenchmarkResult("MonteCarlo", "sequential", size, value, elapsed)


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: explicit threads with a hand-coded cyclic distribution."""
    n = resolve_size(SIZES, size)
    kernel = MonteCarloPaths(n)

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        # Cyclic distribution exactly as the JGF MT version writes it.
        for i in range(thread_id, n, total_threads):
            kernel.results[i] = kernel._simulate_path(i)  # noqa: SLF001 - invasive by design
        barrier.wait()

    def drive() -> float:
        spawn_jgf_threads(worker, num_threads)
        return kernel.aggregate()

    value, elapsed = timed(drive)
    return BenchmarkResult("MonteCarlo", "threaded", size, value, elapsed, num_threads=num_threads)


def build_aspects(num_threads: int, recorder: TraceRecorder | None = None) -> list:
    """The aspect modules composing the MonteCarlo parallelisation (Table 2 row)."""
    return [
        ForCyclic(call("MonteCarloPaths.run_samples")),
        ParallelRegion(call("MonteCarloPaths.run"), threads=num_threads, recorder=recorder),
    ]


def run_aomp(size: "str | int" = "small", num_threads: int = 4, recorder: TraceRecorder | None = None) -> BenchmarkResult:
    """AOmp style: weave the aspects onto the unchanged sequential kernel."""
    n = resolve_size(SIZES, size)
    kernel = MonteCarloPaths(n)
    weaver = Weaver()
    weaver.weave_all(build_aspects(num_threads, recorder), MonteCarloPaths)
    try:
        value, elapsed = timed(kernel.run)
    finally:
        weaver.unweave_all()
    return BenchmarkResult("MonteCarlo", "aomp", size, value, elapsed, num_threads=num_threads, recorder=recorder)


def build_taskloop_aspects(
    num_threads: int, recorder: TraceRecorder | None = None, grainsize: int | None = None
) -> list:
    """Work-stealing variant: the sample sweep becomes a taskloop.

    Monte Carlo path simulations are nominally uniform, but wall-clock cost
    per run varies with the drawn path (and with whatever else the machine
    is doing); stealable tiles absorb both without re-tuning a schedule.
    """
    return [
        TaskLoop(call("MonteCarloPaths.run_samples"), grainsize=grainsize),
        ParallelRegion(call("MonteCarloPaths.run"), threads=num_threads, recorder=recorder),
    ]


def run_aomp_taskloop(
    size: "str | int" = "small",
    num_threads: int = 4,
    recorder: TraceRecorder | None = None,
    grainsize: int | None = None,
) -> BenchmarkResult:
    """AOmp taskloop style: stealable sample tiles on the unchanged kernel."""
    n = resolve_size(SIZES, size)
    kernel = MonteCarloPaths(n)
    weaver = Weaver()
    weaver.weave_all(build_taskloop_aspects(num_threads, recorder, grainsize), MonteCarloPaths)
    try:
        value, elapsed = timed(kernel.run)
    finally:
        weaver.unweave_all()
    return BenchmarkResult(
        "MonteCarlo", "aomp-taskloop", size, value, elapsed, num_threads=num_threads, recorder=recorder
    )
