"""JGF MonteCarlo benchmark (financial Monte Carlo simulation)."""

from repro.jgf.montecarlo.kernel import MonteCarloPaths
from repro.jgf.montecarlo.parallel import INFO, SIZES, build_aspects, run_aomp, run_sequential, run_threaded

__all__ = ["MonteCarloPaths", "INFO", "SIZES", "build_aspects", "run_aomp", "run_sequential", "run_threaded"]
