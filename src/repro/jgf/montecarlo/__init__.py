"""JGF MonteCarlo benchmark (financial Monte Carlo simulation)."""

from repro.jgf.montecarlo.kernel import MonteCarloPaths
from repro.jgf.montecarlo.parallel import (
    INFO,
    SIZES,
    build_aspects,
    build_taskloop_aspects,
    run_aomp,
    run_aomp_taskloop,
    run_sequential,
    run_threaded,
)

__all__ = [
    "MonteCarloPaths",
    "INFO",
    "SIZES",
    "build_aspects",
    "build_taskloop_aspects",
    "run_aomp",
    "run_aomp_taskloop",
    "run_sequential",
    "run_threaded",
]
