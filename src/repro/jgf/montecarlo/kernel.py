"""JGF MonteCarlo benchmark — financial Monte Carlo simulation.

Generates ``n_runs`` independent sample paths of an asset price under
geometric Brownian motion (each path seeded deterministically from its run
index, as the JGF kernel derives each task from the historical rate data plus
the run number), computes the expected return of each path, and finally
aggregates the per-run results.  The run loop is the for method; each run
writes only its own slot of the result vector, so the loop is embarrassingly
parallel and the paper's Table 2 lists just PR + FOR(cyclic) for it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.jgf.jgfrandom import JGFRandom


class MonteCarloPaths:
    """Refactored sequential Monte Carlo kernel."""

    #: Initial asset price, drift and volatility of the simulated GBM process
    #: (values follow the JGF rate-file derived parameters in spirit).
    S0 = 100.0
    MU = 0.03
    SIGMA = 0.2
    DT = 1.0 / 252.0

    def __init__(self, n_runs: int, path_length: int = 250, seed: int = 9009) -> None:
        if n_runs < 1:
            raise ValueError("need at least one Monte Carlo run")
        self.n_runs = n_runs
        self.path_length = path_length
        self.base_seed = seed
        #: per-run expected returns; slot i is written only by run i
        self.results = np.zeros(n_runs, dtype=np.float64)

    # -- base program -----------------------------------------------------------

    def run(self) -> float:
        """Simulate every path and aggregate (the parallel-region method)."""
        self.run_samples(0, self.n_runs, 1)
        return self.aggregate()

    def run_samples(self, start: int, end: int, step: int) -> None:
        """For method: simulate sample paths ``start <= i < end``."""
        for i in range(start, end, step):
            self.results[i] = self._simulate_path(i)

    def _simulate_path(self, run_index: int) -> float:
        """Simulate one GBM path and return its annualised expected return."""
        rng = JGFRandom(self.base_seed + 7919 * (run_index + 1))
        drift = (self.MU - 0.5 * self.SIGMA**2) * self.DT
        vol = self.SIGMA * math.sqrt(self.DT)
        log_price = math.log(self.S0)
        log_start = log_price
        for _ in range(self.path_length):
            # Box-Muller from two LCG uniforms gives a deterministic normal.
            u1 = max(rng.next_double(), 1e-12)
            u2 = rng.next_double()
            gauss = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
            log_price += drift + vol * gauss
        total_return = log_price - log_start
        return total_return / (self.path_length * self.DT)

    # -- validation ------------------------------------------------------------------

    def aggregate(self) -> float:
        """Validation value: the mean expected return over all runs."""
        return float(self.results.mean())
