"""JGF Crypt benchmark — IDEA encryption/decryption.

Encrypts and then decrypts an array of bytes with the International Data
Encryption Algorithm (IDEA), as in the JGF Section 2 "Crypt" kernel.  The
byte array is processed in independent 8-byte blocks, so the block loop is
embarrassingly parallel and is the benchmark's for method.

The implementation is a from-scratch IDEA: 8.5 rounds over four 16-bit words,
with multiplication modulo 65537, addition modulo 65536 and XOR; decryption
uses the inverted key schedule (multiplicative/additive inverses).
"""

from __future__ import annotations

import numpy as np

from repro.jgf.jgfrandom import JGFRandom
from repro.runtime import shm
from repro.runtime.worksharing import run_for


def _mul(a: int, b: int) -> int:
    """IDEA multiplication: multiplication modulo 65537 with 0 meaning 65536."""
    if a == 0:
        return (65537 - b) & 0xFFFF
    if b == 0:
        return (65537 - a) & 0xFFFF
    product = a * b
    result = product % 65537
    return result & 0xFFFF


def _mul_inverse(x: int) -> int:
    """Multiplicative inverse modulo 65537 (0 represents 65536, which is self-inverse)."""
    if x <= 1:
        return x
    return pow(x, 65535, 65537) & 0xFFFF


def _add_inverse(x: int) -> int:
    """Additive inverse modulo 65536."""
    return (65536 - x) & 0xFFFF


class IDEACipher:
    """IDEA key schedule plus per-block encryption."""

    ROUNDS = 8
    KEYS = 52

    def __init__(self, user_key: "list[int] | np.ndarray") -> None:
        key = list(int(k) & 0xFF for k in user_key)
        if len(key) != 16:
            raise ValueError("IDEA needs a 16-byte user key")
        self.user_key = key
        self.encrypt_keys = self._expand_key(key)
        self.decrypt_keys = self._invert_key(self.encrypt_keys)

    @staticmethod
    def _expand_key(key_bytes: list[int]) -> list[int]:
        """Expand the 128-bit user key into 52 16-bit encryption subkeys."""
        keys = [0] * IDEACipher.KEYS
        for i in range(8):
            keys[i] = ((key_bytes[2 * i] << 8) | key_bytes[2 * i + 1]) & 0xFFFF
        # Each successive group of eight subkeys is the previous group rotated
        # left by 25 bits (standard IDEA key schedule).
        for i in range(8, IDEACipher.KEYS):
            if i % 8 < 6:
                keys[i] = ((keys[i - 7] & 0x7F) << 9 | keys[i - 6] >> 7) & 0xFFFF
            elif i % 8 == 6:
                keys[i] = ((keys[i - 7] & 0x7F) << 9 | keys[i - 14] >> 7) & 0xFFFF
            else:
                keys[i] = ((keys[i - 15] & 0x7F) << 9 | keys[i - 14] >> 7) & 0xFFFF
        return keys

    @staticmethod
    def _invert_key(keys: list[int]) -> list[int]:
        """Build the 52 decryption subkeys from the encryption subkeys.

        Transcription of the reference IDEA ``de_key_idea`` routine: the
        decryption schedule is the encryption schedule read backwards with
        multiplicative/additive inverses applied to the transform keys and the
        two addition keys of the inner rounds swapped.
        """
        source = list(keys)
        inverted = [0] * IDEACipher.KEYS
        fill = IDEACipher.KEYS
        read = 0

        t1 = _mul_inverse(source[read]); read += 1
        t2 = _add_inverse(source[read]); read += 1
        t3 = _add_inverse(source[read]); read += 1
        fill -= 1; inverted[fill] = _mul_inverse(source[read]); read += 1
        fill -= 1; inverted[fill] = t3
        fill -= 1; inverted[fill] = t2
        fill -= 1; inverted[fill] = t1

        for _ in range(1, IDEACipher.ROUNDS):
            t1 = source[read]; read += 1
            fill -= 1; inverted[fill] = source[read]; read += 1
            fill -= 1; inverted[fill] = t1
            t1 = _mul_inverse(source[read]); read += 1
            t2 = _add_inverse(source[read]); read += 1
            t3 = _add_inverse(source[read]); read += 1
            fill -= 1; inverted[fill] = _mul_inverse(source[read]); read += 1
            fill -= 1; inverted[fill] = t2
            fill -= 1; inverted[fill] = t3
            fill -= 1; inverted[fill] = t1

        t1 = source[read]; read += 1
        fill -= 1; inverted[fill] = source[read]; read += 1
        fill -= 1; inverted[fill] = t1
        t1 = _mul_inverse(source[read]); read += 1
        t2 = _add_inverse(source[read]); read += 1
        t3 = _add_inverse(source[read]); read += 1
        fill -= 1; inverted[fill] = _mul_inverse(source[read]); read += 1
        fill -= 1; inverted[fill] = t3
        fill -= 1; inverted[fill] = t2
        fill -= 1; inverted[fill] = t1
        return inverted

    @staticmethod
    def crypt_block(block: "np.ndarray", offset: int, out: "np.ndarray", keys: list[int]) -> None:
        """Encrypt/decrypt one 8-byte block at ``offset`` using ``keys``."""
        x1 = (int(block[offset]) << 8) | int(block[offset + 1])
        x2 = (int(block[offset + 2]) << 8) | int(block[offset + 3])
        x3 = (int(block[offset + 4]) << 8) | int(block[offset + 5])
        x4 = (int(block[offset + 6]) << 8) | int(block[offset + 7])
        k = 0
        for _ in range(IDEACipher.ROUNDS):
            x1 = _mul(x1, keys[k])
            x2 = (x2 + keys[k + 1]) & 0xFFFF
            x3 = (x3 + keys[k + 2]) & 0xFFFF
            x4 = _mul(x4, keys[k + 3])
            t0 = x1 ^ x3
            t1 = x2 ^ x4
            t0 = _mul(t0, keys[k + 4])
            t1 = (t1 + t0) & 0xFFFF
            t1 = _mul(t1, keys[k + 5])
            t0 = (t0 + t1) & 0xFFFF
            x1 ^= t1
            x4 ^= t0
            x2, x3 = x3 ^ t1, x2 ^ t0
            k += 6
        y1 = _mul(x1, keys[k])
        y2 = (x3 + keys[k + 1]) & 0xFFFF
        y3 = (x2 + keys[k + 2]) & 0xFFFF
        y4 = _mul(x4, keys[k + 3])
        out[offset] = (y1 >> 8) & 0xFF
        out[offset + 1] = y1 & 0xFF
        out[offset + 2] = (y2 >> 8) & 0xFF
        out[offset + 3] = y2 & 0xFF
        out[offset + 4] = (y3 >> 8) & 0xFF
        out[offset + 5] = y3 & 0xFF
        out[offset + 6] = (y4 >> 8) & 0xFF
        out[offset + 7] = y4 & 0xFF


class CryptBenchmark:
    """Refactored sequential Crypt kernel (for methods already extracted).

    With ``shared=True`` the three byte arrays are allocated in
    :mod:`repro.runtime.shm` shared memory, which makes the kernel safe for
    the process backend: worksharing chunks executed by worker processes
    mutate the same pages the master validates.  ``process_safe`` marks the
    kernel as eligible for the backend's persistent worker pool (its bound
    methods pickle by shared-memory reference, not by value).
    """

    def __init__(self, array_size: int, seed: int = 136506717, *, shared: bool = False) -> None:
        if array_size % 8 != 0:
            array_size += 8 - array_size % 8
        self.size = array_size
        rng = JGFRandom(seed)
        self.shared = bool(shared)
        self.process_safe = self.shared
        plain = np.array([rng.next_int() & 0xFF for _ in range(array_size)], dtype=np.int64)
        if shared:
            self.plain = shm.as_shared(plain)
            self.encrypted = shm.shared_zeros(array_size, np.int64)
            self.decrypted = shm.shared_zeros(array_size, np.int64)
        else:
            self.plain = plain
            self.encrypted = np.zeros(array_size, dtype=np.int64)
            self.decrypted = np.zeros(array_size, dtype=np.int64)
        key_bytes = [rng.next_int() & 0xFF for _ in range(16)]
        self.cipher = IDEACipher(key_bytes)

    def release_shared(self) -> None:
        """Free the shared-memory segments (no-op for in-process arrays)."""
        for array in (self.plain, self.encrypted, self.decrypted):
            if shm.is_shared(array):
                array.close()

    # -- base program --------------------------------------------------------------

    def run(self) -> None:
        """Encrypt then decrypt the whole array (the parallel-region method)."""
        self.encrypt_blocks(0, self.size, 8)
        self.decrypt_blocks(0, self.size, 8)

    def run_spmd(self) -> None:
        """SPMD region body using the runtime work-sharing API directly.

        Equivalent to :meth:`run` under the woven aspects, but expressed
        without weaving so it can be pickled to the process backend's
        persistent worker pool (``parallel_region(kernel.run_spmd, ...)``).
        """
        run_for(self.encrypt_blocks, 0, self.size, 8, loop_name="Crypt.encrypt")
        run_for(self.decrypt_blocks, 0, self.size, 8, loop_name="Crypt.decrypt")

    def encrypt_blocks(self, start: int, end: int, step: int) -> None:
        """For method: encrypt 8-byte blocks starting at offsets [start, end)."""
        for offset in range(start, end, step):
            IDEACipher.crypt_block(self.plain, offset, self.encrypted, self.cipher.encrypt_keys)

    def decrypt_blocks(self, start: int, end: int, step: int) -> None:
        """For method: decrypt 8-byte blocks starting at offsets [start, end)."""
        for offset in range(start, end, step):
            IDEACipher.crypt_block(self.encrypted, offset, self.decrypted, self.cipher.decrypt_keys)

    # -- validation -------------------------------------------------------------------

    def validate(self) -> bool:
        """Decryption must reproduce the plaintext exactly."""
        return bool(np.array_equal(self.plain, self.decrypted))

    def checksum(self) -> float:
        """Validation value combining plaintext, ciphertext and decrypted text."""
        return float(self.plain.sum() + self.encrypted.sum() * 1e-3 + self.decrypted.sum() * 1e-6)
