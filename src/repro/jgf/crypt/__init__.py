"""JGF Crypt benchmark (IDEA encryption)."""

from repro.jgf.crypt.kernel import CryptBenchmark, IDEACipher
from repro.jgf.crypt.parallel import INFO, SIZES, build_aspects, run_aomp, run_sequential, run_threaded

__all__ = ["CryptBenchmark", "IDEACipher", "INFO", "SIZES", "build_aspects", "run_aomp", "run_sequential", "run_threaded"]
