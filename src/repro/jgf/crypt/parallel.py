"""Crypt benchmark drivers: sequential, JGF-MT threaded, and AOmp versions."""

from __future__ import annotations

from repro.core import ForStatic, ParallelRegion, Weaver, call
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, block_range, resolve_size, spawn_jgf_threads, timed
from repro.jgf.crypt.kernel import CryptBenchmark
from repro.runtime.backend import Backend, resolve_backend
from repro.runtime.team import parallel_region
from repro.runtime.trace import TraceRecorder

#: Problem sizes (bytes of plaintext).  JGF size A is 3 000 000 bytes; the
#: pure-Python IDEA implementation is ~1000x slower per byte, so the default
#: sizes are scaled down accordingly (recorded in EXPERIMENTS.md).
SIZES = {"tiny": 8 * 32, "small": 8 * 512, "a": 8 * 8192}

INFO = BenchmarkInfo(
    name="Crypt",
    refactorings=("M2FOR", "M2M"),
    abstractions=("PR", "FOR(block)"),
    description="IDEA encryption/decryption over independent 8-byte blocks.",
)


def run_sequential(size: "str | int" = "small") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n = resolve_size(SIZES, size)
    kernel = CryptBenchmark(n)
    _, elapsed = timed(kernel.run)
    return BenchmarkResult("Crypt", "sequential", size, kernel.checksum(), elapsed, details={"valid": kernel.validate()})


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: explicit threads, block partition over 8-byte blocks.

    A barrier separates the encryption and decryption sweeps because every
    thread's decryption may read ciphertext produced by other threads.
    """
    n = resolve_size(SIZES, size)
    kernel = CryptBenchmark(n)

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        start, end = block_range(0, kernel.size, 8, thread_id, total_threads)
        kernel.encrypt_blocks(start, end, 8)
        barrier.wait()
        kernel.decrypt_blocks(start, end, 8)
        barrier.wait()

    _, elapsed = timed(lambda: spawn_jgf_threads(worker, num_threads))
    return BenchmarkResult(
        "Crypt", "threaded", size, kernel.checksum(), elapsed, num_threads=num_threads, details={"valid": kernel.validate()}
    )


def build_aspects(
    num_threads: int, recorder: TraceRecorder | None = None, backend: "Backend | str | None" = None
) -> list:
    """The aspect modules composing the Crypt parallelisation (Table 2 row)."""
    return [
        ForStatic(call("CryptBenchmark.encrypt_blocks")),
        ForStatic(call("CryptBenchmark.decrypt_blocks")),
        ParallelRegion(call("CryptBenchmark.run"), threads=num_threads, recorder=recorder, backend=backend),
    ]


def run_aomp(
    size: "str | int" = "small",
    num_threads: int = 4,
    recorder: TraceRecorder | None = None,
    backend: "Backend | str | None" = None,
) -> BenchmarkResult:
    """AOmp style: weave the aspects onto the unchanged sequential kernel.

    With a process backend the kernel's arrays are allocated in shared
    memory so worker processes mutate the data the master validates.
    """
    n = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend) if backend is not None else None
    shared = bool(backend_obj is not None and not backend_obj.supports_shared_locals)
    kernel = CryptBenchmark(n, shared=shared)
    try:
        weaver = Weaver()
        weaver.weave_all(build_aspects(num_threads, recorder, backend_obj), CryptBenchmark)
        try:
            _, elapsed = timed(kernel.run)
        finally:
            weaver.unweave_all()
        return BenchmarkResult(
            "Crypt",
            "aomp",
            size,
            kernel.checksum(),
            elapsed,
            num_threads=num_threads,
            recorder=recorder,
            details={"valid": kernel.validate(), "backend": backend_obj.name if backend_obj else None},
        )
    finally:
        kernel.release_shared()


def run_backend(
    size: "str | int" = "small",
    num_threads: int = 4,
    backend: "Backend | str" = "threads",
    *,
    on_failure: "str | None" = None,
) -> BenchmarkResult:
    """Runtime-API port: execute :meth:`CryptBenchmark.run_spmd` on ``backend``.

    This is the entry point :mod:`benchmarks.bench_backends` compares across
    serial/threads/processes; the body is picklable (all mutable state in
    shared memory under the process backend), so the persistent worker pool
    path is exercised.  ``on_failure`` forwards the recovery policy (each
    block is encrypted/decrypted by pure assignment, so replay is safe).
    """
    n = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend)
    kernel = CryptBenchmark(n, shared=not backend_obj.supports_shared_locals)
    try:
        _, elapsed = timed(
            lambda: parallel_region(
                kernel.run_spmd,
                num_threads=num_threads,
                backend=backend_obj,
                name="Crypt.spmd",
                on_failure=on_failure,
                retry_safe=True,
            )
        )
        return BenchmarkResult(
            "Crypt",
            f"backend:{backend_obj.name}",
            size,
            kernel.checksum(),
            elapsed,
            num_threads=num_threads,
            details={"valid": kernel.validate(), "backend": backend_obj.name},
        )
    finally:
        kernel.release_shared()
