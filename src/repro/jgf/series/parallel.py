"""Series benchmark drivers: sequential, JGF-MT threaded, and AOmp versions."""

from __future__ import annotations

from repro.core import ForStatic, ParallelRegion, Weaver, call
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, block_range, resolve_size, spawn_jgf_threads, timed
from repro.jgf.series.kernel import FourierSeries
from repro.runtime.backend import Backend, resolve_backend
from repro.runtime.team import parallel_region
from repro.runtime.trace import TraceRecorder

#: Problem sizes (number of coefficient pairs).  JGF size A is 10 000; the
#: default "small" size keeps a pure-Python run near one second.
SIZES = {"tiny": 16, "small": 128, "a": 2000}

INFO = BenchmarkInfo(
    name="Series",
    refactorings=("M2FOR", "M2M"),
    abstractions=("PR", "FOR(block)"),
    description="Fourier coefficients of (x+1)^x over [0,2]; embarrassingly parallel outer loop.",
)


def run_sequential(size: "str | int" = "small", *, kernel: str = "python") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n = resolve_size(SIZES, size)
    bench = FourierSeries(n, kernel=kernel)
    _, elapsed = timed(bench.run)
    return BenchmarkResult("Series", "sequential", size, bench.checksum(), elapsed)


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: explicit threads, manual block partition of the loop."""
    n = resolve_size(SIZES, size)
    kernel = FourierSeries(n)

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        start, end = block_range(0, n, 1, thread_id, total_threads)
        kernel.compute_coefficients(start, end, 1)
        barrier.wait()

    _, elapsed = timed(lambda: spawn_jgf_threads(worker, num_threads))
    return BenchmarkResult("Series", "threaded", size, kernel.checksum(), elapsed, num_threads=num_threads)


def build_aspects(
    num_threads: int, recorder: TraceRecorder | None = None, backend: "Backend | str | None" = None
) -> list:
    """The aspect modules composing the Series parallelisation (Table 2 row)."""
    return [
        ForStatic(call("FourierSeries.compute_coefficients")),
        ParallelRegion(call("FourierSeries.run"), threads=num_threads, recorder=recorder, backend=backend),
    ]


def run_aomp(
    size: "str | int" = "small",
    num_threads: int = 4,
    recorder: TraceRecorder | None = None,
    backend: "Backend | str | None" = None,
) -> BenchmarkResult:
    """AOmp style: weave the aspects onto the unchanged sequential kernel."""
    n = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend) if backend is not None else None
    # Shared memory whenever members do not share a Python heap — true for
    # process *and* subinterpreter teams, so key off the capability flag
    # rather than is_process_based.
    shared = bool(backend_obj is not None and not backend_obj.supports_shared_locals)
    kernel = FourierSeries(n, shared=shared)
    try:
        weaver = Weaver()
        weaver.weave_all(build_aspects(num_threads, recorder, backend_obj), FourierSeries)
        try:
            _, elapsed = timed(kernel.run)
        finally:
            weaver.unweave_all()
        return BenchmarkResult(
            "Series", "aomp", size, kernel.checksum(), elapsed, num_threads=num_threads, recorder=recorder
        )
    finally:
        kernel.release_shared()


def run_backend(
    size: "str | int" = "small",
    num_threads: int = 4,
    backend: "Backend | str" = "threads",
    *,
    kernel: str = "python",
    on_failure: "str | None" = None,
) -> BenchmarkResult:
    """Runtime-API port: execute :meth:`FourierSeries.run_spmd` on ``backend``.

    ``kernel="vector"`` selects the numpy chunk body (GIL-releasing inner
    integration); results agree with the pure-Python body to ~1e-12 relative.
    ``on_failure`` forwards the recovery policy (the SPMD body recomputes its
    coefficient rows from scratch, so replaying the region is safe).
    """
    n = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend)
    bench = FourierSeries(n, shared=not backend_obj.supports_shared_locals, kernel=kernel)
    try:
        _, elapsed = timed(
            lambda: parallel_region(
                bench.run_spmd,
                num_threads=num_threads,
                backend=backend_obj,
                name="Series.spmd",
                on_failure=on_failure,
                retry_safe=True,
            )
        )
        return BenchmarkResult(
            "Series",
            f"backend:{backend_obj.name}",
            size,
            bench.checksum(),
            elapsed,
            num_threads=num_threads,
            details={"backend": backend_obj.name, "kernel": kernel},
        )
    finally:
        bench.release_shared()
