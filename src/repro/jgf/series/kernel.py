"""JGF Series benchmark — Fourier coefficient computation.

Computes the first ``n`` pairs of Fourier coefficients of ``f(x) = (x+1)^x``
over the interval [0, 2] by trapezoid integration, exactly as the JGF Section
2 "Series" kernel does.  Each coefficient pair is independent, making the
outer loop embarrassingly parallel with a mildly non-uniform first iteration.

The class below is the *refactored sequential base program*: the coefficient
loop has already been moved into the for method :meth:`compute_coefficients`
(the paper's M2FOR refactoring) and the whole computation into :meth:`run`
(M2M), so parallelisation aspects can be attached without further changes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.runtime import shm
from repro.runtime.worksharing import run_for


class FourierSeries:
    """Sequential Fourier-coefficient kernel with for-method refactoring applied.

    With ``shared=True`` the coefficient table is allocated in
    :mod:`repro.runtime.shm` shared memory so worker processes fill their
    coefficient pairs in place — the process-backend port of the paper's
    embarrassingly parallel Series loop.
    """

    #: number of integration intervals per coefficient (JGF uses 1000)
    INTEGRATION_INTERVALS = 1000

    #: selectable chunk-body implementations (see ``kernel=``)
    KERNELS = ("python", "vector")

    def __init__(self, n_coefficients: int, *, shared: bool = False, kernel: str = "python") -> None:
        if n_coefficients < 2:
            raise ValueError("need at least 2 coefficient pairs")
        if kernel not in self.KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {self.KERNELS}")
        self.n = n_coefficients
        self.shared = bool(shared)
        self.process_safe = self.shared
        self.kernel = kernel
        #: row 0 = a_i coefficients, row 1 = b_i coefficients
        coefficients = np.zeros((2, n_coefficients), dtype=np.float64)
        self.coefficients = shm.as_shared(coefficients) if shared else coefficients

    def release_shared(self) -> None:
        """Free the shared-memory segment (no-op for in-process tables)."""
        if shm.is_shared(self.coefficients):
            self.coefficients.close()

    # -- base program -----------------------------------------------------------

    def run(self) -> np.ndarray:
        """Compute all coefficient pairs (the method made a parallel region)."""
        self.compute_coefficients(0, self.n, 1)
        return self.coefficients

    def run_spmd(self) -> float:
        """SPMD region body using the runtime work-sharing API directly.

        Picklable (all mutable state in shared memory when ``shared=True``),
        so the process backend can dispatch it to its persistent worker pool.
        Returns the checksum rather than the array: member return values
        cross a process boundary, and the checksum is what validation uses.
        """
        run_for(self.compute_coefficients, 0, self.n, 1, loop_name="Series.coefficients")
        return self.checksum()

    def compute_coefficients(self, start: int, end: int, step: int) -> None:
        """For method: compute coefficient pairs ``start <= i < end`` (M2FOR)."""
        if self.kernel == "vector":
            self._compute_coefficients_vector(start, end, step)
        else:
            self._compute_coefficients_python(start, end, step)

    def _compute_coefficients_python(self, start: int, end: int, step: int) -> None:
        for i in range(start, end, step):
            if i == 0:
                self.coefficients[0, 0] = self._integrate(lambda x: self._function(x, 0, 0)) / 2.0
                self.coefficients[1, 0] = 0.0
            else:
                self.coefficients[0, i] = self._integrate(lambda x: self._function(x, i, 1))
                self.coefficients[1, i] = self._integrate(lambda x: self._function(x, i, 2))

    def _compute_coefficients_vector(self, start: int, end: int, step: int) -> None:
        """Vectorised chunk body: numpy trapezoid integration per coefficient.

        The 1000-point integration grid becomes array expressions, so the
        inner loop's arithmetic runs in numpy (which releases the GIL) —
        ~100× fewer Python bytecodes per coefficient than the pure-Python
        body.  Each coefficient is computed by an *identical* expression
        regardless of how the range was chunked, so any parallel schedule
        produces results bit-identical to the vectorised serial run; against
        the pure-Python body, numpy's pairwise summation reorders the
        trapezoid accumulation and agreement is to ~1e-12 relative, not
        bitwise.
        """
        intervals = self.INTEGRATION_INTERVALS
        dx = 2.0 / intervals
        x = np.arange(intervals + 1) * dx
        base = np.power(x + 1.0, x)
        weights = np.full(intervals + 1, dx)
        weights[0] = weights[-1] = 0.5 * dx
        for i in range(start, end, step):
            if i == 0:
                self.coefficients[0, 0] = float(base @ weights) / 2.0
                self.coefficients[1, 0] = 0.0
            else:
                omega = (math.pi * i) * x
                self.coefficients[0, i] = float((base * np.cos(omega)) @ weights)
                self.coefficients[1, i] = float((base * np.sin(omega)) @ weights)

    # -- numerical helpers --------------------------------------------------------

    @staticmethod
    def _function(x: float, i: int, select: int) -> float:
        """The integrand: (x+1)^x, optionally multiplied by cos/sin(i * pi * x)."""
        base = math.pow(x + 1.0, x)
        if select == 0:
            return base
        omega = math.pi * i * x
        if select == 1:
            return base * math.cos(omega)
        return base * math.sin(omega)

    def _integrate(self, fn) -> float:
        """Trapezoid integration of ``fn`` over [0, 2] (JGF's TrapezoidIntegrate)."""
        intervals = self.INTEGRATION_INTERVALS
        dx = 2.0 / intervals
        x = 0.0
        total = 0.5 * fn(0.0)
        for _ in range(intervals - 1):
            x += dx
            total += fn(x)
        total += 0.5 * fn(2.0)
        return total * dx

    # -- validation ------------------------------------------------------------------

    def checksum(self) -> float:
        """Scalar validation value: sum of all coefficients."""
        return float(np.sum(self.coefficients))

    def reference_first_pairs(self) -> list[tuple[float, float]]:
        """First four (a_i, b_i) pairs, used by cross-version validation."""
        return [(float(self.coefficients[0, i]), float(self.coefficients[1, i])) for i in range(min(4, self.n))]
