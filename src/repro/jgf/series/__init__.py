"""JGF Series benchmark (Fourier coefficients)."""

from repro.jgf.series.kernel import FourierSeries
from repro.jgf.series.parallel import INFO, SIZES, build_aspects, run_aomp, run_sequential, run_threaded

__all__ = ["FourierSeries", "INFO", "SIZES", "build_aspects", "run_aomp", "run_sequential", "run_threaded"]
