"""Common infrastructure for the JGF benchmark ports.

Every benchmark package exposes the same surface:

* a *sequential* kernel class whose loops have already been refactored into
  *for methods* (the paper's M2FOR/M2M refactorings, Table 2);
* a ``run_threaded`` driver reproducing the invasive JGF-MT parallelisation
  (explicit threads, manual loop partitioning, hand-placed barriers);
* an ``run_aomp`` driver that composes the *unchanged* sequential kernel with
  PyAOmpLib aspects;
* a :class:`BenchmarkInfo` record used by the Table 2 reproduction.

``BenchmarkResult`` objects carry both the numerical result (for validation)
and the execution trace (for the performance model).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.runtime.trace import TraceRecorder


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark execution."""

    name: str
    mode: str                      # "sequential" | "threaded" | "aomp" | variant name
    size: str | int
    value: Any                     # validation value (checksum, residual, ...)
    elapsed: float                 # wall-clock seconds (GIL-bound; informational)
    num_threads: int = 1
    recorder: TraceRecorder | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def validates_against(self, other: "BenchmarkResult", tolerance: float = 1e-8) -> bool:
        """Whether this result numerically agrees with ``other``."""
        return values_match(self.value, other.value, tolerance)


def values_match(left: Any, right: Any, tolerance: float = 1e-8) -> bool:
    """Structural numeric comparison used for cross-version validation."""
    import numpy as np

    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        if len(left) != len(right):
            return False
        return all(values_match(lhs, rhs, tolerance) for lhs, rhs in zip(left, right))
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return bool(np.allclose(left, right, rtol=tolerance, atol=tolerance))
    if isinstance(left, float) or isinstance(right, float):
        scale = max(abs(float(left)), abs(float(right)), 1.0)
        return abs(float(left) - float(right)) <= tolerance * scale
    return left == right


@dataclass(frozen=True)
class BenchmarkInfo:
    """Static description of a benchmark used by the Table 2 reproduction.

    ``refactorings`` uses the paper's codes: ``M2M`` (move statements to a
    method) and ``M2FOR`` (move a loop into a for method).  ``abstractions``
    lists the paper's abbreviations (PR, FOR(block|cyclic|...), BR, MA, TLF,
    CS) — the Table 2 experiment cross-checks these against the aspects the
    AOmp driver actually weaves.
    """

    name: str
    refactorings: tuple[str, ...]
    abstractions: tuple[str, ...]
    description: str = ""


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` and return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


#: Problem sizes per benchmark.  JGF defines sizes A/B/C; this reproduction
#: adds a "tiny" size for tests and scales A down to laptop-friendly values
#: (the actual values used per experiment are recorded in EXPERIMENTS.md).
SIZE_NAMES = ("tiny", "small", "a")


def resolve_size(sizes: Mapping[str, Any], size: "str | int | None", default: str = "small") -> Any:
    """Resolve a size name (or pass through an explicit numeric size)."""
    if size is None:
        return sizes[default]
    if isinstance(size, str):
        try:
            return sizes[size]
        except KeyError as exc:
            raise KeyError(f"unknown size {size!r}; expected one of {sorted(sizes)}") from exc
    return size


def spawn_jgf_threads(worker: Callable[[int, int, threading.Barrier], None], num_threads: int) -> None:
    """Run ``worker(thread_id, num_threads, barrier)`` on explicit threads.

    This is the *traditional* JGF-MT parallelisation style the paper argues
    against: thread creation, work distribution and synchronisation are
    hand-written and entangled with the benchmark driver.  The master (thread
    id 0) runs on the calling thread, as in the JGF sources.  Worker
    exceptions are re-raised on the caller after all threads have been joined.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    barrier = threading.Barrier(num_threads)
    failures: list[BaseException] = []
    failure_lock = threading.Lock()

    def run(thread_id: int) -> None:
        try:
            worker(thread_id, num_threads, barrier)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            with failure_lock:
                failures.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=run, args=(tid,), daemon=True) for tid in range(1, num_threads)]
    for thread in threads:
        thread.start()
    run(0)
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


def block_range(total_start: int, total_end: int, step: int, thread_id: int, num_threads: int) -> tuple[int, int]:
    """JGF-style block partition of ``range(total_start, total_end, step)``.

    Returns the (start, end) sub-range for ``thread_id``; the step is shared.
    Used by the hand-written threaded baselines.
    """
    total = len(range(total_start, total_end, step))
    base, extra = divmod(total, num_threads)
    begin_index = thread_id * base + min(thread_id, extra)
    count = base + (1 if thread_id < extra else 0)
    start = total_start + begin_index * step
    end = start + count * step
    return start, end
