"""Sparse benchmark drivers, including the case-specific scheduling aspect.

Table 2 notes that Sparse needs a *case-specific* for schedule and a
case-specific aspect: the non-zero range must be split at row boundaries so
that concurrent scatter updates never touch the same output row.  The
:class:`RowBlockFor` aspect below is exactly that kind of application-specific
aspect the paper argues the library makes easy to write: it extends the
library's :class:`~repro.core.aspects.worksharing.ForWorkSharing` and replaces
the generic schedule with the kernel-provided row-block bounds.
"""

from __future__ import annotations

from typing import Any

from repro.core import ForWorkSharing, ParallelRegion, Weaver, call
from repro.runtime.backend import Backend, resolve_backend
from repro.core.weaver.joinpoint import JoinPoint
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, resolve_size, spawn_jgf_threads, timed
from repro.jgf.sparse.kernel import SparseMatmult
from repro.runtime import context as ctx
from repro.runtime.team import parallel_region
from repro.runtime.trace import EventKind
from repro.runtime.trace import TraceRecorder

#: Problem sizes: (matrix order N, non-zeros NZ).  JGF size A is 50 000 / 250 000.
SIZES = {"tiny": (64, 320), "small": (512, 2560), "a": (4096, 20480)}
ITERATIONS = {"tiny": 5, "small": 15, "a": 25}

INFO = BenchmarkInfo(
    name="Sparse",
    refactorings=("M2FOR", "M2M"),
    abstractions=("PR", "FOR(Case Specific)", "CS"),
    description="Sparse matrix-vector product; case-specific row-block distribution.",
)


class RowBlockFor(ForWorkSharing):
    """Case-specific for aspect: distribute non-zeros at row boundaries.

    The thread id selects one of the kernel's precomputed row blocks, so each
    team member updates a disjoint set of output rows and no synchronisation
    is needed inside the loop.
    """

    abstraction = "CS"

    def around(self, joinpoint: JoinPoint) -> Any:
        kernel: SparseMatmult = joinpoint.target
        context = ctx.current_context()
        if context is None or context.team.size == 1:
            return joinpoint.proceed()
        team = context.team
        bounds = kernel.row_block_bounds(team.size)
        start, end = bounds[context.thread_id]
        if team.tracing:
            team.record(
                EventKind.CHUNK,
                loop=joinpoint.qualified_name,
                start=int(start),
                end=int(end),
                step=1,
                count=int(end - start),
                weight=None,
            )
        result = joinpoint.proceed(int(start), int(end), 1)
        team.barrier(label="for:rowblock")
        return result


def _iterations_for(size: "str | int") -> int:
    return ITERATIONS.get(size, 15) if isinstance(size, str) else 15


def run_sequential(size: "str | int" = "small", *, kernel: str = "python") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n, nz = resolve_size(SIZES, size)
    bench = SparseMatmult(n, nz, iterations=_iterations_for(size), kernel=kernel)
    # The row-range loop is what the parallel ports work-share; running it
    # here too keeps sequential/parallel numerics on the same code path.
    value, elapsed = timed(bench.run if kernel == "python" else bench.run_rows)
    return BenchmarkResult("Sparse", "sequential", size, value, elapsed)


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: hand-coded row-block partitioning and explicit threads."""
    n, nz = resolve_size(SIZES, size)
    iterations = _iterations_for(size)
    kernel = SparseMatmult(n, nz, iterations=iterations)
    bounds = kernel.row_block_bounds(num_threads)

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        start, end = bounds[thread_id]
        for _ in range(iterations):
            kernel.multiply_range(start, end, 1)
            barrier.wait()

    _, elapsed = timed(lambda: spawn_jgf_threads(worker, num_threads))
    return BenchmarkResult("Sparse", "threaded", size, kernel.total(), elapsed, num_threads=num_threads)


def build_aspects(
    num_threads: int,
    recorder: TraceRecorder | None = None,
    backend: "Backend | str | None" = None,
    schedule: str | None = None,
) -> list:
    """The aspect modules composing the Sparse parallelisation (Table 2 row).

    The default is the paper's case-specific row-block distribution over the
    non-zero range.  With an explicit ``schedule`` (e.g. ``"auto"``) the
    *row-range* for method is woven instead: its chunks touch disjoint output
    rows under any generic schedule, so the adaptive tuner is free to pick
    dynamic/guided chunkings that ignore non-zero row boundaries.
    """
    if schedule is None:
        return [
            RowBlockFor(call("SparseMatmult.multiply_range")),
            ParallelRegion(call("SparseMatmult.run"), threads=num_threads, recorder=recorder, backend=backend),
        ]
    return [
        ForWorkSharing(call("SparseMatmult.multiply_rows"), schedule=schedule),
        ParallelRegion(call("SparseMatmult.run_rows"), threads=num_threads, recorder=recorder, backend=backend),
    ]


def run_aomp(
    size: "str | int" = "small",
    num_threads: int = 4,
    recorder: TraceRecorder | None = None,
    backend: "Backend | str | None" = None,
    schedule: str | None = None,
) -> BenchmarkResult:
    """AOmp style: weave the case-specific aspect onto the unchanged kernel."""
    n, nz = resolve_size(SIZES, size)
    kernel = SparseMatmult(n, nz, iterations=_iterations_for(size))
    weaver = Weaver()
    weaver.weave_all(build_aspects(num_threads, recorder, backend, schedule), SparseMatmult)
    try:
        value, elapsed = timed(kernel.run if schedule is None else kernel.run_rows)
    finally:
        weaver.unweave_all()
    return BenchmarkResult("Sparse", "aomp", size, value, elapsed, num_threads=num_threads, recorder=recorder)


def run_backend(
    size: "str | int" = "small",
    num_threads: int = 4,
    backend: "Backend | str" = "threads",
    *,
    kernel: str = "python",
    on_failure: "str | None" = None,
) -> BenchmarkResult:
    """Runtime-API port: execute :meth:`SparseMatmult.run_spmd` on ``backend``.

    The SPMD body work-shares the *row-range* loop (disjoint output rows per
    chunk under any schedule); ``kernel="vector"`` replaces the per-chunk
    scatter with a ``reduceat`` row reduction.  The output vector is placed
    in shared memory for isolated-heap backends.  ``on_failure`` forwards the
    recovery policy; the body *accumulates* into the output vector across
    iterations, so it is deliberately not marked ``retry_safe`` — a replay
    request is refused rather than silently double-adding.
    """
    n, nz = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend)
    bench = SparseMatmult(
        n, nz, iterations=_iterations_for(size), shared=not backend_obj.supports_shared_locals, kernel=kernel
    )
    try:
        _, elapsed = timed(
            lambda: parallel_region(
                bench.run_spmd,
                num_threads=num_threads,
                backend=backend_obj,
                name="Sparse.spmd",
                on_failure=on_failure,
            )
        )
        return BenchmarkResult(
            "Sparse",
            f"backend:{backend_obj.name}",
            size,
            bench.total(),
            elapsed,
            num_threads=num_threads,
            details={"backend": backend_obj.name, "kernel": kernel},
        )
    finally:
        bench.release_shared()
