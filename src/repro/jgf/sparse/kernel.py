"""JGF SparseMatMult benchmark — sparse matrix-vector multiplication.

Multiplies a random sparse ``N x N`` matrix (``nz`` non-zeros stored in
unordered triplet/COO form, exactly like the JGF kernel) by a dense vector,
repeated for a number of iterations.  The scatter update ``y[row[k]] +=
val[k] * x[col[k]]`` creates a write-write conflict whenever two threads
handle non-zeros of the same row, which is why the JGF parallelisation (and
Table 2) needs a *case-specific* partitioning: the non-zeros are sorted by
row and split at row boundaries so each thread owns disjoint output rows.

:meth:`multiply_range` is the for method over non-zero indices; the
case-specific partitioning is provided by ``row_block_bounds`` and used by the
case-specific aspect in :mod:`repro.jgf.sparse.parallel`.
"""

from __future__ import annotations

import numpy as np

from repro.jgf.jgfrandom import JGFRandom
from repro.runtime import shm
from repro.runtime.worksharing import run_for


class SparseMatmult:
    """Refactored sequential sparse matrix-vector kernel.

    With ``shared=True`` the *output* vector ``y`` lives in
    :mod:`repro.runtime.shm` shared memory, making the kernel safe for
    isolated-heap backends (process / subinterpreter teams): the read-only
    matrix triplets and input vector are shipped by value when the SPMD body
    is pickled (a one-time copy), but every member's row updates land in the
    one physical ``y``.
    """

    #: selectable chunk-body implementations (see ``kernel=``)
    KERNELS = ("python", "vector")

    def __init__(
        self,
        n: int,
        nz: int,
        iterations: int = 25,
        seed: int = 1966,
        *,
        shared: bool = False,
        kernel: str = "python",
    ) -> None:
        if nz < n:
            raise ValueError("need at least one non-zero per row on average")
        if kernel not in self.KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {self.KERNELS}")
        self.n = n
        self.nz = nz
        self.iterations = iterations
        self.shared = bool(shared)
        self.process_safe = self.shared
        self.kernel = kernel
        rng = JGFRandom(seed)
        row = rng.ints(nz, n)
        col = rng.ints(nz, n)
        self.values = rng.doubles(nz)
        # Sort by row (the JGF kernel does the same) so that row-block
        # partitioning is possible; ties keep the generated order.
        order = np.argsort(row, kind="stable")
        self.row = row[order]
        self.col = col[order]
        self.values = self.values[order]
        self.x = JGFRandom(seed + 7).doubles(n)
        y = np.zeros(n, dtype=np.float64)
        self.y = shm.as_shared(y) if shared else y
        # CSR-style row pointers: non-zeros of row r live at indices
        # [row_ptr[r], row_ptr[r + 1]).  Possible because the triplets are
        # row-sorted above; enables the row-range for method, whose chunks
        # touch disjoint output rows under *any* generic schedule.
        self.row_ptr = np.searchsorted(self.row, np.arange(n + 1))

    def release_shared(self) -> None:
        """Free the shared-memory segment (no-op for in-process outputs)."""
        if shm.is_shared(self.y):
            self.y.close()

    def _y(self) -> np.ndarray:
        """The output vector as a plain ndarray (``np.add.at`` needs one)."""
        return self.y.np if shm.is_shared(self.y) else self.y

    # -- base program -----------------------------------------------------------

    def run(self) -> float:
        """Run all multiplication iterations (the parallel-region method)."""
        for _ in range(self.iterations):
            self.multiply_range(0, self.nz, 1)
        return self.total()

    def run_rows(self) -> float:
        """Row-loop variant of :meth:`run` (the parallel-region method).

        Identical arithmetic, but iterating rows instead of non-zeros: a
        chunk of rows updates a disjoint slice of ``y``, so the loop is safe
        under *any* generic schedule — this is the for method the adaptive
        (``schedule="auto"``) parallelisation uses, where the tuner may pick
        dynamic or guided chunkings that ignore row boundaries of the
        non-zero range.
        """
        for _ in range(self.iterations):
            self.multiply_rows(0, self.n, 1)
        return self.total()

    def run_spmd(self) -> float:
        """SPMD region body using the runtime work-sharing API directly.

        Iterates the row-range for method (chunks touch disjoint output rows
        under any generic schedule); picklable, so isolated-heap backends can
        dispatch it — the shared output vector makes it ``process_safe``.
        """
        for _ in range(self.iterations):
            run_for(self.multiply_rows, 0, self.n, 1, loop_name="Sparse.rows")
        return self.total()

    def multiply_rows(self, start: int, end: int, step: int) -> None:
        """For method: apply the non-zeros of rows ``start <= r < end``."""
        if self.kernel == "vector":
            self._multiply_rows_vector(start, end, step)
            return
        row_ptr = self.row_ptr
        if step == 1:
            first, last = int(row_ptr[start]), int(row_ptr[end])
            self.multiply_range(first, last, 1)
            return
        for r in range(start, end, step):
            self.multiply_range(int(row_ptr[r]), int(row_ptr[r + 1]), 1)

    def _multiply_rows_vector(self, start: int, end: int, step: int) -> None:
        """Vectorised row-range body: per-row sums via ``np.add.reduceat``.

        The scatter ``np.add.at`` of the python path is unbuffered and
        GIL-bound per element group; here the chunk's products are reduced
        per row in one reduceat call.  Empty rows need care — reduceat's
        contract yields ``products[offsets[j]]`` (not 0) for a zero-length
        segment, and a trailing empty row's offset would fall off the end of
        the products array — so the reduction runs over the offsets of
        *non-empty* rows only.  A row's sum depends only on that row's
        products, so any chunking of the row range produces results
        bit-identical to the vectorised serial run; the per-row pairwise
        reduction differs from the python path's sequential scatter order at
        the ~1e-15 level.
        """
        if step != 1:
            for r in range(start, end, step):
                self._multiply_rows_vector(r, r + 1, 1)
            return
        row_ptr = self.row_ptr
        first, last = int(row_ptr[start]), int(row_ptr[end])
        if first == last:
            return
        products = self.values[first:last] * self.x[self.col[first:last]]
        offsets = (row_ptr[start:end] - first).astype(np.intp)
        counts = row_ptr[start + 1 : end + 1] - row_ptr[start:end]
        nonempty = np.flatnonzero(counts > 0)
        sums = np.add.reduceat(products, offsets[nonempty])
        y = self._y()
        y[start + nonempty] += sums

    def multiply_range(self, start: int, end: int, step: int) -> None:
        """For method: apply non-zero entries ``start <= k < end`` to the output."""
        row, col, values, x, y = self.row, self.col, self.values, self.x, self._y()
        if step == 1:
            # np.add.at handles repeated output rows correctly (unbuffered).
            np.add.at(y, row[start:end], values[start:end] * x[col[start:end]])
        else:
            indices = np.arange(start, end, step)
            np.add.at(y, row[indices], values[indices] * x[col[indices]])

    # -- case-specific partitioning ------------------------------------------------

    def row_block_bounds(self, num_threads: int) -> list[tuple[int, int]]:
        """Split the non-zero index range at row boundaries into ``num_threads`` blocks.

        Each block covers roughly ``nz / num_threads`` entries but never splits
        a row across blocks, so the scatter updates of different threads touch
        disjoint rows — the case-specific distribution the paper's Sparse row
        in Table 2 refers to.
        """
        bounds: list[tuple[int, int]] = []
        target = self.nz / num_threads
        begin = 0
        for t in range(num_threads):
            if t == num_threads - 1:
                end = self.nz
            else:
                end = int(round((t + 1) * target))
                # Move the split forward until the row changes.
                while 0 < end < self.nz and self.row[end] == self.row[end - 1]:
                    end += 1
            end = max(end, begin)
            bounds.append((begin, end))
            begin = end
        return bounds

    # -- validation ------------------------------------------------------------------

    def total(self) -> float:
        """Validation value: the sum of the output vector (JGF's ytotal)."""
        return float(self.y.sum())
