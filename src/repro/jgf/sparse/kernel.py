"""JGF SparseMatMult benchmark — sparse matrix-vector multiplication.

Multiplies a random sparse ``N x N`` matrix (``nz`` non-zeros stored in
unordered triplet/COO form, exactly like the JGF kernel) by a dense vector,
repeated for a number of iterations.  The scatter update ``y[row[k]] +=
val[k] * x[col[k]]`` creates a write-write conflict whenever two threads
handle non-zeros of the same row, which is why the JGF parallelisation (and
Table 2) needs a *case-specific* partitioning: the non-zeros are sorted by
row and split at row boundaries so each thread owns disjoint output rows.

:meth:`multiply_range` is the for method over non-zero indices; the
case-specific partitioning is provided by ``row_block_bounds`` and used by the
case-specific aspect in :mod:`repro.jgf.sparse.parallel`.
"""

from __future__ import annotations

import numpy as np

from repro.jgf.jgfrandom import JGFRandom


class SparseMatmult:
    """Refactored sequential sparse matrix-vector kernel."""

    def __init__(self, n: int, nz: int, iterations: int = 25, seed: int = 1966) -> None:
        if nz < n:
            raise ValueError("need at least one non-zero per row on average")
        self.n = n
        self.nz = nz
        self.iterations = iterations
        rng = JGFRandom(seed)
        row = rng.ints(nz, n)
        col = rng.ints(nz, n)
        self.values = rng.doubles(nz)
        # Sort by row (the JGF kernel does the same) so that row-block
        # partitioning is possible; ties keep the generated order.
        order = np.argsort(row, kind="stable")
        self.row = row[order]
        self.col = col[order]
        self.values = self.values[order]
        self.x = JGFRandom(seed + 7).doubles(n)
        self.y = np.zeros(n, dtype=np.float64)
        # CSR-style row pointers: non-zeros of row r live at indices
        # [row_ptr[r], row_ptr[r + 1]).  Possible because the triplets are
        # row-sorted above; enables the row-range for method, whose chunks
        # touch disjoint output rows under *any* generic schedule.
        self.row_ptr = np.searchsorted(self.row, np.arange(n + 1))

    # -- base program -----------------------------------------------------------

    def run(self) -> float:
        """Run all multiplication iterations (the parallel-region method)."""
        for _ in range(self.iterations):
            self.multiply_range(0, self.nz, 1)
        return self.total()

    def run_rows(self) -> float:
        """Row-loop variant of :meth:`run` (the parallel-region method).

        Identical arithmetic, but iterating rows instead of non-zeros: a
        chunk of rows updates a disjoint slice of ``y``, so the loop is safe
        under *any* generic schedule — this is the for method the adaptive
        (``schedule="auto"``) parallelisation uses, where the tuner may pick
        dynamic or guided chunkings that ignore row boundaries of the
        non-zero range.
        """
        for _ in range(self.iterations):
            self.multiply_rows(0, self.n, 1)
        return self.total()

    def multiply_rows(self, start: int, end: int, step: int) -> None:
        """For method: apply the non-zeros of rows ``start <= r < end``."""
        row_ptr = self.row_ptr
        if step == 1:
            first, last = int(row_ptr[start]), int(row_ptr[end])
            self.multiply_range(first, last, 1)
            return
        for r in range(start, end, step):
            self.multiply_range(int(row_ptr[r]), int(row_ptr[r + 1]), 1)

    def multiply_range(self, start: int, end: int, step: int) -> None:
        """For method: apply non-zero entries ``start <= k < end`` to the output."""
        row, col, values, x, y = self.row, self.col, self.values, self.x, self.y
        if step == 1:
            # np.add.at handles repeated output rows correctly (unbuffered).
            np.add.at(y, row[start:end], values[start:end] * x[col[start:end]])
        else:
            indices = np.arange(start, end, step)
            np.add.at(y, row[indices], values[indices] * x[col[indices]])

    # -- case-specific partitioning ------------------------------------------------

    def row_block_bounds(self, num_threads: int) -> list[tuple[int, int]]:
        """Split the non-zero index range at row boundaries into ``num_threads`` blocks.

        Each block covers roughly ``nz / num_threads`` entries but never splits
        a row across blocks, so the scatter updates of different threads touch
        disjoint rows — the case-specific distribution the paper's Sparse row
        in Table 2 refers to.
        """
        bounds: list[tuple[int, int]] = []
        target = self.nz / num_threads
        begin = 0
        for t in range(num_threads):
            if t == num_threads - 1:
                end = self.nz
            else:
                end = int(round((t + 1) * target))
                # Move the split forward until the row changes.
                while 0 < end < self.nz and self.row[end] == self.row[end - 1]:
                    end += 1
            end = max(end, begin)
            bounds.append((begin, end))
            begin = end
        return bounds

    # -- validation ------------------------------------------------------------------

    def total(self) -> float:
        """Validation value: the sum of the output vector (JGF's ytotal)."""
        return float(self.y.sum())
