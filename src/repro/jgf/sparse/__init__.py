"""JGF SparseMatMult benchmark (sparse matrix-vector multiplication)."""

from repro.jgf.sparse.kernel import SparseMatmult
from repro.jgf.sparse.parallel import INFO, SIZES, RowBlockFor, build_aspects, run_aomp, run_sequential, run_threaded

__all__ = [
    "SparseMatmult",
    "RowBlockFor",
    "INFO",
    "SIZES",
    "build_aspects",
    "run_aomp",
    "run_sequential",
    "run_threaded",
]
