"""JGF RayTracer benchmark (sphere-scene renderer)."""

from repro.jgf.raytracer.kernel import RayTracer, Scene
from repro.jgf.raytracer.parallel import (
    INFO,
    SIZES,
    build_aspects,
    build_taskloop_aspects,
    run_aomp,
    run_aomp_taskloop,
    run_sequential,
    run_threaded,
)

__all__ = [
    "RayTracer",
    "Scene",
    "INFO",
    "SIZES",
    "build_aspects",
    "build_taskloop_aspects",
    "run_aomp",
    "run_aomp_taskloop",
    "run_sequential",
    "run_threaded",
]
