"""JGF RayTracer benchmark — 3D sphere scene renderer.

Renders an ``N x N`` image of a scene of spheres lit by a single point light,
producing a pixel checksum as the validation value (the JGF kernel validates
the same way).  The scanline loop is the benchmark's for method; scanlines
near the sphere cluster are more expensive than background lines, which is why
the JGF (and Table 2) parallelisation uses a cyclic distribution.

The per-thread checksum accumulator is the benchmark's thread-local field
(Table 2 lists TLF for RayTracer): the sequential base program accumulates
into ``self.checksum``; the AOmp parallelisation makes that field thread-local
and reduces it at the end of the render.

Rendering model (simplified from the JGF original, which adds shadows and
recursive reflections): ambient plus Lambertian diffuse and Blinn-Phong
specular shading from the single light, nearest-sphere intersection per ray.
The simplification keeps the per-scanline cost profile (dominated by the
ray/sphere intersection tests) while staying tractable in pure Python; both
the JGF-MT and AOmp versions render the identical scene, so the comparison
between parallelisation styles is unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.jgf.jgfrandom import JGFRandom


class Scene:
    """A grid of reflective spheres above a dark background, one point light."""

    def __init__(self, n_spheres_per_edge: int = 4, seed: int = 3111) -> None:
        rng = JGFRandom(seed)
        count = n_spheres_per_edge**2
        centers = []
        colours = []
        radii = []
        spacing = 3.0
        offset = -spacing * (n_spheres_per_edge - 1) / 2.0
        for i in range(n_spheres_per_edge):
            for j in range(n_spheres_per_edge):
                centers.append(
                    (
                        offset + i * spacing + rng.next_double() - 0.5,
                        offset + j * spacing + rng.next_double() - 0.5,
                        10.0 + 4.0 * rng.next_double(),
                    )
                )
                colours.append((0.3 + 0.7 * rng.next_double(), 0.3 + 0.7 * rng.next_double(), 0.3 + 0.7 * rng.next_double()))
                radii.append(1.0 + 0.5 * rng.next_double())
        self.centers = np.array(centers, dtype=np.float64)
        self.colours = np.array(colours, dtype=np.float64)
        self.radii = np.array(radii, dtype=np.float64)
        self.light = np.array([-10.0, 15.0, -5.0])
        self.eye = np.array([0.0, 0.0, -12.0])
        self.ambient = 0.12
        self.n_spheres = count


class RayTracer:
    """Refactored sequential ray tracer kernel."""

    def __init__(self, image_size: int, seed: int = 3111) -> None:
        if image_size < 4:
            raise ValueError("image must be at least 4x4")
        self.size = image_size
        self.scene = Scene(seed=seed)
        self.image = np.zeros((image_size, image_size), dtype=np.float64)
        #: accumulated pixel checksum — the thread-local field of Table 2
        self.checksum = 0.0

    # -- base program -----------------------------------------------------------

    def render(self) -> float:
        """Render every scanline (the parallel-region method)."""
        self.render_rows(0, self.size, 1)
        return self.checksum

    def render_rows(self, start: int, end: int, step: int) -> None:
        """For method: render scanlines ``start <= y < end``."""
        for y in range(start, end, step):
            row_value = self._render_row(y)
            self.checksum = self.checksum + row_value

    def _render_row(self, y: int) -> float:
        """Render scanline ``y``; returns the row's contribution to the checksum."""
        scene = self.scene
        n = self.size
        # Screen plane at z = 0 spanning [-8, 8] in both axes.
        span = 8.0
        ys = span * (2.0 * y / (n - 1) - 1.0)
        xs = span * (2.0 * np.arange(n) / (n - 1) - 1.0)
        pixels = np.stack([xs, np.full(n, ys), np.zeros(n)], axis=1)
        directions = pixels - scene.eye
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)

        nearest_t = np.full(n, np.inf)
        nearest_sphere = np.full(n, -1, dtype=np.int64)
        for s in range(scene.n_spheres):
            oc = scene.eye - scene.centers[s]
            b = 2.0 * directions @ oc
            c = float(oc @ oc) - scene.radii[s] ** 2
            disc = b * b - 4.0 * c
            hit = disc > 0.0
            sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
            t = (-b - sqrt_disc) / 2.0
            valid = hit & (t > 1e-6) & (t < nearest_t)
            nearest_t = np.where(valid, t, nearest_t)
            nearest_sphere = np.where(valid, s, nearest_sphere)

        shade = np.zeros(n)
        hit_mask = nearest_sphere >= 0
        if np.any(hit_mask):
            hit_idx = np.nonzero(hit_mask)[0]
            spheres = nearest_sphere[hit_idx]
            points = scene.eye + directions[hit_idx] * nearest_t[hit_idx, None]
            normals = points - scene.centers[spheres]
            normals /= np.linalg.norm(normals, axis=1, keepdims=True)
            to_light = scene.light - points
            to_light /= np.linalg.norm(to_light, axis=1, keepdims=True)
            diffuse = np.clip(np.sum(normals * to_light, axis=1), 0.0, None)
            half = to_light - directions[hit_idx]
            half /= np.linalg.norm(half, axis=1, keepdims=True)
            specular = np.clip(np.sum(normals * half, axis=1), 0.0, None) ** 16
            intensity = scene.ambient + 0.75 * diffuse + 0.4 * specular
            brightness = scene.colours[spheres].mean(axis=1)
            shade[hit_idx] = intensity * brightness
        self.image[y, :] = shade
        return float(shade.sum())

    # -- validation ------------------------------------------------------------------

    def image_checksum(self) -> float:
        """Checksum recomputed from the stored image (order-independent)."""
        return float(self.image.sum())
