"""RayTracer benchmark drivers: sequential, JGF-MT threaded, and AOmp versions."""

from __future__ import annotations

import numpy as np

from repro.core import ForCyclic, ParallelRegion, ReduceAspect, TaskLoop, ThreadLocalFieldAspect, Weaver, call
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, resolve_size, spawn_jgf_threads, timed
from repro.jgf.raytracer.kernel import RayTracer
from repro.runtime.threadlocal import SumReducer
from repro.runtime.trace import TraceRecorder

#: Problem sizes (image edge length).  JGF size A renders 150x150.
SIZES = {"tiny": 16, "small": 64, "a": 150}

INFO = BenchmarkInfo(
    name="RayTracer",
    refactorings=("M2FOR",),
    abstractions=("PR", "FOR(cyclic)", "TLF"),
    description="Sphere-scene ray tracer; cyclic scanline distribution, thread-local checksum.",
)


def run_sequential(size: "str | int" = "small") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n = resolve_size(SIZES, size)
    kernel = RayTracer(n)
    value, elapsed = timed(kernel.render)
    return BenchmarkResult("RayTracer", "sequential", size, value, elapsed)


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: explicit threads, cyclic rows, per-thread checksums merged by hand."""
    n = resolve_size(SIZES, size)
    kernel = RayTracer(n)
    partial = np.zeros(num_threads)

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        local = 0.0
        for y in range(thread_id, n, total_threads):
            local += kernel._render_row(y)  # noqa: SLF001 - invasive by design
        partial[thread_id] = local
        barrier.wait()

    def drive() -> float:
        spawn_jgf_threads(worker, num_threads)
        kernel.checksum = float(partial.sum())
        return kernel.checksum

    value, elapsed = timed(drive)
    return BenchmarkResult("RayTracer", "threaded", size, value, elapsed, num_threads=num_threads)


def build_aspects(num_threads: int, recorder: TraceRecorder | None = None) -> list:
    """The aspect modules composing the RayTracer parallelisation (Table 2 row)."""
    checksum_field = ThreadLocalFieldAspect("checksum", classes=[RayTracer], copy_value=float)
    return [
        checksum_field,
        ForCyclic(call("RayTracer.render_rows")),
        ReduceAspect(
            call("RayTracer.render_rows"),
            field_aspect=checksum_field,
            reducer=SumReducer(),
            include_shared=True,
        ),
        ParallelRegion(call("RayTracer.render"), threads=num_threads, recorder=recorder),
    ]


def run_aomp(size: "str | int" = "small", num_threads: int = 4, recorder: TraceRecorder | None = None) -> BenchmarkResult:
    """AOmp style: thread-local checksum + cyclic for aspect on the unchanged kernel.

    The aspects are woven before the kernel object is created so that the
    thread-local field introduction is in place when ``__init__`` assigns the
    initial checksum (load-time weaving order, as in the paper).
    """
    n = resolve_size(SIZES, size)
    weaver = Weaver()
    weaver.weave_all(build_aspects(num_threads, recorder), RayTracer)
    try:
        kernel = RayTracer(n)
        value, elapsed = timed(kernel.render)
    finally:
        weaver.unweave_all()
    return BenchmarkResult("RayTracer", "aomp", size, value, elapsed, num_threads=num_threads, recorder=recorder)


def build_taskloop_aspects(
    num_threads: int, recorder: TraceRecorder | None = None, grainsize: int | None = None
) -> list:
    """Work-stealing variant: the scanline loop becomes a taskloop.

    Scanlines crossing the sphere cluster cost far more than background
    lines — the canonical irregular workload.  The cyclic distribution of
    :func:`build_aspects` balances that statically by interleaving; the
    taskloop balances it dynamically by letting idle members steal the
    expensive tiles, which also survives *unpredictable* imbalance (e.g.
    one slow core) that no static schedule can anticipate.
    """
    checksum_field = ThreadLocalFieldAspect("checksum", classes=[RayTracer], copy_value=float)
    return [
        checksum_field,
        TaskLoop(call("RayTracer.render_rows"), grainsize=grainsize),
        ReduceAspect(
            call("RayTracer.render_rows"),
            field_aspect=checksum_field,
            reducer=SumReducer(),
            include_shared=True,
        ),
        ParallelRegion(call("RayTracer.render"), threads=num_threads, recorder=recorder),
    ]


def run_aomp_taskloop(
    size: "str | int" = "small",
    num_threads: int = 4,
    recorder: TraceRecorder | None = None,
    grainsize: int | None = None,
) -> BenchmarkResult:
    """AOmp taskloop style: stealable scanline tiles on the unchanged kernel."""
    n = resolve_size(SIZES, size)
    weaver = Weaver()
    weaver.weave_all(build_taskloop_aspects(num_threads, recorder, grainsize), RayTracer)
    try:
        kernel = RayTracer(n)
        value, elapsed = timed(kernel.render)
    finally:
        weaver.unweave_all()
    return BenchmarkResult(
        "RayTracer", "aomp-taskloop", size, value, elapsed, num_threads=num_threads, recorder=recorder
    )
