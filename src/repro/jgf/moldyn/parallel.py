"""MolDyn benchmark drivers: sequential, JGF-MT threaded, and AOmp versions."""

from __future__ import annotations

import numpy as np

from repro.jgf.common import BenchmarkInfo, BenchmarkResult, resolve_size, spawn_jgf_threads, timed
from repro.jgf.moldyn.kernel import MolDyn, fcc_particle_count
from repro.jgf.moldyn.variants import run_variant
from repro.runtime.trace import TraceRecorder

#: Problem sizes (particle counts, fcc lattices).  JGF size A is 2048 particles;
#: Figure 15 additionally uses 864, 8788, 19652, 256k and 500k.
SIZES = {"tiny": fcc_particle_count(3), "small": fcc_particle_count(4), "a": fcc_particle_count(6)}
MOVES = {"tiny": 2, "small": 2, "a": 2}

INFO = BenchmarkInfo(
    name="MolDyn",
    refactorings=("M2FOR", "3xM2M"),
    abstractions=("PR", "FOR(cyclic)", "2xTLF"),
    description="Lennard-Jones molecular dynamics; Newton's-third-law force race.",
)


def _moves_for(size: "str | int") -> int:
    return MOVES.get(size, 2) if isinstance(size, str) else 2


def run_sequential(size: "str | int" = "small") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n = resolve_size(SIZES, size)
    kernel = MolDyn(n, moves=_moves_for(size))
    value, elapsed = timed(kernel.runiters)
    return BenchmarkResult("MolDyn", "sequential", size, value, elapsed)


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: explicit threads, cyclic force distribution, per-thread force
    arrays reduced by hand — the invasive structure of the paper's Figure 3."""
    n = resolve_size(SIZES, size)
    moves = _moves_for(size)
    kernel = MolDyn(n, moves=moves)
    local_forces = [np.zeros((n, 3)) for _ in range(num_threads)]
    local_energy = [np.zeros(2) for _ in range(num_threads)]

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        for _ in range(moves):
            # Block-partitioned position update.
            per = (n + total_threads - 1) // total_threads
            start = min(thread_id * per, n)
            end = min(start + per, n)
            kernel.advance_positions(start, end, 1)
            barrier.wait()
            if thread_id == 0:
                kernel.zero_forces()
            my_forces = local_forces[thread_id]
            my_energy = local_energy[thread_id]
            my_forces[:] = 0.0
            my_energy[:] = 0.0
            barrier.wait()
            # Cyclic force sweep accumulating into the thread's private arrays
            # (the green code of the paper's Figure 3).
            for i in range(thread_id, n, total_threads):
                computed = kernel.pair_interactions(i)
                if computed is None:
                    continue
                j_indices, pair_forces, potential, virial = computed
                my_forces[i] += pair_forces.sum(axis=0)
                np.subtract.at(my_forces, j_indices, pair_forces)
                my_energy += (potential, virial)
            barrier.wait()
            if thread_id == 0:
                kernel.forces[:] = sum(local_forces)
                kernel.energy[:] = sum(local_energy)
            barrier.wait()
            kernel.update_velocities(start, end, 1)
            barrier.wait()
            kernel.measure_energy()
            barrier.wait()

    def drive() -> float:
        spawn_jgf_threads(worker, num_threads)
        return kernel.checksum()

    value, elapsed = timed(drive)
    return BenchmarkResult("MolDyn", "threaded", size, value, elapsed, num_threads=num_threads)


def run_aomp(
    size: "str | int" = "small",
    num_threads: int = 4,
    recorder: TraceRecorder | None = None,
    *,
    strategy: str = "jgf",
    lock_mode: str = "modelled",
    schedule: str | None = None,
) -> BenchmarkResult:
    """AOmp style: attach one of the Figure 15 strategy bundles to the unchanged kernel.

    ``schedule`` overrides the force sweep's cyclic distribution (``"auto"``
    defers the choice to the adaptive tuner).
    """
    n = resolve_size(SIZES, size)
    (kernel, value), elapsed = timed(
        lambda: run_variant(
            strategy,
            n,
            num_threads=num_threads,
            moves=_moves_for(size),
            recorder=recorder,
            lock_mode=lock_mode,
            schedule=schedule,
        )
    )
    return BenchmarkResult(
        "MolDyn",
        f"aomp-{strategy}" if strategy != "jgf" else "aomp",
        size,
        value,
        elapsed,
        num_threads=num_threads,
        recorder=recorder,
        details={"strategy": strategy},
    )
