"""JGF MolDyn benchmark — Lennard-Jones molecular dynamics.

A faithful (structurally) port of the JGF molecular-dynamics kernel that the
paper uses as its running example (Figures 1, 2, 3 and 14): ``n`` particles on
a face-centred-cubic lattice interact through a truncated Lennard-Jones
potential inside a periodic box; each timestep moves the particles, recomputes
the pairwise forces using Newton's third law (the source of the data race the
paper discusses), and updates the velocities.

Refactoring (paper Figure 14): the force loop has been moved into the for
method :meth:`compute_forces`; the position and velocity updates into the for
methods :meth:`advance_positions` and :meth:`update_velocities`; and the
per-particle force/energy *update* — the step whose synchronisation strategy
Figure 15 varies — into :meth:`apply_pair_forces`.  The parallelisation
variants in :mod:`repro.jgf.moldyn.variants` only attach aspects to these
methods; the code below stays purely sequential.
"""

from __future__ import annotations

import math

import numpy as np

from repro.jgf.jgfrandom import JGFRandom


def fcc_particle_count(cells_per_edge: int) -> int:
    """Number of particles of an fcc lattice with ``cells_per_edge`` cells per edge (4 m^3)."""
    return 4 * cells_per_edge**3


class MolDyn:
    """Refactored sequential molecular-dynamics kernel."""

    #: reduced-unit timestep and truncation radius (JGF-like magnitudes)
    DT = 0.002
    CUTOFF = 2.5

    def __init__(self, n_particles: int, moves: int = 4, density: float = 0.8, seed: int = 20000) -> None:
        if n_particles < 8:
            raise ValueError("need at least 8 particles")
        self.n = n_particles
        self.moves = moves
        self.density = density
        self.box = (n_particles / density) ** (1.0 / 3.0)
        self.positions = self._lattice_positions()
        self.velocities = self._initial_velocities(seed)
        self.forces = np.zeros((self.n, 3), dtype=np.float64)
        #: [potential energy, virial] accumulated during the force sweep
        self.energy = np.zeros(2, dtype=np.float64)
        self.ekin = 0.0

    # -- initialisation -----------------------------------------------------------

    def _lattice_positions(self) -> np.ndarray:
        """Place particles on an fcc-like lattice filling the periodic box."""
        per_edge = max(1, int(math.ceil((self.n / 4) ** (1.0 / 3.0))))
        base = np.array(
            [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]], dtype=np.float64
        )
        cell = self.box / per_edge
        positions = []
        for i in range(per_edge):
            for j in range(per_edge):
                for k in range(per_edge):
                    origin = np.array([i, j, k], dtype=np.float64)
                    for b in base:
                        positions.append((origin + b) * cell)
                        if len(positions) == self.n:
                            return np.array(positions)
        return np.array(positions[: self.n])

    def _initial_velocities(self, seed: int) -> np.ndarray:
        """Deterministic initial velocities with zero net momentum."""
        rng = JGFRandom(seed, left=-0.5, right=0.5)
        velocities = np.empty((self.n, 3), dtype=np.float64)
        for i in range(self.n):
            velocities[i, :] = rng.doubles(3)
        velocities -= velocities.mean(axis=0)
        return velocities

    # -- base program (refactored as in paper Figure 14) ----------------------------

    def runiters(self) -> float:
        """Run all timesteps (the parallel-region method); returns the validation value."""
        for _ in range(self.moves):
            self.advance_positions(0, self.n, 1)
            self.zero_forces()
            self.compute_forces(0, self.n, 1)
            self.update_velocities(0, self.n, 1)
            self.measure_energy()
        return self.checksum()

    def advance_positions(self, start: int, end: int, step: int) -> None:
        """For method: move particles ``start <= i < end`` and wrap them into the box."""
        dt = self.DT
        box = self.box
        positions = self.positions
        velocities = self.velocities
        positions[start:end:step] += dt * velocities[start:end:step]
        positions[start:end:step] %= box

    def zero_forces(self) -> None:
        """Reset the force and energy accumulators for the next force sweep."""
        self.forces = np.zeros((self.n, 3), dtype=np.float64)
        self.energy = np.zeros(2, dtype=np.float64)

    def compute_forces(self, start: int, end: int, step: int) -> None:
        """For method: accumulate the forces exerted on/by particles ``start <= i < end``.

        Each iteration ``i`` interacts with every particle ``j > i`` (Newton's
        third law halves the work but makes the per-iteration cost triangular
        and creates the write conflict on particle ``j``'s force).
        """
        for i in range(start, end, step):
            self.interact(i)

    def interact(self, i: int) -> None:
        """Compute and apply the interactions of particle ``i`` with all ``j > i``."""
        computed = self.pair_interactions(i)
        if computed is None:
            return
        j_indices, pair_forces, potential, virial = computed
        self.apply_pair_forces(i, j_indices, pair_forces, potential, virial)

    def pair_interactions(self, i: int):
        """Compute (but do not apply) the pair interactions of particle ``i``.

        Returns ``(j_indices, pair_forces, potential, virial)`` or ``None`` when
        the particle has no neighbour within the cutoff.  Separated from
        :meth:`apply_pair_forces` so the hand-written JGF-MT baseline can reuse
        the physics while accumulating into its own private arrays.
        """
        if i >= self.n - 1:
            return None
        positions = self.positions
        delta = positions[i] - positions[i + 1 :]
        # Minimum-image convention for the periodic box.
        delta -= self.box * np.round(delta / self.box)
        r2 = np.einsum("ij,ij->i", delta, delta)
        mask = (r2 < self.CUTOFF**2) & (r2 > 1e-12)
        if not np.any(mask):
            return None
        indices = np.nonzero(mask)[0]
        r2_sel = r2[indices]
        inv_r2 = 1.0 / r2_sel
        inv_r6 = inv_r2**3
        # Lennard-Jones force magnitude / r and potential (reduced units).
        force_over_r = 48.0 * inv_r2 * inv_r6 * (inv_r6 - 0.5)
        potential = 4.0 * inv_r6 * (inv_r6 - 1.0)
        pair_forces = delta[indices] * force_over_r[:, None]
        virial = float(np.sum(force_over_r * r2_sel))
        return indices + i + 1, pair_forces, float(potential.sum()), virial

    def apply_pair_forces(self, i: int, j_indices: np.ndarray, pair_forces: np.ndarray, potential: float, virial: float) -> None:
        """Apply the accumulated pair forces of particle ``i`` (the Figure 15 hook).

        Adds the net force to particle ``i``, subtracts each pair force from
        the corresponding particle ``j`` (Newton's third law — the shared
        write), and accumulates the potential energy and virial.  The three
        parallelisation strategies of Figure 15 differ only in how this method
        is synchronised (thread-local copies, a critical section, or
        per-particle locks) — all of them attach aspects here.
        """
        forces = self.forces
        forces[i] += pair_forces.sum(axis=0)
        np.subtract.at(forces, j_indices, pair_forces)
        self.energy = self.energy + np.array([potential, virial])

    def update_velocities(self, start: int, end: int, step: int) -> None:
        """For method: update the velocities of particles ``start <= i < end``."""
        self.velocities[start:end:step] += self.DT * self.forces[start:end:step]

    def measure_energy(self) -> float:
        """Compute the kinetic energy (same value on every thread; benign to replicate)."""
        self.ekin = float(0.5 * np.sum(self.velocities**2))
        return self.ekin

    # -- validation ------------------------------------------------------------------

    def checksum(self) -> float:
        """Validation value combining kinetic and potential energy."""
        return float(self.ekin + self.energy[0])

    def interaction_counts(self) -> np.ndarray:
        """Upper-triangle interaction count per outer iteration (the cost weights)."""
        return np.arange(self.n - 1, -1, -1, dtype=np.float64)
