"""MolDyn force sweep expressed as a ``sections`` construct.

The paper's Figure 15 strategies all parallelise the force sweep as a
work-shared *loop*.  This module ports the same sweep to the OpenMP
``sections`` construct instead: the particle range is split into a fixed
number of section bodies, each accumulating into its own private force/energy
buffer (the JGF thread-local idea, made explicit), and the team claims whole
sections through :func:`repro.runtime.worksharing.run_sections` — the
first-free member takes the next section, so the triangular per-particle cost
balances without a cyclic distribution.  A work-shared reduction then folds
the section buffers into the kernel's force array.

Because the buffers can live in :mod:`repro.runtime.shm` shared memory, the
same driver runs unchanged (and produces the same physics) on the serial,
thread and process backends.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.jgf.common import BenchmarkResult, resolve_size, timed
from repro.jgf.moldyn.kernel import MolDyn
from repro.jgf.moldyn.parallel import SIZES, _moves_for
from repro.runtime import context as rt_ctx
from repro.runtime import shm
from repro.runtime.backend import Backend, resolve_backend
from repro.runtime.scheduler import block_counts
from repro.runtime.team import parallel_region
from repro.runtime.worksharing import run_for, run_sections


class SectionedMolDyn(MolDyn):
    """MolDyn variant whose force sweep runs as per-block sections.

    ``num_sections`` section bodies each cover a contiguous particle block
    and accumulate into a private ``(n, 3)`` force buffer plus a private
    ``(potential, virial)`` pair — no write conflict, no locks.  With
    ``shared=True`` every mutable array lives in shared memory and the kernel
    declares itself ``process_safe``.
    """

    def __init__(self, n_particles: int, moves: int = 2, *, num_sections: int = 4, shared: bool = False, **kwargs) -> None:
        super().__init__(n_particles, moves=moves, **kwargs)
        if num_sections < 1:
            raise ValueError("need at least one section")
        self.num_sections = num_sections
        #: schedule for the work-shared (non-section) phases; ``None`` uses
        #: the configured default, ``"auto"`` defers to the adaptive tuner.
        self.spmd_schedule: "str | None" = None
        self.shared = bool(shared)
        self.process_safe = self.shared
        counts = block_counts(self.n, num_sections)
        bounds = []
        cursor = 0
        for count in counts:
            bounds.append((cursor, cursor + count))
            cursor += count
        self.section_bounds = tuple(bounds)
        section_forces = np.zeros((num_sections, self.n, 3), dtype=np.float64)
        section_energy = np.zeros((num_sections, 2), dtype=np.float64)
        if shared:
            self.positions = shm.as_shared(self.positions)
            self.velocities = shm.as_shared(self.velocities)
            self.forces = shm.as_shared(self.forces)
            self.section_forces = shm.as_shared(section_forces)
            self.section_energy = shm.as_shared(section_energy)
        else:
            self.section_forces = section_forces
            self.section_energy = section_energy

    def release_shared(self) -> None:
        """Free the shared-memory segments (no-op for in-process kernels)."""
        if not self.shared:
            return
        for array in (self.positions, self.velocities, self.forces, self.section_forces, self.section_energy):
            if shm.is_shared(array):
                array.close()

    # -- section bodies ---------------------------------------------------------

    def clear_sections(self, start: int, end: int, step: int) -> None:
        """For method: reset the accumulation buffers of sections [start, end)."""
        for s in range(start, end, step):
            self.section_forces[s][:] = 0.0
            self.section_energy[s][:] = 0.0

    def force_section(self, s: int) -> float:
        """One section of the force sweep: particles of block ``s``.

        Accumulates into the section's private buffers (the green code of the
        paper's Figure 3, with the thread-private array made an explicit
        per-section buffer); returns the section's potential energy.
        """
        lo, hi = self.section_bounds[s]
        forces = self.section_forces[s]
        energy = self.section_energy[s]
        for i in range(lo, hi):
            computed = self.pair_interactions(i)
            if computed is None:
                continue
            j_indices, pair_forces, potential, virial = computed
            forces[i] += pair_forces.sum(axis=0)
            np.subtract.at(forces, j_indices, pair_forces)
            energy += (potential, virial)
        return float(energy[0])

    def reduce_forces(self, start: int, end: int, step: int) -> None:
        """For method: fold the section buffers into the shared force array."""
        self.forces[start:end:step] = self.section_forces[:, start:end:step].sum(axis=0)

    # -- SPMD region body -------------------------------------------------------

    def run_spmd(self) -> None:
        """SPMD region body: the timestep loop with the force sweep as sections.

        Zero-argument and picklable, so the process backend can run it on its
        persistent worker pool.  Phase order per move (each phase ends in the
        preceding construct's implicit barrier): advance positions → clear
        section buffers → force sections (dynamic claim) → force reduction →
        velocity update → master energy bookkeeping.
        """
        n = self.n
        schedule = self.spmd_schedule
        for _ in range(self.moves):
            run_for(self.advance_positions, 0, n, 1, loop_name="MolDyn.advance_positions", schedule=schedule)
            run_for(self.clear_sections, 0, self.num_sections, 1, loop_name="MolDyn.clear_sections")
            run_sections(
                *[partial(self.force_section, s) for s in range(self.num_sections)],
                name="MolDyn.force_sections",
            )
            run_for(self.reduce_forces, 0, n, 1, loop_name="MolDyn.reduce_forces", schedule=schedule)
            run_for(self.update_velocities, 0, n, 1, loop_name="MolDyn.update_velocities", schedule=schedule)
            if rt_ctx.get_thread_id() == 0:
                # The master runs in the parent process, so these heap writes
                # are visible to the caller's checksum() on every backend.
                self.energy[:] = np.asarray(self.section_energy).sum(axis=0)
                # measure_energy inlined over the ndarray view: SharedArray
                # delegates attributes but not arithmetic dunders like **.
                self.ekin = float(0.5 * np.sum(np.asarray(self.velocities) ** 2))


def run_aomp_sections(
    size: "str | int" = "small",
    num_threads: int = 4,
    backend: "Backend | str" = "threads",
    *,
    num_sections: int | None = None,
    schedule: str | None = None,
) -> BenchmarkResult:
    """Run the sectioned MolDyn on ``backend`` and return the checksum result.

    ``num_sections`` defaults to twice the team size, giving the dynamic
    section claim room to balance the triangular cost profile (early
    particle blocks interact with many more neighbours than late ones).
    ``schedule`` overrides the work-shared phases' distribution (``"auto"``
    defers to the adaptive tuner); the section claim itself is always
    dynamic.
    """
    n = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend)
    sections = num_sections if num_sections is not None else max(1, 2 * num_threads)
    kernel = SectionedMolDyn(
        n,
        moves=_moves_for(size),
        num_sections=sections,
        shared=not backend_obj.supports_shared_locals,
    )
    kernel.spmd_schedule = schedule
    try:
        def drive() -> float:
            parallel_region(
                kernel.run_spmd,
                num_threads=num_threads,
                backend=backend_obj,
                name="MolDyn.sections",
            )
            return kernel.checksum()

        value, elapsed = timed(drive)
        return BenchmarkResult(
            "MolDyn",
            f"sections:{backend_obj.name}",
            size,
            value,
            elapsed,
            num_threads=num_threads,
            details={"backend": backend_obj.name, "sections": sections},
        )
    finally:
        kernel.release_shared()
