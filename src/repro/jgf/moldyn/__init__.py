"""JGF MolDyn benchmark (Lennard-Jones molecular dynamics, the paper's running example)."""

from repro.jgf.moldyn.kernel import MolDyn, fcc_particle_count
from repro.jgf.moldyn.parallel import INFO, SIZES, run_aomp, run_sequential, run_threaded
from repro.jgf.moldyn.sections import SectionedMolDyn, run_aomp_sections
from repro.jgf.moldyn.variants import STRATEGIES, LockPerParticleAspect, build_aspects, run_variant

__all__ = [
    "MolDyn",
    "SectionedMolDyn",
    "fcc_particle_count",
    "INFO",
    "SIZES",
    "STRATEGIES",
    "LockPerParticleAspect",
    "build_aspects",
    "run_variant",
    "run_aomp",
    "run_aomp_sections",
    "run_sequential",
    "run_threaded",
]
