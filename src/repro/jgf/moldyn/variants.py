"""MolDyn parallelisation strategies (paper Figure 15).

The paper's key demonstration is that *multiple parallelisation approaches can
be experimented with (and simultaneously supported) without modifying the base
program*: the JGF approach (a thread-local force array reduced at the end of
the sweep), a critical region around the force update, and one lock per
particle.  Each strategy below is expressed purely as a bundle of aspects
attached to the unchanged :class:`~repro.jgf.moldyn.kernel.MolDyn` kernel.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core import (
    BarrierAfterAspect,
    CriticalAspect,
    ForCyclic,
    ForStatic,
    ForWorkSharing,
    MethodAspect,
    ParallelRegion,
    ReduceAspect,
    ThreadLocalFieldAspect,
    Weaver,
    call,
)
from repro.core.weaver.joinpoint import JoinPoint
from repro.jgf.moldyn.kernel import MolDyn
from repro.runtime import context as ctx
from repro.runtime.locks import StripedLocks, global_locks
from repro.runtime.threadlocal import ArrayReducer
from repro.runtime.trace import EventKind, TraceRecorder

#: The three strategies compared in Figure 15.
STRATEGIES = ("jgf", "critical", "locks")


class LockPerParticleAspect(MethodAspect):
    """Fine-grained locking strategy: one (striped) lock per particle.

    Two modes:

    * ``exact`` — the advice performs the update itself, particle by particle,
      holding that particle's stripe lock (plus a dedicated lock for the
      energy accumulators).  Fully faithful but slow in pure Python; used by
      the correctness tests at small particle counts.
    * ``modelled`` — the advice performs the vectorised update under a single
      guard lock (so results stay correct despite the GIL-level interleaving)
      and records one aggregate ``LOCK_ACQUIRE`` trace event counting the
      per-particle acquisitions the strategy would perform; the performance
      model prices them individually.  Used for the large Figure 15 sizes.
    """

    abstraction = "LOCKS"

    def __init__(self, pointcut, *, stripes: int = 4096, mode: str = "modelled", name: str | None = None) -> None:
        super().__init__(pointcut, name=name)
        if mode not in ("exact", "modelled"):
            raise ValueError(f"unknown lock mode {mode!r}")
        self.mode = mode
        self.locks = StripedLocks(stripes)
        self.energy_lock_key = ("moldyn", "energy", id(self))
        self.guard_key = ("moldyn", "guard", id(self))

    def around(self, joinpoint: JoinPoint) -> Any:
        kernel: MolDyn = joinpoint.target
        i, j_indices, pair_forces, potential, virial = joinpoint.args
        context = ctx.current_context()
        if self.mode == "exact":
            return self._exact_update(kernel, int(i), j_indices, pair_forces, float(potential), float(virial), context)
        # Modelled mode: one guard lock keeps the numbers right; the trace
        # records the acquisitions a per-particle scheme would need.
        guard = global_locks.get(self.guard_key)
        with guard:
            result = joinpoint.proceed()
        if context is not None and context.team.tracing:
            context.team.record(
                EventKind.LOCK_ACQUIRE,
                key="per-particle",
                count=int(len(j_indices)) + 2,  # one per neighbour + particle i + energy
            )
        return result

    def _exact_update(self, kernel, i, j_indices, pair_forces, potential, virial, context) -> None:
        forces = kernel.forces
        acquisitions = 0
        with self.locks.acquire(i):
            forces[i] += pair_forces.sum(axis=0)
            acquisitions += 1
        for offset, j in enumerate(np.asarray(j_indices)):
            with self.locks.acquire(int(j)):
                forces[int(j)] -= pair_forces[offset]
                acquisitions += 1
        energy_lock = global_locks.get(self.energy_lock_key)
        with energy_lock:
            kernel.energy = kernel.energy + np.array([potential, virial])
            acquisitions += 1
        if context is not None and context.team.tracing:
            context.team.record(EventKind.LOCK_ACQUIRE, key="per-particle", count=acquisitions)


def _force_sweep_aspect(schedule: "str | None"):
    """The for aspect of the force sweep: cyclic by default, overridable.

    The triangular per-iteration cost (particle i interacts with the n-1-i
    particles above it) is priced by the experiments' cost models
    (LoopCost.weight_fn), so no weight function is attached here.  Passing
    ``schedule`` (e.g. ``"auto"``) swaps Figure 15's cyclic choice for an
    explicit one — ``"auto"`` lets the adaptive tuner discover the balanced
    schedule the paper hand-picks.
    """
    if schedule is None:
        return ForCyclic(call("MolDyn.compute_forces"))
    return ForWorkSharing(call("MolDyn.compute_forces"), schedule=schedule)


def _structure_aspects(num_threads: int, recorder: TraceRecorder | None, schedule: "str | None" = None) -> list:
    """Aspects common to every strategy: the region and the work-shared loops.

    The force sweep uses a cyclic distribution (the triangular cost profile of
    Newton's-third-law loops is why the paper picks cyclic for MolDyn).  A
    barrier after ``zero_forces`` keeps a fast thread from accumulating into
    arrays another thread is still about to reset.
    """
    return [
        ForStatic(call("MolDyn.advance_positions")),
        _force_sweep_aspect(schedule),
        ForStatic(call("MolDyn.update_velocities")),
        BarrierAfterAspect(call("MolDyn.zero_forces")),
        ParallelRegion(call("MolDyn.runiters"), threads=num_threads, recorder=recorder),
    ]


def build_aspects(
    strategy: str,
    num_threads: int,
    recorder: TraceRecorder | None = None,
    *,
    lock_mode: str = "modelled",
    schedule: str | None = None,
) -> list:
    """Build the aspect bundle for one Figure 15 strategy.

    The returned list is ordered innermost-first, ready for ``Weaver.weave_all``.
    ``schedule`` overrides the force sweep's cyclic distribution (``"auto"``
    defers to the adaptive tuner).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown MolDyn strategy {strategy!r}; expected one of {STRATEGIES}")

    structure = _structure_aspects(num_threads, recorder, schedule)
    if strategy == "critical":
        return [CriticalAspect(call("MolDyn.apply_pair_forces"), lock_id="moldyn-forces")] + structure
    if strategy == "locks":
        return [LockPerParticleAspect(call("MolDyn.apply_pair_forces"), mode=lock_mode)] + structure

    # "jgf": thread-local force array and energy accumulators, reduced once per sweep.
    forces_field = ThreadLocalFieldAspect("forces", classes=[MolDyn], copy_value=np.copy)
    energy_field = ThreadLocalFieldAspect("energy", classes=[MolDyn], copy_value=np.copy)
    return [
        forces_field,
        energy_field,
        ForStatic(call("MolDyn.advance_positions")),
        _force_sweep_aspect(schedule),
        ReduceAspect(
            call("MolDyn.compute_forces"),
            field_aspect=forces_field,
            reducer=ArrayReducer(),
            include_shared=False,
        ),
        ReduceAspect(
            call("MolDyn.compute_forces"),
            field_aspect=energy_field,
            reducer=ArrayReducer(),
            include_shared=False,
        ),
        ForStatic(call("MolDyn.update_velocities")),
        BarrierAfterAspect(call("MolDyn.zero_forces")),
        ParallelRegion(call("MolDyn.runiters"), threads=num_threads, recorder=recorder),
    ]


def run_variant(
    strategy: str,
    n_particles: int,
    *,
    num_threads: int = 4,
    moves: int = 2,
    recorder: TraceRecorder | None = None,
    lock_mode: str = "modelled",
    schedule: str | None = None,
):
    """Run one MolDyn parallelisation strategy and return (kernel, checksum).

    Weaving happens before the kernel is instantiated (load-time weaving
    order) so thread-local field introductions are in place for ``__init__``.
    """
    from repro.jgf.moldyn.kernel import MolDyn as Kernel

    weaver = Weaver()
    weaver.weave_all(
        build_aspects(strategy, num_threads, recorder, lock_mode=lock_mode, schedule=schedule), Kernel
    )
    try:
        kernel = Kernel(n_particles, moves=moves)
        checksum = kernel.runiters()
    finally:
        weaver.unweave_all()
    return kernel, checksum
