"""LUFact benchmark drivers: sequential, JGF-MT threaded, AOmp, and collapse(2)."""

from __future__ import annotations

from repro.core.annotation_weaver import weave_annotations
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, block_range, resolve_size, spawn_jgf_threads, timed
from repro.jgf.lufact.kernel import Linpack
from repro.runtime.backend import Backend, resolve_backend
from repro.runtime.team import parallel_region
from repro.runtime.trace import TraceRecorder

#: Problem sizes (matrix order).  JGF size A is 500x500.
SIZES = {"tiny": 32, "small": 128, "a": 400}

INFO = BenchmarkInfo(
    name="LUFact",
    refactorings=("M2FOR", "M2M"),
    abstractions=("PR", "FOR(block)", "4xBR", "2xMA"),
    description="Linpack LU factorisation with partial pivoting (the paper's case study).",
)

#: Residual threshold below which the factorisation/solve is considered correct
#: (Linpack's own criterion is residual < O(10); the kernels here stay well below).
RESIDUAL_THRESHOLD = 20.0


def run_sequential(size: "str | int" = "small") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n = resolve_size(SIZES, size)
    kernel = Linpack(n)
    residual, elapsed = timed(kernel.run)
    return BenchmarkResult("LUFact", "sequential", size, residual, elapsed, details={"valid": residual < RESIDUAL_THRESHOLD})


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: every thread runs the factorisation loop; thread 0 does the
    pivot handling; the column-update range is partitioned by hand; barriers are
    placed explicitly — the invasive structure of the JGF LUFact MT version."""
    n = resolve_size(SIZES, size)
    kernel = Linpack(n)

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        for k in range(n - 1):
            col_k = kernel.a[k]
            pivot = kernel.idamax(col_k, k)
            kernel.ipvt[k] = pivot
            if col_k[pivot] == 0.0:
                continue
            barrier.wait()                       # everyone finished the pivot search
            if thread_id == 0:
                kernel.interchange(k, pivot)
                kernel.dscal_pivot(k)
            barrier.wait()                       # multipliers ready
            start, end = block_range(k + 1, n, 1, thread_id, total_threads)
            kernel.reduce_all_cols(start, end, 1, k, pivot)
            barrier.wait()                       # columns updated before next k

    def drive() -> float:
        spawn_jgf_threads(worker, num_threads)
        kernel.ipvt[n - 1] = n - 1
        solution = kernel.dgesl()
        return kernel.residual(solution)

    residual, elapsed = timed(drive)
    return BenchmarkResult(
        "LUFact", "threaded", size, residual, elapsed, num_threads=num_threads, details={"valid": residual < RESIDUAL_THRESHOLD}
    )


def run_aomp(size: "str | int" = "small", num_threads: int = 4, recorder: TraceRecorder | None = None) -> BenchmarkResult:
    """AOmp annotation style (paper Figure 8): weave the annotations already on the kernel."""
    n = resolve_size(SIZES, size)
    kernel = Linpack(n)
    weaver = weave_annotations(Linpack, threads=num_threads, recorder=recorder)
    try:
        residual, elapsed = timed(kernel.run)
    finally:
        weaver.unweave_all()
    return BenchmarkResult(
        "LUFact",
        "aomp",
        size,
        residual,
        elapsed,
        num_threads=num_threads,
        recorder=recorder,
        details={"valid": residual < RESIDUAL_THRESHOLD},
    )


def run_collapse(
    size: "str | int" = "small",
    num_threads: int = 4,
    backend: "Backend | str" = "threads",
    *,
    schedule: str | None = None,
    chunk: int = 1,
) -> BenchmarkResult:
    """Runtime-API port with ``collapse(2)`` worksharing over columns × rows.

    The row elimination of each step ``k`` covers a shrinking ``(n-k-1)²``
    submatrix; a column-only distribution starves wide teams near the end of
    the factorisation, while the collapsed column × row space keeps every
    member busy.  Bit-identical to the sequential factorisation (the daxpy is
    elementwise, so 2D tiling cannot change a single rounding) on serial,
    thread and process backends; ``schedule`` may be any schedule spec,
    including ``"auto"``.
    """
    n = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend)
    kernel = Linpack(n, shared=not backend_obj.supports_shared_locals)
    kernel.spmd_schedule = schedule
    kernel.spmd_chunk = chunk
    try:

        def drive() -> float:
            parallel_region(
                kernel.run_spmd_collapse,
                num_threads=num_threads,
                backend=backend_obj,
                name="LUFact.collapse",
            )
            solution = kernel.dgesl()
            return kernel.residual(solution)

        residual, elapsed = timed(drive)
        return BenchmarkResult(
            "LUFact",
            f"collapse:{backend_obj.name}",
            size,
            residual,
            elapsed,
            num_threads=num_threads,
            details={
                "valid": residual < RESIDUAL_THRESHOLD,
                "backend": backend_obj.name,
                "schedule": schedule or "default",
            },
        )
    finally:
        kernel.release_shared()


def build_aspects(num_threads: int, recorder: TraceRecorder | None = None) -> list:
    """Aspects woven by the annotation session (used by the Table 2 accounting)."""
    from repro.core.annotation_weaver import AnnotationWeavingSession

    session = AnnotationWeavingSession(threads=num_threads, recorder=recorder)
    weaver = session.weave(Linpack)
    aspects = list(session.woven_aspects)
    weaver.unweave_all()
    return aspects
