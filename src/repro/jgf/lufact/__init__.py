"""JGF LUFact benchmark (Linpack LU factorisation — the paper's case study)."""

from repro.jgf.lufact.kernel import Linpack
from repro.jgf.lufact.parallel import INFO, SIZES, build_aspects, run_aomp, run_collapse, run_sequential, run_threaded

__all__ = ["Linpack", "INFO", "SIZES", "build_aspects", "run_aomp", "run_collapse", "run_sequential", "run_threaded"]
