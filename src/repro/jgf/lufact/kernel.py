"""JGF LUFact benchmark — Linpack LU factorisation and solve.

This is the paper's Section III.E case study.  The kernel factorises a dense
``n x n`` matrix with partial pivoting (``dgefa``) and solves the resulting
triangular systems (``dgesl``), exactly following the Java Linpack structure:
the matrix is stored column-wise (``a[j]`` is column ``j``), the pivot search
(``idamax``), column scaling (``dscal``) and column update (``daxpy``) mirror
the BLAS-1 routines of the original.

Refactoring (paper Figure 6): the row-elimination loop has been moved into the
for method :meth:`reduce_all_cols`, and the pivot interchange into
:meth:`interchange`, so the parallelisation of Figure 7/8 can be expressed
purely with aspects/annotations:

* ``dgefa`` is the parallel region;
* ``reduce_all_cols`` gets the for work-sharing construct and a barrier after;
* ``interchange`` and ``dscal_pivot`` are master-only with barriers.

The parallelisation below uses the *annotation style* (paper Figure 8): the
PyAOmpLib annotations are placed directly on the base program's methods.  They
attach metadata only — the class behaves exactly like the sequential program
until :func:`repro.core.annotation_weaver.weave_annotations` is applied by the
AOmp driver, and reverts to it when the weaver is unplugged.
"""

from __future__ import annotations

import numpy as np

from repro.core import annotations as aomp
from repro.jgf.jgfrandom import JGFRandom


class Linpack:
    """Refactored sequential Linpack kernel (column-major storage, as in Java)."""

    def __init__(self, n: int, seed: int = 1325) -> None:
        if n < 2:
            raise ValueError("matrix order must be at least 2")
        self.n = n
        rng = JGFRandom(seed, left=-0.5, right=0.5)
        # a[j] is column j (lda == n); generated column-by-column as in Linpack.
        self.a = np.empty((n, n), dtype=np.float64)
        for j in range(n):
            self.a[j, :] = rng.doubles(n)
        # Right-hand side chosen so the exact solution is all ones.
        self.b = self.a.sum(axis=0).copy()
        self.ipvt = np.zeros(n, dtype=np.int64)
        self.a_original = self.a.copy()
        self.b_original = self.b.copy()

    # -- BLAS-1 style helpers -------------------------------------------------------

    @staticmethod
    def idamax(column: np.ndarray, offset: int) -> int:
        """Index (absolute, within the column) of the largest magnitude entry from ``offset`` on."""
        return int(offset + np.argmax(np.abs(column[offset:])))

    @aomp.master
    @aomp.barrier_before
    @aomp.barrier_after
    def interchange(self, k: int, pivot: int) -> None:
        """Swap the pivot element into place in column ``k`` (paper's ``interchange``)."""
        column = self.a[k]
        if pivot != k:
            column[k], column[pivot] = column[pivot], column[k]

    @aomp.master
    @aomp.barrier_after
    def dscal_pivot(self, k: int) -> None:
        """Compute the multipliers for column ``k`` (paper's ``dscal`` call)."""
        column = self.a[k]
        t = -1.0 / column[k]
        column[k + 1 :] *= t

    # -- base program (refactored as in paper Figure 6) -------------------------------

    @aomp.parallel
    def dgefa(self) -> int:
        """LU factorisation with partial pivoting; returns 0 on success."""
        n = self.n
        info = 0
        for k in range(n - 1):
            col_k = self.a[k]
            pivot = self.idamax(col_k, k)
            self.ipvt[k] = pivot
            if col_k[pivot] == 0.0:
                info = k
                continue
            self.interchange(k, pivot)
            self.dscal_pivot(k)
            self.reduce_all_cols(k + 1, n, 1, k, pivot)
        self.ipvt[n - 1] = n - 1
        if self.a[n - 1][n - 1] == 0.0:
            info = n - 1
        return info

    @aomp.for_loop(schedule="staticBlock")
    @aomp.barrier_after
    def reduce_all_cols(self, start: int, end: int, step: int, k: int, pivot: int) -> None:
        """For method: eliminate rows below the pivot in columns [start, end).

        Each column ``j`` swaps its pivot element and then applies the daxpy
        update ``a[j][k+1:] += t * col_k[k+1:]`` — columns are independent, so
        the loop is the work-shared source of parallelism (paper Figure 6).
        """
        col_k = self.a[k]
        for j in range(start, end, step):
            col_j = self.a[j]
            t = col_j[pivot]
            if pivot != k:
                col_j[pivot] = col_j[k]
                col_j[k] = t
            col_j[k + 1 :] += t * col_k[k + 1 :]

    def dgesl(self) -> np.ndarray:
        """Solve ``A x = b`` using the factorisation (sequential, as in JGF)."""
        n = self.n
        b = self.b
        # Forward elimination applying the stored multipliers.
        for k in range(n - 1):
            pivot = int(self.ipvt[k])
            t = b[pivot]
            if pivot != k:
                b[pivot] = b[k]
                b[k] = t
            b[k + 1 :] += t * self.a[k][k + 1 :]
        # Back substitution.
        for k in range(n - 1, -1, -1):
            b[k] /= self.a[k][k]
            t = -b[k]
            b[:k] += t * self.a[k][:k]
        return b

    def run(self) -> float:
        """Factorise and solve; returns the residual norm (validation value)."""
        self.dgefa()
        solution = self.dgesl()
        return self.residual(solution)

    # -- validation ------------------------------------------------------------------

    def residual(self, solution: np.ndarray) -> float:
        """Normalised residual ||A x - b|| / (n ||A|| ||x||), as Linpack reports."""
        ax = self.a_original.T @ solution
        numerator = float(np.abs(ax - self.b_original).max())
        norm_a = float(np.abs(self.a_original).max())
        norm_x = float(np.abs(solution).max())
        eps = np.finfo(np.float64).eps
        return numerator / (self.n * norm_a * norm_x * eps)
