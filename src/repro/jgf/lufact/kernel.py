"""JGF LUFact benchmark — Linpack LU factorisation and solve.

This is the paper's Section III.E case study.  The kernel factorises a dense
``n x n`` matrix with partial pivoting (``dgefa``) and solves the resulting
triangular systems (``dgesl``), exactly following the Java Linpack structure:
the matrix is stored column-wise (``a[j]`` is column ``j``), the pivot search
(``idamax``), column scaling (``dscal``) and column update (``daxpy``) mirror
the BLAS-1 routines of the original.

Refactoring (paper Figure 6): the row-elimination loop has been moved into the
for method :meth:`reduce_all_cols`, and the pivot interchange into
:meth:`interchange`, so the parallelisation of Figure 7/8 can be expressed
purely with aspects/annotations:

* ``dgefa`` is the parallel region;
* ``reduce_all_cols`` gets the for work-sharing construct and a barrier after;
* ``interchange`` and ``dscal_pivot`` are master-only with barriers.

The parallelisation below uses the *annotation style* (paper Figure 8): the
PyAOmpLib annotations are placed directly on the base program's methods.  They
attach metadata only — the class behaves exactly like the sequential program
until :func:`repro.core.annotation_weaver.weave_annotations` is applied by the
AOmp driver, and reverts to it when the weaver is unplugged.
"""

from __future__ import annotations

import numpy as np

from repro.core import annotations as aomp
from repro.jgf.jgfrandom import JGFRandom
from repro.runtime import context as rt_ctx
from repro.runtime import shm
from repro.runtime.worksharing import run_for


class Linpack:
    """Refactored sequential Linpack kernel (column-major storage, as in Java).

    With ``shared=True`` the matrix, right-hand side and pivot vector live in
    :mod:`repro.runtime.shm` shared memory, making the kernel safe for the
    process backend (worker processes eliminate columns of the same physical
    matrix); the kernel then declares itself ``process_safe`` so its bound
    methods may be shipped to the persistent worker pool.
    """

    def __init__(self, n: int, seed: int = 1325, *, shared: bool = False) -> None:
        if n < 2:
            raise ValueError("matrix order must be at least 2")
        self.n = n
        self.shared = bool(shared)
        self.process_safe = self.shared
        rng = JGFRandom(seed, left=-0.5, right=0.5)
        # a[j] is column j (lda == n); generated column-by-column as in Linpack.
        a = np.empty((n, n), dtype=np.float64)
        for j in range(n):
            a[j, :] = rng.doubles(n)
        # Right-hand side chosen so the exact solution is all ones.
        b = a.sum(axis=0).copy()
        self.a = shm.as_shared(a) if shared else a
        self.b = shm.as_shared(b) if shared else b
        self.ipvt = shm.as_shared(np.zeros(n, dtype=np.int64)) if shared else np.zeros(n, dtype=np.int64)
        self.a_original = a.copy()
        self.b_original = b.copy()
        #: schedule/chunk used by the SPMD collapse driver (plain attributes,
        #: so the zero-arg region body stays a picklable bound method).
        self.spmd_schedule: "str | None" = None
        self.spmd_chunk = 1
        self._pivot_k = 0
        self._pivot_row = 0

    def release_shared(self) -> None:
        """Free the shared-memory segments (no-op for in-process kernels)."""
        for array in (self.a, self.b, self.ipvt):
            if shm.is_shared(array):
                array.close()

    # -- BLAS-1 style helpers -------------------------------------------------------

    @staticmethod
    def idamax(column: np.ndarray, offset: int) -> int:
        """Index (absolute, within the column) of the largest magnitude entry from ``offset`` on."""
        return int(offset + np.argmax(np.abs(column[offset:])))

    @aomp.master
    @aomp.barrier_before
    @aomp.barrier_after
    def interchange(self, k: int, pivot: int) -> None:
        """Swap the pivot element into place in column ``k`` (paper's ``interchange``)."""
        self.interchange_inline(k, pivot)

    @aomp.master
    @aomp.barrier_after
    def dscal_pivot(self, k: int) -> None:
        """Compute the multipliers for column ``k`` (paper's ``dscal`` call)."""
        self.dscal_pivot_inline(k)

    # -- base program (refactored as in paper Figure 6) -------------------------------

    @aomp.parallel
    def dgefa(self) -> int:
        """LU factorisation with partial pivoting; returns 0 on success."""
        n = self.n
        info = 0
        for k in range(n - 1):
            col_k = self.a[k]
            pivot = self.idamax(col_k, k)
            self.ipvt[k] = pivot
            if col_k[pivot] == 0.0:
                info = k
                continue
            self.interchange(k, pivot)
            self.dscal_pivot(k)
            self.reduce_all_cols(k + 1, n, 1, k, pivot)
        self.ipvt[n - 1] = n - 1
        if self.a[n - 1][n - 1] == 0.0:
            info = n - 1
        return info

    @aomp.for_loop(schedule="staticBlock")
    @aomp.barrier_after
    def reduce_all_cols(self, start: int, end: int, step: int, k: int, pivot: int) -> None:
        """For method: eliminate rows below the pivot in columns [start, end).

        Each column ``j`` swaps its pivot element and then applies the daxpy
        update ``a[j][k+1:] += t * col_k[k+1:]`` — columns are independent, so
        the loop is the work-shared source of parallelism (paper Figure 6).
        """
        col_k = self.a[k]
        for j in range(start, end, step):
            col_j = self.a[j]
            t = col_j[pivot]
            if pivot != k:
                col_j[pivot] = col_j[k]
                col_j[k] = t
            col_j[k + 1 :] += t * col_k[k + 1 :]

    # -- collapse(2) decomposition (nested-worksharing port) ---------------------------

    def pivot_swap_cols(self, start: int, end: int, step: int) -> None:
        """For method: apply the pending pivot swap in columns [start, end).

        The first phase of the collapsed elimination: the per-column swap of
        ``reduce_all_cols`` is hoisted out so the row-elimination phase can be
        split along *both* dimensions without racing the swap (a row segment
        containing the pivot row must observe the swapped value).  The pivot
        state is read from :meth:`publish_pivot`'s slots.
        """
        k = int(self._pivot_k)
        pivot = int(self._pivot_row)
        for j in range(start, end, step):
            col_j = self.a[j]
            t = col_j[pivot]
            if pivot != k:
                col_j[pivot] = col_j[k]
                col_j[k] = t

    def daxpy_cols_rows(
        self,
        col_start: int,
        col_end: int,
        col_step: int,
        row_start: int,
        row_end: int,
        row_step: int,
    ) -> None:
        """Collapsed for method: eliminate rows [row_start, row_end) of columns
        [col_start, col_end).

        The daxpy update is elementwise per ``(column, row)`` pair, so any
        tiling of the 2D space produces bit-identical results — exactly what
        ``collapse(2)`` needs.  The multiplier ``t`` is the post-swap
        ``col_j[k]`` (phase one has completed by the time this runs).
        """
        k = int(self._pivot_k)
        col_k = self.a[k]
        for j in range(col_start, col_end, col_step):
            col_j = self.a[j]
            col_j[row_start:row_end:row_step] += col_j[k] * col_k[row_start:row_end:row_step]

    def publish_pivot(self, k: int, pivot: int) -> None:
        """Record the current elimination step's pivot state (master only).

        Stored on the instance (shared heap for in-process teams; worker
        processes recompute it — see :meth:`run_spmd_collapse`).
        """
        self._pivot_k = k
        self._pivot_row = pivot

    def run_spmd_collapse(self) -> None:
        """SPMD region body: LU factorisation with ``collapse(2)`` worksharing.

        Every member executes the same ``k`` loop; the pivot search is
        replicated (deterministic — all members agree), the master performs
        the pivot bookkeeping of the paper's master phases, and the row
        elimination is workshared over the *combined* column × row space so a
        wide team stays busy even for the small trailing submatrices that
        starve a column-only distribution.  Zero-argument and picklable, so
        the process backend can run it on its persistent worker pool; the
        schedule comes from :attr:`spmd_schedule`/:attr:`spmd_chunk`.
        """
        n = self.n
        schedule = self.spmd_schedule
        chunk = self.spmd_chunk
        team = rt_ctx.current_team()
        for k in range(n - 1):
            col_k = self.a[k]
            pivot = self.idamax(col_k, k)
            # Replicated bookkeeping: every member computes the identical
            # pivot and writes the same values (workers cannot see the
            # master's heap under the process backend).
            self.publish_pivot(k, pivot)
            if col_k[pivot] == 0.0:
                self.ipvt[k] = pivot
                continue
            if team is not None:
                # Every member has finished its (replicated) pivot search of
                # column k before the master mutates it — the counterpart of
                # the annotated version's @BarrierBefore on interchange.
                team.barrier(label="lufact:pivot")
            if rt_ctx.get_thread_id() == 0:
                self.ipvt[k] = pivot
                self.interchange_inline(k, pivot)
                self.dscal_pivot_inline(k)
            if team is not None:
                team.barrier(label="lufact:multipliers")
            run_for(
                self.pivot_swap_cols, k + 1, n, 1,
                loop_name="Linpack.pivot_swap_cols",
                schedule=schedule, chunk=chunk,
            )
            run_for(
                self.daxpy_cols_rows, k + 1, n, 1, k + 1, n, 1,
                collapse=2,
                loop_name="Linpack.daxpy_cols_rows",
                schedule=schedule, chunk=chunk,
            )
        if rt_ctx.get_thread_id() == 0:
            self.ipvt[n - 1] = n - 1

    def interchange_inline(self, k: int, pivot: int) -> None:
        """Pivot interchange without the master/barrier annotations.

        The SPMD driver sequences phases itself; calling the annotated
        :meth:`interchange` from it would nest a second master construct.
        """
        column = self.a[k]
        if pivot != k:
            column[k], column[pivot] = column[pivot], column[k]

    def dscal_pivot_inline(self, k: int) -> None:
        """Multiplier computation without the master/barrier annotations."""
        column = self.a[k]
        t = -1.0 / column[k]
        column[k + 1 :] *= t

    def dgesl(self) -> np.ndarray:
        """Solve ``A x = b`` using the factorisation (sequential, as in JGF)."""
        n = self.n
        b = self.b
        # Forward elimination applying the stored multipliers.
        for k in range(n - 1):
            pivot = int(self.ipvt[k])
            t = b[pivot]
            if pivot != k:
                b[pivot] = b[k]
                b[k] = t
            b[k + 1 :] += t * self.a[k][k + 1 :]
        # Back substitution.
        for k in range(n - 1, -1, -1):
            b[k] /= self.a[k][k]
            t = -b[k]
            b[:k] += t * self.a[k][:k]
        return b

    def run(self) -> float:
        """Factorise and solve; returns the residual norm (validation value)."""
        self.dgefa()
        solution = self.dgesl()
        return self.residual(solution)

    # -- validation ------------------------------------------------------------------

    def residual(self, solution: np.ndarray) -> float:
        """Normalised residual ||A x - b|| / (n ||A|| ||x||), as Linpack reports."""
        ax = self.a_original.T @ solution
        numerator = float(np.abs(ax - self.b_original).max())
        norm_a = float(np.abs(self.a_original).max())
        norm_x = float(np.abs(solution).max())
        eps = np.finfo(np.float64).eps
        return numerator / (self.n * norm_a * norm_x * eps)
