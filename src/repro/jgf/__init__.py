"""Python port of the Java Grande Forum (JGF) benchmarks used in the paper's evaluation.

Eight benchmarks (Sections 2 and 3 of the JGF suite, matching the paper's
Figure 13): Crypt, LUFact, Series, SOR, SparseMatMult, MolDyn, MonteCarlo and
RayTracer.  Each benchmark package exposes

* ``run_sequential(size)`` — the refactored sequential base program;
* ``run_threaded(size, num_threads)`` — the invasive JGF-MT parallelisation;
* ``run_aomp(size, num_threads, recorder)`` — the AOmp (aspect) parallelisation;
* ``build_aspects(num_threads)`` — the aspect bundle (Table 2 accounting);
* ``INFO`` — refactorings and abstractions as reported in the paper's Table 2;
* ``SIZES`` — named problem sizes ("tiny" for tests, "small" default, "a").
"""

from repro.jgf import crypt, lufact, moldyn, montecarlo, raytracer, series, sor, sparse
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, values_match

#: Benchmark registry in the order the paper's Figure 13 lists them.
BENCHMARKS = {
    "Crypt": crypt,
    "LUFact": lufact,
    "Series": series,
    "SOR": sor,
    "Sparse": sparse,
    "MolDyn": moldyn,
    "MonteCarlo": montecarlo,
    "RayTracer": raytracer,
}

__all__ = [
    "BENCHMARKS",
    "BenchmarkInfo",
    "BenchmarkResult",
    "values_match",
    "crypt",
    "lufact",
    "moldyn",
    "montecarlo",
    "raytracer",
    "series",
    "sor",
    "sparse",
]
