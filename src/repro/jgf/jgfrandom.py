"""Deterministic linear-congruential random generator.

The Java Grande Forum benchmarks use a simple LCG ("Random" from the original
Linpack/Scimark sources) so that every language port produces the same input
data and validation values.  This is a faithful Python port of that generator
(48-bit arithmetic like ``java.util.Random`` is *not* used; JGF's own
generator is the 2^31-1 Park-Miller style generator below).
"""

from __future__ import annotations

import numpy as np


class JGFRandom:
    """JGF/Scimark-style linear congruential generator producing doubles in [left, right)."""

    _M = 2147483647  # 2^31 - 1
    _A = 16807       # Park-Miller multiplier

    def __init__(self, seed: int = 123456789, left: float = 0.0, right: float = 1.0) -> None:
        if seed <= 0:
            raise ValueError("seed must be positive")
        self._seed = seed % self._M or 1
        self.left = left
        self.width = right - left

    def next_int(self) -> int:
        """Next raw integer state in [1, 2^31 - 2]."""
        self._seed = (self._A * self._seed) % self._M
        return self._seed

    def next_double(self) -> float:
        """Next double in [left, right)."""
        return self.left + self.width * (self.next_int() / self._M)

    def doubles(self, count: int) -> np.ndarray:
        """Vector of ``count`` doubles in [left, right)."""
        out = np.empty(count, dtype=np.float64)
        for i in range(count):
            out[i] = self.next_double()
        return out

    def ints(self, count: int, modulo: int) -> np.ndarray:
        """Vector of ``count`` non-negative integers below ``modulo``."""
        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            out[i] = self.next_int() % modulo
        return out
