"""SOR benchmark drivers: sequential, JGF-MT threaded, and AOmp versions."""

from __future__ import annotations

from repro.core import ForStatic, ParallelRegion, Weaver, call
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, block_range, resolve_size, spawn_jgf_threads, timed
from repro.jgf.sor.kernel import SORBenchmark
from repro.runtime.trace import TraceRecorder

#: Problem sizes (grid edge length).  JGF size A is 1000x1000, 100 iterations.
SIZES = {"tiny": 16, "small": 64, "a": 256}
ITERATIONS = {"tiny": 4, "small": 10, "a": 50}

INFO = BenchmarkInfo(
    name="SOR",
    refactorings=("M2FOR", "M2M"),
    abstractions=("PR", "FOR(block)", "BR"),
    description="Red/black successive over-relaxation; barrier between half-sweeps.",
)


def _iterations_for(size: "str | int") -> int:
    return ITERATIONS.get(size, 10) if isinstance(size, str) else 10


def run_sequential(size: "str | int" = "small") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n = resolve_size(SIZES, size)
    kernel = SORBenchmark(n, iterations=_iterations_for(size))
    value, elapsed = timed(kernel.run)
    return BenchmarkResult("SOR", "sequential", size, value, elapsed)


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: each thread relaxes a block of rows; barrier per half-sweep."""
    n = resolve_size(SIZES, size)
    iterations = _iterations_for(size)
    kernel = SORBenchmark(n, iterations=iterations)

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        for _ in range(iterations):
            for colour_start in (1, 2):
                start, end = block_range(colour_start, kernel.n - 1, 2, thread_id, total_threads)
                kernel.relax_rows(start, end, 2)
                barrier.wait()

    _, elapsed = timed(lambda: spawn_jgf_threads(worker, num_threads))
    return BenchmarkResult("SOR", "threaded", size, kernel.total(), elapsed, num_threads=num_threads)


def build_aspects(num_threads: int, recorder: TraceRecorder | None = None) -> list:
    """The aspect modules composing the SOR parallelisation (Table 2 row).

    The implicit end-of-loop barrier of the for aspect provides the
    half-sweep synchronisation the JGF version codes by hand (Table 2's BR).
    """
    return [
        ForStatic(call("SORBenchmark.relax_rows")),
        ParallelRegion(call("SORBenchmark.run"), threads=num_threads, recorder=recorder),
    ]


def run_aomp(size: "str | int" = "small", num_threads: int = 4, recorder: TraceRecorder | None = None) -> BenchmarkResult:
    """AOmp style: weave the aspects onto the unchanged sequential kernel."""
    n = resolve_size(SIZES, size)
    kernel = SORBenchmark(n, iterations=_iterations_for(size))
    weaver = Weaver()
    weaver.weave_all(build_aspects(num_threads, recorder), SORBenchmark)
    try:
        value, elapsed = timed(kernel.run)
    finally:
        weaver.unweave_all()
    return BenchmarkResult("SOR", "aomp", size, value, elapsed, num_threads=num_threads, recorder=recorder)
