"""SOR benchmark drivers: sequential, JGF-MT threaded, and AOmp versions."""

from __future__ import annotations

from repro.core import ForStatic, ForWorkSharing, ParallelRegion, Weaver, call
from repro.jgf.common import BenchmarkInfo, BenchmarkResult, block_range, resolve_size, spawn_jgf_threads, timed
from repro.jgf.sor.kernel import SORBenchmark
from repro.runtime.backend import Backend, resolve_backend
from repro.runtime.team import parallel_region
from repro.runtime.trace import TraceRecorder

#: Problem sizes (grid edge length).  JGF size A is 1000x1000, 100 iterations.
SIZES = {"tiny": 16, "small": 64, "a": 256}
ITERATIONS = {"tiny": 4, "small": 10, "a": 50}

INFO = BenchmarkInfo(
    name="SOR",
    refactorings=("M2FOR", "M2M"),
    abstractions=("PR", "FOR(block)", "BR"),
    description="Red/black successive over-relaxation; barrier between half-sweeps.",
)


def _iterations_for(size: "str | int") -> int:
    return ITERATIONS.get(size, 10) if isinstance(size, str) else 10


def run_sequential(size: "str | int" = "small", *, kernel: str = "python") -> BenchmarkResult:
    """Run the plain sequential base program."""
    n = resolve_size(SIZES, size)
    bench = SORBenchmark(n, iterations=_iterations_for(size), kernel=kernel)
    value, elapsed = timed(bench.run)
    return BenchmarkResult("SOR", "sequential", size, value, elapsed)


def run_threaded(size: "str | int" = "small", num_threads: int = 4) -> BenchmarkResult:
    """JGF-MT style: each thread relaxes a block of rows; barrier per half-sweep."""
    n = resolve_size(SIZES, size)
    iterations = _iterations_for(size)
    kernel = SORBenchmark(n, iterations=iterations)

    def worker(thread_id: int, total_threads: int, barrier) -> None:
        for _ in range(iterations):
            for colour_start in (1, 2):
                start, end = block_range(colour_start, kernel.n - 1, 2, thread_id, total_threads)
                kernel.relax_rows(start, end, 2)
                barrier.wait()

    _, elapsed = timed(lambda: spawn_jgf_threads(worker, num_threads))
    return BenchmarkResult("SOR", "threaded", size, kernel.total(), elapsed, num_threads=num_threads)


def build_aspects(
    num_threads: int,
    recorder: TraceRecorder | None = None,
    backend: "Backend | str | None" = None,
    schedule: str | None = None,
) -> list:
    """The aspect modules composing the SOR parallelisation (Table 2 row).

    The implicit end-of-loop barrier of the for aspect provides the
    half-sweep synchronisation the JGF version codes by hand (Table 2's BR).
    ``schedule`` overrides the Table 2 static-block choice — ``"auto"``
    hands the decision to the adaptive tuner (:mod:`repro.tune`).
    """
    if schedule is None:
        for_aspect = ForStatic(call("SORBenchmark.relax_rows"))
    else:
        for_aspect = ForWorkSharing(call("SORBenchmark.relax_rows"), schedule=schedule)
    return [
        for_aspect,
        ParallelRegion(call("SORBenchmark.run"), threads=num_threads, recorder=recorder, backend=backend),
    ]


def run_aomp(
    size: "str | int" = "small",
    num_threads: int = 4,
    recorder: TraceRecorder | None = None,
    backend: "Backend | str | None" = None,
    schedule: str | None = None,
) -> BenchmarkResult:
    """AOmp style: weave the aspects onto the unchanged sequential kernel."""
    n = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend) if backend is not None else None
    # Shared memory whenever members do not share a Python heap (process and
    # subinterpreter teams alike).
    shared = bool(backend_obj is not None and not backend_obj.supports_shared_locals)
    kernel = SORBenchmark(n, iterations=_iterations_for(size), shared=shared)
    try:
        weaver = Weaver()
        weaver.weave_all(build_aspects(num_threads, recorder, backend_obj, schedule), SORBenchmark)
        try:
            value, elapsed = timed(kernel.run)
        finally:
            weaver.unweave_all()
        return BenchmarkResult("SOR", "aomp", size, value, elapsed, num_threads=num_threads, recorder=recorder)
    finally:
        kernel.release_shared()


def run_backend(
    size: "str | int" = "small",
    num_threads: int = 4,
    backend: "Backend | str" = "threads",
    *,
    kernel: str = "python",
    on_failure: "str | None" = None,
) -> BenchmarkResult:
    """Runtime-API port: execute :meth:`SORBenchmark.run_spmd` on ``backend``.

    ``kernel="vector"`` relaxes whole row blocks per chunk in one numpy
    expression (bit-identical results, GIL released inside the update).
    ``on_failure`` forwards the recovery policy; the relaxation mutates the
    grid in place across sweeps, so the body is not marked ``retry_safe`` —
    a replay request is refused rather than over-relaxing the grid.
    """
    n = resolve_size(SIZES, size)
    backend_obj = resolve_backend(backend)
    bench = SORBenchmark(
        n, iterations=_iterations_for(size), shared=not backend_obj.supports_shared_locals, kernel=kernel
    )
    try:
        value, elapsed = timed(
            lambda: parallel_region(
                bench.run_spmd,
                num_threads=num_threads,
                backend=backend_obj,
                name="SOR.spmd",
                on_failure=on_failure,
            )
        )
        return BenchmarkResult(
            "SOR",
            f"backend:{backend_obj.name}",
            size,
            bench.total(),
            elapsed,
            num_threads=num_threads,
            details={"backend": backend_obj.name, "kernel": kernel},
        )
    finally:
        bench.release_shared()
