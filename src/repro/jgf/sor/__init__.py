"""JGF SOR benchmark (red/black successive over-relaxation)."""

from repro.jgf.sor.kernel import SORBenchmark
from repro.jgf.sor.parallel import INFO, SIZES, build_aspects, run_aomp, run_sequential, run_threaded

__all__ = ["SORBenchmark", "INFO", "SIZES", "build_aspects", "run_aomp", "run_sequential", "run_threaded"]
