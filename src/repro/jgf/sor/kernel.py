"""JGF SOR benchmark — red/black successive over-relaxation.

Performs ``iterations`` Jacobi-like successive over-relaxation sweeps over a
random grid ``G`` (omega = 1.25), using the red/black ordering of the JGF
multi-threaded version: each sweep relaxes first the odd rows and then the
even rows, with a synchronisation between the two half-sweeps because every
row update reads its neighbouring rows.

The row loop of each half-sweep is the for method (:meth:`relax_rows`); its
``step`` parameter is 2, so the same method serves both colours by changing
the ``start`` parameter — a natural fit for the paper's for-method convention.
"""

from __future__ import annotations

import numpy as np

from repro.jgf.jgfrandom import JGFRandom
from repro.runtime import shm
from repro.runtime.worksharing import run_for


class SORBenchmark:
    """Refactored sequential SOR kernel.

    With ``shared=True`` the grid lives in :mod:`repro.runtime.shm` shared
    memory, making the kernel safe for the process backend (worker processes
    relax rows of the same physical grid; the red/black barrier between
    half-sweeps is the team's cross-process barrier).
    """

    OMEGA = 1.25

    #: selectable chunk-body implementations (see ``kernel=``)
    KERNELS = ("python", "vector")

    def __init__(
        self,
        grid_size: int,
        iterations: int = 20,
        seed: int = 10101010,
        *,
        shared: bool = False,
        kernel: str = "python",
    ) -> None:
        if grid_size < 3:
            raise ValueError("grid must be at least 3x3")
        if kernel not in self.KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {self.KERNELS}")
        self.n = grid_size
        self.iterations = iterations
        self.shared = bool(shared)
        self.process_safe = self.shared
        self.kernel = kernel
        rng = JGFRandom(seed, left=-0.5, right=0.5)
        # Row-by-row generation keeps the values identical regardless of the
        # parallelisation applied later (data is created sequentially).
        grid = np.empty((grid_size, grid_size), dtype=np.float64)
        for i in range(grid_size):
            grid[i, :] = rng.doubles(grid_size)
        self.grid = shm.as_shared(grid) if shared else grid

    def release_shared(self) -> None:
        """Free the shared-memory segment (no-op for in-process grids)."""
        if shm.is_shared(self.grid):
            self.grid.close()

    # -- base program -----------------------------------------------------------

    def run(self) -> float:
        """Run all relaxation sweeps (the parallel-region method)."""
        for _ in range(self.iterations):
            # Odd (red) rows first, then even (black) rows: updates within one
            # colour are independent, so each half-sweep can be work-shared.
            self.relax_rows(1, self.n - 1, 2)
            self.relax_rows(2, self.n - 1, 2)
        return self.total()

    def run_spmd(self) -> float:
        """SPMD region body using the runtime work-sharing API directly.

        The implicit barrier after each work-shared half-sweep provides the
        red/black synchronisation; picklable, so the process backend can run
        it on its persistent worker pool.
        """
        for _ in range(self.iterations):
            run_for(self.relax_rows, 1, self.n - 1, 2, loop_name="SOR.red")
            run_for(self.relax_rows, 2, self.n - 1, 2, loop_name="SOR.black")
        return self.total()

    def relax_rows(self, start: int, end: int, step: int) -> None:
        """For method: relax rows ``start, start+step, ...`` below ``end``."""
        if self.kernel == "vector":
            self._relax_rows_vector(start, end, step)
        else:
            self._relax_rows_python(start, end, step)

    def _relax_rows_python(self, start: int, end: int, step: int) -> None:
        omega = self.OMEGA
        one_minus_omega = 1.0 - omega
        grid = self.grid
        for i in range(start, end, step):
            grid[i, 1:-1] = (
                omega * 0.25 * (grid[i - 1, 1:-1] + grid[i + 1, 1:-1] + grid[i, :-2] + grid[i, 2:])
                + one_minus_omega * grid[i, 1:-1]
            )

    def _relax_rows_vector(self, start: int, end: int, step: int) -> None:
        """Vectorised chunk body: relax the whole same-colour row block at once.

        Rows of one colour only read rows of the *other* colour, so the block
        update is independent per row and the strided 2-D expression computes
        exactly the per-element arithmetic of the per-row body (same
        operations, same order) — results are bit-identical to the
        pure-Python path under any chunking.  The win is dropping the
        per-row Python loop: one numpy expression per chunk, GIL released
        inside it.
        """
        if start >= end:
            return
        omega = self.OMEGA
        one_minus_omega = 1.0 - omega
        grid = self.grid.np if shm.is_shared(self.grid) else self.grid
        rows = grid[start:end:step, 1:-1]
        rows[...] = (
            omega
            * 0.25
            * (
                grid[start - 1 : end - 1 : step, 1:-1]
                + grid[start + 1 : end + 1 : step, 1:-1]
                + grid[start:end:step, :-2]
                + grid[start:end:step, 2:]
            )
            + one_minus_omega * rows
        )

    # -- validation ------------------------------------------------------------------

    def total(self) -> float:
        """Validation value: the sum over the interior of the grid (JGF's Gtotal)."""
        return float(self.grid[1:-1, 1:-1].sum())
