"""Metric exposition: snapshots, Prometheus text format, HTTP scrape endpoint.

Three surfaces over the same registry snapshot:

* :func:`stats` — the programmatic view (plain dicts, JSON-friendly);
* :func:`render_prometheus` — text-format 0.0.4, the exchange format every
  scraper understands;
* :func:`ensure_exporter` — an opt-in stdlib ``ThreadingHTTPServer`` on
  ``AOMP_METRICS_PORT`` serving ``GET /metrics``, started idempotently from
  region entry when metrics are on.  Worker processes suppress it
  (:func:`suppress_exporter`) — only the master, which aggregates team-wide
  counts, has anything worth scraping — and a failed bind (port already
  taken) disables the endpoint with one warning instead of failing regions.
"""

from __future__ import annotations

import os
import threading
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import repro.obs.registry as _registry_mod
from repro.obs.registry import COUNTER_SPECS, GAUGE_HELP, HISTOGRAM_SPECS

#: scrape endpoints bind loopback only, like the socket data plane.
EXPORTER_HOST = "127.0.0.1"

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def stats() -> "dict[str, Any]":
    """A merged programmatic snapshot of every counter, histogram and gauge.

    Gauge label sets are rendered as ``{label="value", ...}`` strings (empty
    string for the unlabelled sample), so the result is JSON-serialisable.
    The ``meta`` section carries the scrape endpoint's *actually bound* port
    (``None`` when no endpoint is running) — with ``AOMP_METRICS_PORT=0`` the
    kernel picks an ephemeral port, and this is the race-free way for the
    embedding program to discover it.
    """
    snapshot = _registry_mod.get_registry().snapshot()
    gauges: "dict[str, dict[str, float]]" = {}
    for name, samples in snapshot["gauges"].items():
        gauges[name] = {_label_string(key): value for key, value in samples.items()}
    snapshot["gauges"] = gauges
    snapshot["meta"] = {"exporter_port": exporter_port(), "pid": os.getpid()}
    return snapshot


def _label_string(key: "tuple[tuple[str, str], ...]") -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{_escape(v)}"' for k, v in key) + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_bound(bound: float) -> str:
    text = f"{bound:g}"
    return text


def render_prometheus() -> str:
    """The current snapshot as a Prometheus text-format 0.0.4 document."""
    reg = _registry_mod.get_registry()
    totals = reg._summed()
    lines: "list[str]" = []
    for name, help_text, label, values in COUNTER_SPECS:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        if label is None:
            lines.append(f"{name} {totals[_registry_mod.counter_slot(name)]}")
        else:
            for value in values:
                lines.append(
                    f'{name}{{{label}="{value}"}} {totals[_registry_mod.counter_slot(name, value)]}'
                )
    nb = len(reg.buckets) + 1
    for name, help_text in HISTOGRAM_SPECS:
        base = reg.hist_base(name)
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for index, bound in enumerate(reg.buckets):
            cumulative += totals[base + index]
            lines.append(f'{name}_bucket{{le="{_format_bound(bound)}"}} {cumulative}')
        cumulative += totals[base + nb - 1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {totals[base + nb] / 1e9:.9f}")
        lines.append(f"{name}_count {cumulative}")
    seen_gauges: "set[str]" = set()
    for name, key, value in sorted(reg.gauge_samples()):
        if name not in seen_gauges:
            seen_gauges.add(name)
            help_text = GAUGE_HELP.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_label_string(key)} {value:g}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# HTTP scrape endpoint
# ---------------------------------------------------------------------------

_exporter_lock = threading.Lock()
_server: "ThreadingHTTPServer | None" = None
_serve_thread: "threading.Thread | None" = None
_suppressed = False
_failed = False


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "aomp-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/") or "/metrics"
        if path != "/metrics":
            self.send_error(404, "only /metrics is served here")
            return
        body = render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes must not spam the embedding application's stderr


def ensure_exporter(port: "int | None" = None) -> "int | None":
    """Start the scrape endpoint once; return its bound port (or ``None``).

    ``port=None`` reads ``RuntimeConfig.metrics_port``; ``None``/unset means
    no endpoint.  Idempotent and cheap after the first call, so region entry
    can call it unconditionally when metrics are enabled.
    """
    global _server, _serve_thread, _failed
    with _exporter_lock:
        if _suppressed or _failed:
            return None
        if _server is not None:
            return _server.server_address[1]
        if port is None:
            from repro.runtime.config import get_config

            port = get_config().metrics_port
        if port is None:
            return None
        try:
            server = ThreadingHTTPServer((EXPORTER_HOST, int(port)), _MetricsHandler)
        except OSError as exc:
            _failed = True
            warnings.warn(
                f"metrics endpoint could not bind {EXPORTER_HOST}:{port} ({exc}); "
                "scraping is disabled for this process",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        server.daemon_threads = True
        thread = threading.Thread(target=server.serve_forever, name="aomp-metrics-http", daemon=True)
        thread.start()
        _server = server
        _serve_thread = thread
        return server.server_address[1]


def exporter_port() -> "int | None":
    """The bound port of the running scrape endpoint, if any."""
    with _exporter_lock:
        return None if _server is None else _server.server_address[1]


def stop_exporter() -> None:
    """Shut the endpoint down and allow a later ``ensure_exporter``.

    Idempotent (a second call is a no-op) and leak-free under repeated
    start/stop cycles: the accept-loop thread is joined, not abandoned, so a
    service that cycles the exporter per drain/restart does not accumulate
    one ``aomp-metrics-http`` thread per cycle.
    """
    global _server, _serve_thread, _failed
    with _exporter_lock:
        server, _server = _server, None
        thread, _serve_thread = _serve_thread, None
        _failed = False
    if server is not None:
        server.shutdown()
        server.server_close()
    if thread is not None:
        thread.join(timeout=5.0)


def suppress_exporter() -> None:
    """Mark this process as a worker: never start a scrape endpoint here."""
    global _suppressed
    with _exporter_lock:
        _suppressed = True
