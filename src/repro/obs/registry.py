"""The metrics registry: a fixed catalogue over per-thread int cell vectors.

Every *summable* metric (counters and histogram cells) lives in one flat
slot vector whose layout is fixed at registry construction: counters first
(their slots are import-time constants, independent of configuration), then
each histogram's bucket cells plus an integer-nanosecond sum cell.  The
layout is a pure function of the ``AOMP_METRICS_BUCKETS`` boundaries, so
every process of a team — fork children, subinterpreters, spawned socket
workers — derives the *same* layout from its inherited environment and raw
``(slot, value)`` deltas can cross process boundaries without any schema.

Increments touch a per-thread cell list (no lock, GIL/atomic int adds);
reads merge all thread vectors plus the ``_external`` vector where deltas
absorbed from other processes land.  :meth:`MetricsRegistry.flush_delta`
*moves* counts out (flush-and-clear), which is what makes cross-process
aggregation exactly-once: a worker's counts live either in its registry, in
a :class:`~repro.obs.arena.MetricsArena` cell range, or in the master's
``_external`` vector — never in two places.

Gauges are point-in-time, not summable: they live in a plain dict keyed by
``(name, label-items)``, and *collectors* (callables returning gauge
samples, e.g. the worker monitor's liveness view) are invoked at snapshot
time only.

Forked children inherit the parent's cell vectors; an ``os.register_at_fork``
hook drops the registry in the child so it rebuilds zeroed and never ships
the parent's pre-fork counts twice.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable

# ---------------------------------------------------------------------------
# The catalogue (fixed at import time)
# ---------------------------------------------------------------------------

#: ``(name, help text, label name or None, label values)`` — the full set of
#: counters.  Order is load-bearing: slot indices are assigned in catalogue
#: order, and cross-process deltas are exchanged as raw slot indices.
COUNTER_SPECS: "tuple[tuple[str, str, str | None, tuple[str, ...]], ...]" = (
    ("aomp_regions_total", "Parallel regions by lifecycle event.", "event",
     ("entered", "completed", "retried", "degraded", "failed")),
    ("aomp_chunks_total", "Work-shared loop chunks dispatched, by schedule.", "schedule",
     ("static_block", "static_cyclic", "dynamic", "guided", "serial", "other")),
    ("aomp_tasks_total", "Explicit tasks by lifecycle event.", "event",
     ("spawned", "stolen", "completed")),
    ("aomp_barriers_total", "Team barrier rounds entered.", None, ()),
    ("aomp_barrier_breaks_total", "Team barriers broken (abort or timeout).", None, ()),
    ("aomp_tune_decisions_total", "Adaptive tuner schedule decisions.", None, ()),
    ("aomp_faults_injected_total", "Deterministic AOMP_FAULTS rules fired, by action.", "action",
     ("kill", "raise", "stall", "other")),
    ("aomp_worker_deaths_total", "Team member processes seen dead by the monitor.", None, ()),
    ("aomp_pool_heals_total", "Persistent-pool workers replaced after a death.", None, ()),
    ("aomp_rpc_calls_total", "Data-plane RPC round-trips (socket-plane workers).", None, ()),
    ("aomp_rpc_bytes_total", "Data-plane RPC frame bytes, by direction.", "direction",
     ("sent", "received")),
    # Compute-service request lifecycle (src/repro/service).  Appended last:
    # slot order is load-bearing and every process derives it from this
    # catalogue, so extension is append-only.
    ("aomp_service_requests_total", "Compute-service requests by lifecycle event.", "event",
     ("accepted", "rejected", "coalesced", "completed", "failed", "cancelled")),
)

#: ``(name, help text)`` — histograms over seconds.  Bucket boundaries come
#: from ``RuntimeConfig.metrics_buckets``; sums are stored as integer
#: nanoseconds so they remain summable int64 cells.
HISTOGRAM_SPECS: "tuple[tuple[str, str], ...]" = (
    ("aomp_barrier_wait_seconds", "Time blocked in team barriers (load-imbalance signal)."),
    ("aomp_rpc_rtt_seconds", "Data-plane RPC round-trip time (socket-plane workers)."),
    ("aomp_service_request_seconds", "Compute-service end-to-end request latency (accept to finish)."),
)

#: gauge help texts (gauges are set ad hoc; this drives exposition only).
GAUGE_HELP: "dict[str, str]" = {
    "aomp_member_alive": "Per-member liveness (1 = beating, 0 = seen dead).",
    "aomp_member_last_beat_age_seconds": "Seconds since a member's last heartbeat.",
    "aomp_task_deque_depth": "Depth of a member's work-stealing task deque.",
    "aomp_service_queue_depth": "Compute-service requests admitted and waiting for a dispatch worker.",
    "aomp_service_running": "Compute-service requests currently executing on a dispatch worker.",
    "aomp_service_workers": "Dispatch workers serving the compute service.",
}


def _assign_counter_slots() -> "dict[tuple[str, str | None], int]":
    slots: "dict[tuple[str, str | None], int]" = {}
    index = 0
    for name, _help, label, values in COUNTER_SPECS:
        if label is None:
            slots[(name, None)] = index
            index += 1
        else:
            for value in values:
                slots[(name, value)] = index
                index += 1
    return slots


_COUNTER_SLOTS = _assign_counter_slots()
NUM_COUNTER_SLOTS = len(_COUNTER_SLOTS)


def counter_slot(name: str, label: "str | None" = None) -> int:
    """Slot index of a catalogued counter (import-time constant)."""
    return _COUNTER_SLOTS[(name, label)]


# Named slot constants for the guard sites (hot paths index by int).
REGIONS_ENTERED = counter_slot("aomp_regions_total", "entered")
REGIONS_COMPLETED = counter_slot("aomp_regions_total", "completed")
REGIONS_RETRIED = counter_slot("aomp_regions_total", "retried")
REGIONS_DEGRADED = counter_slot("aomp_regions_total", "degraded")
REGIONS_FAILED = counter_slot("aomp_regions_total", "failed")
CHUNK_SLOTS = {
    value: counter_slot("aomp_chunks_total", value)
    for value in ("static_block", "static_cyclic", "dynamic", "guided", "serial", "other")
}
CHUNKS_OTHER = CHUNK_SLOTS["other"]
TASKS_SPAWNED = counter_slot("aomp_tasks_total", "spawned")
TASKS_STOLEN = counter_slot("aomp_tasks_total", "stolen")
TASKS_COMPLETED = counter_slot("aomp_tasks_total", "completed")
BARRIERS = counter_slot("aomp_barriers_total")
BARRIER_BREAKS = counter_slot("aomp_barrier_breaks_total")
TUNE_DECISIONS = counter_slot("aomp_tune_decisions_total")
FAULT_SLOTS = {
    value: counter_slot("aomp_faults_injected_total", value)
    for value in ("kill", "raise", "stall", "other")
}
WORKER_DEATHS = counter_slot("aomp_worker_deaths_total")
POOL_HEALS = counter_slot("aomp_pool_heals_total")
RPC_CALLS = counter_slot("aomp_rpc_calls_total")
RPC_BYTES_SENT = counter_slot("aomp_rpc_bytes_total", "sent")
RPC_BYTES_RECEIVED = counter_slot("aomp_rpc_bytes_total", "received")
SERVICE_REQUEST_SLOTS = {
    value: counter_slot("aomp_service_requests_total", value)
    for value in ("accepted", "rejected", "coalesced", "completed", "failed", "cancelled")
}


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

#: gauge label sets are stored as sorted ``(key, value)`` item tuples.
GaugeKey = "tuple[tuple[str, str], ...]"


class MetricsRegistry:
    """Per-process accumulator for the fixed metric catalogue."""

    def __init__(self, buckets: "Iterable[float] | None" = None) -> None:
        if buckets is None:
            from repro.runtime.config import get_config

            buckets = get_config().metrics_buckets
        self.buckets: "tuple[float, ...]" = tuple(float(b) for b in buckets)
        self._nb = len(self.buckets) + 1  # + the +Inf overflow bucket
        self._hist_base: "dict[str, int]" = {}
        index = NUM_COUNTER_SLOTS
        for name, _help in HISTOGRAM_SPECS:
            self._hist_base[name] = index
            index += self._nb + 1  # bucket cells + integer-ns sum cell
        self.num_slots = index
        self._lock = threading.Lock()
        self._buffers: "list[list[int]]" = []
        self._local = threading.local()
        self._external = [0] * self.num_slots
        self._gauges: "dict[tuple[str, Any], float]" = {}
        self._collectors: "list[Callable[[], Iterable[tuple[str, Any, float]]]]" = []

    # -- summable hot path ---------------------------------------------------

    def cells(self) -> "list[int]":
        """The calling thread's private cell vector (registered on first use)."""
        try:
            return self._local.cells
        except AttributeError:
            cells = [0] * self.num_slots
            with self._lock:
                self._buffers.append(cells)
            self._local.cells = cells
            return cells

    def add(self, slot: int, amount: int = 1) -> None:
        self.cells()[slot] += amount

    def hist_base(self, name: str) -> int:
        """First slot of a histogram's cell block (buckets then ns-sum)."""
        return self._hist_base[name]

    def observe(self, base: int, seconds: float) -> None:
        """Record one observation into the histogram whose block starts at ``base``."""
        cells = self.cells()
        cells[base + bisect_left(self.buckets, seconds)] += 1
        cells[base + self._nb] += int(seconds * 1e9)

    # -- gauges and collectors ----------------------------------------------

    def set_gauge(self, name: str, labels: "dict[str, Any] | None", value: float) -> None:
        key = tuple(sorted((k, str(v)) for k, v in (labels or {}).items()))
        self._gauges[(name, key)] = float(value)

    def clear_gauge(self, name: str, labels: "dict[str, Any] | None" = None) -> None:
        key = tuple(sorted((k, str(v)) for k, v in (labels or {}).items()))
        self._gauges.pop((name, key), None)

    def register_collector(self, collector: "Callable[[], Iterable[tuple[str, Any, float]]]") -> None:
        """Register a callable yielding ``(name, labels, value)`` gauge samples."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: "Callable[[], Iterable[tuple[str, Any, float]]]") -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    # -- merge / move --------------------------------------------------------

    def _summed(self) -> "list[int]":
        with self._lock:
            totals = list(self._external)
            buffers = list(self._buffers)
        for cells in buffers:
            for slot, value in enumerate(cells):
                if value:
                    totals[slot] += value
        return totals

    def flush_delta(self) -> "list[tuple[int, int]]":
        """Move every accumulated count out as sparse ``(slot, value)`` pairs.

        Counts are cleared as they are read, so a flush-ship-absorb chain
        counts each increment exactly once.  Callers flush at quiescent
        points (member completion, barrier frames) — a racing increment from
        another thread of the *same* process may slip to the next flush,
        never be lost to a reader.
        """
        totals = [0] * self.num_slots
        with self._lock:
            buffers = list(self._buffers)
            for slot in range(self.num_slots):
                value = self._external[slot]
                if value:
                    totals[slot] += value
                    self._external[slot] = 0
        for cells in buffers:
            for slot in range(self.num_slots):
                value = cells[slot]
                if value:
                    totals[slot] += value
                    cells[slot] = 0
        return [(slot, value) for slot, value in enumerate(totals) if value]

    def absorb(self, pairs: "Iterable[tuple[int, int]]") -> None:
        """Fold a flushed delta (possibly from another process) into this registry."""
        with self._lock:
            for slot, value in pairs:
                if 0 <= slot < self.num_slots:
                    self._external[slot] += value

    def reset(self) -> None:
        """Zero every count and drop gauges/collectors (tests, forked children)."""
        with self._lock:
            for cells in self._buffers:
                for slot in range(self.num_slots):
                    cells[slot] = 0
            self._external = [0] * self.num_slots
            self._gauges.clear()
            self._collectors.clear()

    # -- snapshot ------------------------------------------------------------

    def gauge_samples(self) -> "list[tuple[str, Any, float]]":
        with self._lock:
            items = [(name, key, value) for (name, key), value in self._gauges.items()]
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                for name, labels, value in collector():
                    key = tuple(sorted((k, str(v)) for k, v in (labels or {}).items()))
                    items.append((name, key, float(value)))
            except Exception:
                continue  # a dying monitor must not poison the snapshot
        return items

    def snapshot(self) -> "dict[str, Any]":
        """Merged, JSON-friendly view of every metric."""
        totals = self._summed()
        counters: "dict[str, Any]" = {}
        for name, _help, label, values in COUNTER_SPECS:
            if label is None:
                counters[name] = totals[_COUNTER_SLOTS[(name, None)]]
            else:
                counters[name] = {value: totals[_COUNTER_SLOTS[(name, value)]] for value in values}
        histograms: "dict[str, Any]" = {}
        for name, _help in HISTOGRAM_SPECS:
            base = self._hist_base[name]
            counts = totals[base : base + self._nb]
            histograms[name] = {
                "buckets": list(self.buckets),
                "counts": counts,
                "count": sum(counts),
                "sum": totals[base + self._nb] / 1e9,
            }
        gauges: "dict[str, dict[tuple, float]]" = {}
        for name, key, value in self.gauge_samples():
            gauges.setdefault(name, {})[key] = value
        return {"counters": counters, "histograms": histograms, "gauges": gauges}


# ---------------------------------------------------------------------------
# The process-wide registry and its module-level fast API
# ---------------------------------------------------------------------------

_registry: "MetricsRegistry | None" = None
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry, built lazily from the current bucket config."""
    reg = _registry
    if reg is None:
        with _registry_lock:
            reg = _registry
            if reg is None:
                globals()["_registry"] = reg = MetricsRegistry()
    return reg


def reset(buckets: "Iterable[float] | None" = None) -> MetricsRegistry:
    """Replace the process registry with a fresh, zeroed one (tests)."""
    with _registry_lock:
        globals()["_registry"] = reg = MetricsRegistry(buckets)
    return reg


def metrics_enabled() -> bool:
    """Cheap predicate mirroring ``RuntimeConfig.metrics``."""
    from repro.runtime.config import get_config

    return get_config().metrics


def inc(slot: int, amount: int = 1) -> None:
    get_registry().add(slot, amount)


def observe(histogram: str, seconds: float) -> None:
    reg = get_registry()
    reg.observe(reg.hist_base(histogram), seconds)


def set_gauge(name: str, labels: "dict[str, Any] | None", value: float) -> None:
    get_registry().set_gauge(name, labels, value)


def clear_gauge(name: str, labels: "dict[str, Any] | None" = None) -> None:
    get_registry().clear_gauge(name, labels)


def register_collector(collector: "Callable[[], Iterable[tuple[str, Any, float]]]") -> None:
    get_registry().register_collector(collector)


def unregister_collector(collector: "Callable[[], Iterable[tuple[str, Any, float]]]") -> None:
    get_registry().unregister_collector(collector)


def flush_delta() -> "list[tuple[int, int]]":
    return get_registry().flush_delta()


def absorb(pairs: "Iterable[tuple[int, int]]") -> None:
    get_registry().absorb(pairs)


def _after_fork_in_child() -> None:
    # The child inherited the parent's cell vectors; shipping them would
    # double-count everything the parent already holds.  Drop the registry so
    # the child rebuilds zeroed on first use.
    globals()["_registry"] = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=_after_fork_in_child)
