"""Runtime observability: metrics registry, aggregation and exposition.

The tracing layer (:mod:`repro.runtime.trace`) answers *what did this
execution do* — a full event log, replayable by the perf model.  This
package answers *what is the system doing right now*: monotonically
increasing counters, point-in-time gauges and fixed-bucket histograms,
cheap enough to leave on in production and exposable to a scraper.

Design rules (the PR-2 tracing discipline, applied to metrics):

* **One predicate per guard site.**  Every instrumentation point in the
  runtime is guarded by a single boolean (``team.metrics``, cached from
  ``RuntimeConfig.metrics`` at team construction, or ``get_config().metrics``
  off the hot path).  With ``AOMP_METRICS`` unset the hot path pays one
  attribute load and a branch — nothing else exists.

* **Per-thread append-only accumulation, merged on read.**  Counter and
  histogram increments go to a per-thread cell vector with no locking
  (:class:`~repro.obs.registry.MetricsRegistry`); snapshots merge the
  vectors.  Hot loops batch: one ``add()`` per claim batch, not per chunk.

* **Team-wide aggregation.**  Fork/subinterpreter workers flush their
  deltas into a :class:`~repro.obs.arena.MetricsArena` of int64 cells over
  the same pluggable ``cells=`` storage the heartbeat arena uses; socket
  plane workers piggyback ``(slot, value)`` deltas on their barrier and
  result frames.  Flushes *move* counts (flush-and-clear), so a member's
  contribution is counted exactly once no matter which process ran it.

* **Exposition.**  :func:`stats` returns a programmatic snapshot,
  :func:`render_prometheus` the text-format 0.0.4 document, and
  :func:`ensure_exporter` serves it over a stdlib HTTP endpoint when
  ``AOMP_METRICS_PORT`` is set.  ``scripts/aomp_top.py`` builds a live
  terminal view on the scrape endpoint.
"""

from repro.obs.arena import MetricsArena
from repro.obs.exposition import (
    ensure_exporter,
    exporter_port,
    render_prometheus,
    stats,
    stop_exporter,
    suppress_exporter,
)
from repro.obs.registry import (
    MetricsRegistry,
    absorb,
    clear_gauge,
    flush_delta,
    get_registry,
    inc,
    metrics_enabled,
    observe,
    register_collector,
    reset,
    set_gauge,
    unregister_collector,
)

__all__ = [
    "MetricsArena",
    "MetricsRegistry",
    "absorb",
    "clear_gauge",
    "ensure_exporter",
    "exporter_port",
    "flush_delta",
    "get_registry",
    "inc",
    "metrics_enabled",
    "observe",
    "register_collector",
    "render_prometheus",
    "reset",
    "set_gauge",
    "stats",
    "stop_exporter",
    "suppress_exporter",
    "unregister_collector",
]
