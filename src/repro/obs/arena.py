"""Cross-process metrics aggregation over pluggable int64 cell storage.

A :class:`MetricsArena` gives every team member a disjoint range of int64
cells — one per registry slot — in whatever storage the data plane provides
(``multiprocessing`` shared memory for fork teams, an attached
``SharedArray`` for subinterpreters, plain heap cells under a coordinator).
Because ranges are disjoint and each is written only by its own member's
process, no lock is needed: the same design as
:class:`~repro.runtime.shm.HeartbeatArena`.

Workers *flush* their registry deltas into their range (adds, so a pooled
worker can flush once per region); the master *drains* the whole arena into
its registry at region end, zeroing the cells.  Both sides size their view
from their own registry, whose layout is a pure function of the inherited
``AOMP_METRICS_BUCKETS`` environment — so master and workers agree on the
slot order by construction.
"""

from __future__ import annotations

from typing import Any, Iterable

#: matches ``HeartbeatArena.DEFAULT_CAPACITY`` — the largest team any one
#: region is expected to field.
DEFAULT_CAPACITY = 64


def _registry_slots() -> int:
    from repro.obs.registry import get_registry

    return get_registry().num_slots


class MetricsArena:
    """Per-member int64 slot ranges for team-wide metric aggregation."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        slots: "int | None" = None,
        cells: Any = None,
        fresh: bool = True,
    ) -> None:
        self.capacity = int(capacity)
        self.slots = int(slots) if slots is not None else _registry_slots()
        if cells is None:
            from repro.runtime import shm

            ctx = shm._mp_context()
            cells = ctx.Array("q", self.capacity * self.slots, lock=False)
        self.cells = cells
        if fresh:
            self.reset()

    @staticmethod
    def cells_needed(capacity: int = DEFAULT_CAPACITY, slots: "int | None" = None) -> int:
        """Cell count an external allocator must provide for ``cells=``."""
        return int(capacity) * (int(slots) if slots is not None else _registry_slots())

    def reset(self) -> None:
        cells = self.cells
        for index in range(self.capacity * self.slots):
            cells[index] = 0

    def flush_member(self, member: int, pairs: "Iterable[tuple[int, int]]") -> None:
        """Add a flushed registry delta into ``member``'s cell range.

        Only ``member``'s own process calls this, so the adds are race-free.
        Out-of-range members and slots are dropped silently: a mis-sized
        arena must degrade to missing metrics, never corrupt a neighbour.
        """
        if not 0 <= member < self.capacity:
            return
        base = member * self.slots
        cells = self.cells
        for slot, value in pairs:
            if 0 <= slot < self.slots:
                cells[base + slot] += value

    def drain(self) -> "list[tuple[int, int]]":
        """Move every member's counts out as sparse ``(slot, value)`` pairs."""
        cells = self.cells
        totals: "dict[int, int]" = {}
        for member in range(self.capacity):
            base = member * self.slots
            for slot in range(self.slots):
                value = cells[base + slot]
                if value:
                    totals[slot] = totals.get(slot, 0) + value
                    cells[base + slot] = 0
        return sorted(totals.items())
