"""Explicit tasks and futures.

Implements the runtime behind the paper's ``@Task``, ``@TaskWait``,
``@FutureTask`` and ``@FutureResult`` constructs (Section III.C):

* ``@Task`` spawns a new parallel activity to execute the annotated method
  (usable inside *or outside* a parallel region);
* ``@TaskWait`` marks a method execution as the join point between the
  spawning and the spawned activity;
* ``@FutureTask`` targets methods returning a value; the returned object's
  getters act as synchronisation points (``@FutureResult``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, Iterable, TypeVar

from repro.runtime import context as ctx
from repro.runtime.exceptions import TaskError
from repro.runtime.trace import EventKind

T = TypeVar("T")


class TaskHandle(Generic[T]):
    """Handle on a spawned task; ``join`` waits for completion and re-raises failures."""

    def __init__(self, name: str = "task") -> None:
        self.name = name
        self._done = threading.Event()
        self._result: T | None = None
        self._exception: BaseException | None = None

    def _complete(self, result: T | None = None, exception: BaseException | None = None) -> None:
        self._result = result
        self._exception = exception
        self._done.set()

    @property
    def done(self) -> bool:
        """Whether the task has finished (successfully or not)."""
        return self._done.is_set()

    def join(self, timeout: float | None = None) -> T:
        """Wait for the task and return its result, re-raising task failures."""
        if not self._done.wait(timeout):
            raise TaskError(f"task {self.name!r} did not complete within {timeout}s")
        if self._exception is not None:
            raise TaskError(f"task {self.name!r} failed: {self._exception!r}", cause=self._exception) from self._exception
        return self._result  # type: ignore[return-value]

    def result(self, timeout: float | None = None) -> T:
        """Alias for :meth:`join` (concurrent.futures-style spelling)."""
        return self.join(timeout)


class FutureResult(Generic[T]):
    """Proxy for a value produced asynchronously.

    Mirrors the paper's ``@FutureTask``/``@FutureResult`` pattern: the
    spawning call immediately returns this proxy; calling :meth:`get` (the
    designated getter) blocks until the spawned activity has produced the
    value.
    """

    def __init__(self, handle: TaskHandle[T]) -> None:
        self._handle = handle

    def get(self, timeout: float | None = None) -> T:
        """Block until the value is available and return it."""
        return self._handle.join(timeout)

    @property
    def ready(self) -> bool:
        """Whether the value is already available."""
        return self._handle.done

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "ready" if self.ready else "pending"
        return f"FutureResult({self._handle.name!r}, {state})"


class TaskPool:
    """Tracks the tasks spawned from one scope so that a task-wait can join them.

    Each execution context owns (lazily) a pool; tasks spawned outside any
    parallel region use a process-global pool.  ``@TaskWait`` joins all tasks
    spawned in the current scope since the last wait.
    """

    def __init__(self, name: str = "tasks") -> None:
        self.name = name
        self._handles: list[TaskHandle[Any]] = []
        self._lock = threading.Lock()

    def spawn(self, fn: Callable[..., T], *args: Any, name: str | None = None, **kwargs: Any) -> TaskHandle[T]:
        """Spawn ``fn(*args, **kwargs)`` on a new thread and track its handle."""
        handle: TaskHandle[T] = TaskHandle(name or getattr(fn, "__name__", "task"))
        context = ctx.current_context()
        if context is not None:
            context.team.record(EventKind.TASK_SPAWN, task=handle.name)

        def runner() -> None:
            try:
                handle._complete(result=fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - stored and re-raised at join
                handle._complete(exception=exc)
            finally:
                inner = ctx.current_context()
                if inner is not None:  # pragma: no cover - tasks run outside regions
                    inner.team.record(EventKind.TASK_COMPLETE, task=handle.name)

        thread = threading.Thread(target=runner, name=f"aomp-task-{handle.name}", daemon=True)
        with self._lock:
            self._handles.append(handle)
        thread.start()
        return handle

    def spawn_future(self, fn: Callable[..., T], *args: Any, name: str | None = None, **kwargs: Any) -> FutureResult[T]:
        """Spawn ``fn`` and return a :class:`FutureResult` for its value."""
        return FutureResult(self.spawn(fn, *args, name=name, **kwargs))

    def wait_all(self, timeout: float | None = None) -> list[Any]:
        """Join every outstanding task spawned through this pool (``@TaskWait``)."""
        with self._lock:
            handles, self._handles = self._handles, []
        return [handle.join(timeout) for handle in handles]

    @property
    def outstanding(self) -> int:
        """Number of tasks spawned and not yet waited for."""
        with self._lock:
            return len(self._handles)


_global_pool = TaskPool(name="global")
_POOL_KEY = "task_pool"


def current_pool() -> TaskPool:
    """Return the task pool of the current scope (region-local or global)."""
    context = ctx.current_context()
    if context is None:
        return _global_pool
    pool = context.scratch.get(_POOL_KEY)
    if pool is None:
        pool = TaskPool(name=f"{context.team.name}-t{context.thread_id}")
        context.scratch[_POOL_KEY] = pool
    return pool


def spawn_task(fn: Callable[..., T], *args: Any, name: str | None = None, **kwargs: Any) -> TaskHandle[T]:
    """Spawn a task in the current scope's pool."""
    return current_pool().spawn(fn, *args, name=name, **kwargs)


def spawn_future(fn: Callable[..., T], *args: Any, name: str | None = None, **kwargs: Any) -> FutureResult[T]:
    """Spawn a value-returning task in the current scope's pool."""
    return current_pool().spawn_future(fn, *args, name=name, **kwargs)


def task_wait(timeout: float | None = None) -> list[Any]:
    """Join all tasks spawned in the current scope since the last wait."""
    return current_pool().wait_all(timeout)


def wait_for(handles: Iterable[TaskHandle[Any]], timeout: float | None = None) -> list[Any]:
    """Join an explicit collection of task handles."""
    return [handle.join(timeout) for handle in handles]
