"""Work-stealing task runtime: explicit tasks, futures, dependencies, taskloop.

Implements the runtime behind the paper's ``@Task``, ``@TaskWait``,
``@FutureTask`` and ``@FutureResult`` constructs (Section III.C) plus the
``taskloop`` extension:

* ``@Task`` spawns a new parallel activity to execute the annotated method
  (usable inside *or outside* a parallel region), optionally ordered after
  other tasks through ``depends=[...]`` edges;
* ``@TaskWait`` marks a method execution as the join point between the
  spawning and the spawned activities;
* ``@FutureTask`` targets methods returning a value; the returned object's
  getters act as synchronisation points (``@FutureResult``);
* ``taskloop`` tiles an iteration space into stealable tasks executed
  cooperatively by the whole team — the work-stealing twin of the
  work-sharing ``@For`` construct, for irregular workloads where static
  partitions lose.

Execution model
---------------
Tasks live in per-worker :class:`WorkStealingDeque`\\ s: the owning worker
pushes and pops at one end (LIFO — newest task first, the classic
cache-friendly Cilk discipline) while thieves steal from the opposite end
(FIFO — oldest task first, largest expected remaining work).  The deques are
*lock-free-ish*: CPython's per-opcode atomicity makes single ``deque``
operations safe without a lock, and the one-element race between a pop and a
steal resolves to exactly one winner (the loser sees ``IndexError``).

Who executes a task depends on where its pool lives — the same backend
strategy split as the rest of the runtime:

* **Inside a parallel region** the team owns one shared :class:`TaskPool`
  with a deque per member.  Tasks are *deferred*: members execute them at
  task scheduling points (``task_wait``, ``TaskHandle.join``, ``taskloop``,
  and the implicit end-of-region drain), where they first empty their own
  deque and then steal from siblings.  Joins therefore *participate in
  stealing* instead of parking the member on a condition variable.
* **Outside any region** the process-global pool runs a small set of
  lazily-started daemon worker threads (a real executor replacing the old
  thread-per-spawn shim), so tasks start eagerly and ``join(timeout=...)``
  keeps real-time semantics.
* **On process-backed teams** arbitrary spawned closures cannot cross the
  process boundary, so each member's spawns execute within its own process;
  ``taskloop`` tiles — which every member can execute, because the SPMD body
  was inherited on fork — are stolen across processes through the
  pre-allocated :class:`~repro.runtime.shm.TaskStealArena`.

Failure handling: a task body's exception is stored on its
:class:`TaskHandle` together with the *spawn site*, and every ``join()``
(first or repeated) raises a fresh :class:`~repro.runtime.exceptions.TaskError`
chaining the original exception.
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Generic, Iterable, TypeVar

import repro.obs.registry as obsreg
from repro.runtime import context as ctx
from repro.runtime.barrier import BrokenBarrierError
from repro.runtime.config import get_config
from repro.runtime.exceptions import TaskError
from repro.runtime.scheduler import LoopChunk, block_counts
from repro.runtime.trace import EventKind

T = TypeVar("T")

#: how long an idle helper sleeps between steal attempts when the pool has
#: outstanding-but-unavailable work (another member is mid-task).
_IDLE_WAIT = 5e-4

#: module-wide lock guarding dependency registration/resolution.  Dependency
#: edges are rare compared to spawns, so one coarse lock keeps the common
#: spawn path free of dependency bookkeeping entirely.
_DEP_LOCK = threading.Lock()


#: path fragments of runtime/aspect machinery skipped when attributing a
#: spawn site to user code (normalised to forward slashes for matching).
_MACHINERY_PATHS = ("repro/runtime/tasks.py", "repro/core/aspects/", "repro/core/weaver/")


def _is_machinery_frame(filename: str) -> bool:
    normalised = filename.replace("\\", "/")
    return any(fragment in normalised for fragment in _MACHINERY_PATHS)


def _spawn_site() -> str:
    """Best-effort ``file:line`` of the frame that requested the spawn.

    Walks out of this module *and* the aspect/weaver machinery, so a task
    spawned through a woven ``@Task`` method reports the user's call site,
    not ``TaskAspect.around``.  Kept cheap (no traceback formatting): a few
    frame hops per spawn.
    """
    frame = sys._getframe(1)
    while frame is not None and _is_machinery_frame(frame.f_code.co_filename):
        frame = frame.f_back
    if frame is None:  # pragma: no cover - spawn from module top level
        return "<unknown>"
    code = frame.f_code
    return f"{code.co_filename}:{frame.f_lineno} in {code.co_name}"


class WorkStealingDeque:
    """A per-worker task deque: LIFO for the owner, FIFO for thieves.

    Built on :class:`collections.deque`, whose individual operations are
    atomic under the GIL; no lock is taken on push/pop/steal.  When a pop and
    a steal race for the final element exactly one succeeds and the other
    observes the deque empty.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: deque = deque()

    def push(self, task: Any) -> None:
        """Owner: add ``task`` to the hot end."""
        self._items.append(task)

    def pop(self) -> Any:
        """Owner: take the most recently pushed task, or ``None``."""
        try:
            return self._items.pop()
        except IndexError:
            return None

    def steal(self) -> Any:
        """Thief: take the oldest task, or ``None``."""
        try:
            return self._items.popleft()
        except IndexError:
            return None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class _SpawnedTask:
    """Internal record of one spawned-but-unfinished task."""

    __slots__ = ("fn", "args", "kwargs", "handle", "pool", "unmet_deps")

    def __init__(self, fn: Callable[..., Any], args: tuple, kwargs: dict, handle: "TaskHandle", pool: "TaskPool") -> None:
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.handle = handle
        self.pool = pool
        #: dependency handles not yet finished (guarded by _DEP_LOCK)
        self.unmet_deps: list["TaskHandle"] = []


class TaskHandle(Generic[T]):
    """Handle on a spawned task; ``join`` waits for completion and re-raises failures."""

    __slots__ = ("name", "spawn_site", "_done", "_result", "_exception", "_pool", "_scope", "_dependents")

    def __init__(self, name: str = "task", *, spawn_site: str | None = None, pool: "TaskPool | None" = None) -> None:
        self.name = name
        self.spawn_site = spawn_site
        self._done = threading.Event()
        self._result: T | None = None
        self._exception: BaseException | None = None
        self._pool = pool
        self._scope: Any = None
        #: tasks waiting on this handle (guarded by the module _DEP_LOCK)
        self._dependents: list[_SpawnedTask] = []

    def _complete(self, result: T | None = None, exception: BaseException | None = None) -> None:
        self._result = result
        self._exception = exception
        self._done.set()
        # Release dependents *after* publishing completion, so a concurrent
        # registration either sees the handle done (no edge recorded) or its
        # edge is drained here.
        with _DEP_LOCK:
            dependents, self._dependents = self._dependents, []
        for task in dependents:
            task.pool._dependency_satisfied(task, self)

    @property
    def done(self) -> bool:
        """Whether the task has finished (successfully or not)."""
        return self._done.is_set()

    def join(self, timeout: float | None = None) -> T:
        """Wait for the task and return its result, re-raising task failures.

        Inside the task runtime's worker scope (a team member, or a global
        executor worker) the wait is a *work loop*: the caller executes and
        steals other outstanding tasks until this one finishes.  External
        callers block on the completion event.

        A failed task raises :class:`TaskError` with the spawn-site context
        attached and the original exception chained (``__cause__``); calling
        ``join`` again raises an equivalent fresh error — the failure is
        sticky, not one-shot.
        """
        if not self._done.is_set():
            pool = self._pool
            helper = pool._helper_worker() if pool is not None else None
            if helper is not None:
                pool._help_until(helper, self._done.is_set, timeout, waiting_on=self.name)
            elif not self._done.wait(timeout):
                raise TaskError(f"task {self.name!r} did not complete within {timeout}s")
        # An explicitly joined task is settled: a later task_wait in the
        # spawning scope must not join (and possibly re-raise) it again.
        if self._pool is not None:
            self._pool._discard_scope_handle(self)
        if self._exception is not None:
            site = f" (spawned at {self.spawn_site})" if self.spawn_site else ""
            raise TaskError(
                f"task {self.name!r} failed: {self._exception!r}{site}",
                cause=self._exception,
            ) from self._exception
        return self._result  # type: ignore[return-value]

    def result(self, timeout: float | None = None) -> T:
        """Alias for :meth:`join` (concurrent.futures-style spelling)."""
        return self.join(timeout)


class FutureResult(Generic[T]):
    """Proxy for a value produced asynchronously.

    Mirrors the paper's ``@FutureTask``/``@FutureResult`` pattern: the
    spawning call immediately returns this proxy; calling :meth:`get` (the
    designated getter) blocks until the spawned activity has produced the
    value — and, within the task runtime's workers, helps execute other
    tasks while it waits.
    """

    def __init__(self, handle: TaskHandle[T]) -> None:
        self._handle = handle

    def get(self, timeout: float | None = None) -> T:
        """Block until the value is available and return it."""
        return self._handle.join(timeout)

    @property
    def ready(self) -> bool:
        """Whether the value is already available."""
        return self._handle.done

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "ready" if self.ready else "pending"
        return f"FutureResult({self._handle.name!r}, {state})"


def _unwrap_dependency(dep: "TaskHandle | FutureResult") -> TaskHandle:
    if isinstance(dep, FutureResult):
        return dep._handle
    if isinstance(dep, TaskHandle):
        return dep
    raise TypeError(f"task dependency must be a TaskHandle or FutureResult, got {type(dep).__name__}")


class TaskPool:
    """A work-stealing pool of tasks with dependency edges.

    Two flavours, selected by construction:

    * **Team pool** (``team=...``) — one deque per team member, no threads of
      its own: the members *are* the workers, executing tasks at scheduling
      points (this is how OpenMP tasks defer).  Created lazily per region
      through :func:`current_pool` / :meth:`for_team`.
    * **Executor pool** (no team) — ``workers`` lazily-started daemon threads
      with a deque each; spawns from outside are distributed round-robin.
      The process-global pool used outside parallel regions is one of these.

    ``wait_all`` (the ``@TaskWait`` construct) joins the tasks spawned *by
    the calling scope* since its last wait — per member inside a team, per
    OS thread outside — matching the paper's "join point between the
    spawning and the spawned activity".
    """

    #: key under which a team's shared pool lives in ``Team._shared``
    TEAM_SLOT = "task_pool"

    def __init__(
        self,
        workers: int | None = None,
        *,
        name: str = "tasks",
        team: Any = None,
    ) -> None:
        self.name = name
        self._team = team
        if team is not None:
            size = team.size
            self._executor = False
        else:
            size = workers if workers is not None else max(2, min(8, get_config().num_threads))
            self._executor = True
        if size < 1:
            raise ValueError(f"task pool needs at least 1 worker, got {size}")
        self._size = size
        self._deques = [WorkStealingDeque() for _ in range(size)]
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._pending = 0      # spawned and not yet finished (queued + blocked + running)
        self._blocked = 0      # held back by unmet dependencies
        self._blocked_tasks: set[_SpawnedTask] = set()
        self._running = 0      # currently executing a body
        self._scopes: dict[Any, list[TaskHandle]] = {}
        self._rr = itertools.count()
        self._threads: list[threading.Thread] = []
        self._worker_local = threading.local()
        self._shutdown = False

    # -- construction helpers -------------------------------------------------

    @classmethod
    def for_team(cls, team: Any) -> "TaskPool":
        """The (lazily created) pool shared by ``team``'s members."""
        return team.shared_slot(cls.TEAM_SLOT, lambda: cls(name=f"{team.name}-tasks", team=team))

    # -- worker identity ------------------------------------------------------

    def _helper_worker(self) -> int | None:
        """Deque index the calling thread may help from, or ``None`` (external)."""
        if self._executor:
            return getattr(self._worker_local, "worker", None)
        context = ctx.current_context()
        if context is not None and context.team is self._team:
            return context.thread_id
        return None

    def _spawn_worker(self) -> int:
        """Deque index new spawns are pushed to."""
        helper = self._helper_worker()
        if helper is not None:
            return helper
        return next(self._rr) % self._size

    def _scope_key(self) -> Any:
        """Identity of the calling spawn scope (member in a team, OS thread outside)."""
        helper = self._helper_worker()
        if helper is not None and not self._executor:
            return ("member", helper)
        return ("thread", threading.get_ident())

    # -- spawning -------------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., T],
        *args: Any,
        name: str | None = None,
        depends: "Iterable[TaskHandle | FutureResult] | None" = None,
        **kwargs: Any,
    ) -> TaskHandle[T]:
        """Spawn ``fn(*args, **kwargs)`` and track its handle.

        ``depends`` orders this task after other spawned tasks: it will not
        start before every listed handle has *finished* (successfully or
        not — a failed dependency still releases its dependents, whose own
        results are unaffected; inspect the dependency handle to see its
        failure).
        """
        if self._shutdown:
            raise TaskError(f"task pool {self.name!r} is shut down")
        handle: TaskHandle[T] = TaskHandle(
            name or getattr(fn, "__name__", "task"), spawn_site=_spawn_site(), pool=self
        )
        task = _SpawnedTask(fn, args, kwargs, handle, self)
        scope = self._scope_key()
        handle._scope = scope
        with self._lock:
            self._pending += 1
            self._scopes.setdefault(scope, []).append(handle)

        deferred = False
        if depends is not None:
            with _DEP_LOCK:
                for dep in depends:
                    dep_handle = _unwrap_dependency(dep)
                    if not dep_handle._done.is_set():
                        dep_handle._dependents.append(task)
                        task.unmet_deps.append(dep_handle)
                if task.unmet_deps:
                    deferred = True
                    with self._lock:
                        self._blocked += 1
                        self._blocked_tasks.add(task)

        team = self._team
        if team is not None:
            if team.metrics:
                obsreg.inc(obsreg.TASKS_SPAWNED)
            if team.tracing:
                team.record(EventKind.TASK_SPAWN, task=handle.name, deferred=deferred)
        if not deferred:
            self._enqueue(task, self._spawn_worker())
        return handle

    def spawn_future(self, fn: Callable[..., T], *args: Any, name: str | None = None, **kwargs: Any) -> FutureResult[T]:
        """Spawn ``fn`` and return a :class:`FutureResult` for its value."""
        return FutureResult(self.spawn(fn, *args, name=name, **kwargs))

    def _enqueue(self, task: _SpawnedTask, worker: int) -> None:
        self._deques[worker].push(task)
        team = self._team
        if team is not None and team.metrics:
            obsreg.set_gauge("aomp_task_deque_depth", {"member": worker}, len(self._deques[worker]))
        if self._executor:
            self._ensure_threads()
            with self._work_available:
                self._work_available.notify()

    def _discard_scope_handle(self, handle: TaskHandle) -> None:
        """Forget ``handle`` in its spawn scope (it was joined explicitly)."""
        with self._lock:
            handles = self._scopes.get(handle._scope)
            if handles is not None:
                try:
                    handles.remove(handle)
                except ValueError:
                    pass
                if not handles:
                    self._scopes.pop(handle._scope, None)

    def _dependency_satisfied(self, task: _SpawnedTask, dep: "TaskHandle") -> None:
        """One dependency of ``task`` finished (caller holds no pool lock)."""
        with _DEP_LOCK:
            try:
                task.unmet_deps.remove(dep)
            except ValueError:  # pragma: no cover - duplicate completion signal
                return
            release = not task.unmet_deps
        if release:
            with self._lock:
                self._blocked -= 1
                self._blocked_tasks.discard(task)
            helper = self._helper_worker()
            self._enqueue(task, helper if helper is not None else next(self._rr) % self._size)

    def _blocked_progress_possible(self) -> bool:
        """Whether any blocked task's unmet dependency can still complete.

        A dependency can still complete when its handle is already done (its
        resolution is in flight), or when the pool that owns it has *active*
        work — something queued or running, i.e. ``pending`` beyond its own
        blocked tasks.  A handle with no pool (manually constructed) or whose
        pool consists entirely of blocked tasks will never finish: raising
        beats deadlocking.  Cross-pool cycles fall out naturally — every
        involved pool shows pending == blocked.

        Called with the pool lock held, so it must not take ``_DEP_LOCK``
        (spawn acquires dep-lock then pool-lock); the single-shot container
        copies below are atomic under the GIL, and the caller samples the
        verdict several times, so momentary inconsistency cannot misfire.
        """
        for task in list(self._blocked_tasks):
            for dep in list(task.unmet_deps):
                if dep._done.is_set():
                    return True
                pool = dep._pool
                if pool is not None and (pool._pending - pool._blocked) > 0:
                    return True
        return False

    # -- execution ------------------------------------------------------------

    def _execute(self, task: _SpawnedTask, worker: int) -> None:
        with self._lock:
            self._running += 1
        began = time.perf_counter()
        try:
            result = task.fn(*task.args, **task.kwargs)
        except BaseException as exc:  # noqa: BLE001 - stored and re-raised at join
            task.handle._complete(exception=exc)
        else:
            task.handle._complete(result=result)
        with self._work_available:
            self._running -= 1
            self._pending -= 1
            self._work_available.notify_all()
        team = self._team
        if team is not None:
            if team.metrics:
                obsreg.inc(obsreg.TASKS_COMPLETED)
            if team.tracing:
                team.record(
                    EventKind.TASK_COMPLETE,
                    task=task.handle.name,
                    elapsed=time.perf_counter() - began,
                    failed=task.handle._exception is not None,
                )

    def _take(self, worker: int) -> "_SpawnedTask | None":
        """Next task for ``worker``: own deque first (LIFO), then steal (FIFO)."""
        task = self._deques[worker].pop()
        if task is not None:
            return task
        for offset in range(1, self._size):
            victim = (worker + offset) % self._size
            task = self._deques[victim].steal()
            if task is not None:
                team = self._team
                if team is not None:
                    if team.metrics:
                        obsreg.inc(obsreg.TASKS_STOLEN)
                    if team.tracing:
                        team.record(EventKind.TASK_STEAL, task=task.handle.name, victim=victim)
                return task
        return None

    def _help_until(
        self,
        worker: int,
        finished: Callable[[], bool],
        timeout: float | None = None,
        *,
        waiting_on: str = "tasks",
    ) -> None:
        """Run/steal outstanding tasks until ``finished()`` — a scheduling point.

        Raises :class:`TaskError` when ``timeout`` elapses first, or when the
        pool deadlocks: nothing is queued, nothing is running, yet blocked
        tasks remain (an unsatisfiable/cyclic dependency set — nobody will
        ever release them).
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        stuck_rounds = 0
        while not finished():
            task = self._take(worker)
            if task is not None:
                stuck_rounds = 0
                self._execute(task, worker)
                continue
            if finished():
                break
            if deadline is not None and time.monotonic() > deadline:
                raise TaskError(f"waiting on {waiting_on!r} did not complete within {timeout}s")
            with self._work_available:
                queued = self._pending - self._blocked - self._running
                if queued > 0:
                    # A task is queued on a deque we just saw empty (pushed
                    # concurrently, or mid-release) — retry immediately.
                    stuck_rounds = 0
                    continue
                maybe_stuck = self._pending and not self._running and self._blocked
                if maybe_stuck and not self._blocked_progress_possible():
                    # Nothing queued, nothing running, and no blocked task's
                    # dependency can still complete anywhere: nobody will
                    # ever release them.  Sampled several times so a task in
                    # flight between counters cannot misfire.
                    stuck_rounds += 1
                    if stuck_rounds >= 3:
                        raise TaskError(
                            f"task pool {self.name!r} is stuck: {self._blocked} task(s) blocked on "
                            "dependencies that can no longer complete (dependency cycle, or a "
                            "dependency handle nothing will ever finish)"
                        )
                    self._work_available.wait(0.02)
                else:
                    stuck_rounds = 0
                    self._work_available.wait(0.05)

    # -- waiting --------------------------------------------------------------

    def wait_all(self, timeout: float | None = None) -> list[Any]:
        """Join every task spawned by the calling scope since its last wait.

        This is the ``@TaskWait`` construct: a task scheduling point where
        the caller helps execute outstanding tasks (its own and stolen ones)
        until all of *its* spawned tasks have finished.  Results are returned
        in spawn order; the first failed task re-raises as
        :class:`TaskError`.
        """
        scope = self._scope_key()
        with self._lock:
            handles = self._scopes.pop(scope, [])
        return [handle.join(timeout) for handle in handles]

    def drain(self, worker: int | None = None, timeout: float | None = None) -> None:
        """Execute outstanding tasks until none remain (end-of-region barrier).

        Unlike :meth:`wait_all` this waits for *everyone's* tasks, and does
        not consume the per-scope handle lists (a later ``wait_all`` still
        returns results).  Task failures stay parked on their handles — the
        drain itself only raises on timeout or dependency deadlock.
        """
        if worker is None:
            worker = self._helper_worker() or 0
        self._help_until(worker, lambda: self._pending == 0, timeout, waiting_on=f"{self.name} drain")

    @property
    def outstanding(self) -> int:
        """Number of tasks spawned by the calling scope and not yet waited for."""
        scope = self._scope_key()
        with self._lock:
            return len(self._scopes.get(scope, ()))

    @property
    def pending(self) -> int:
        """Number of spawned tasks (all scopes) that have not finished."""
        return self._pending

    # -- executor threads ------------------------------------------------------

    def _ensure_threads(self) -> None:
        if len(self._threads) >= self._size:
            return
        with self._lock:
            while len(self._threads) < self._size:
                index = len(self._threads)
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(index,),
                    name=f"aomp-task-{self.name}-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def _worker_loop(self, worker: int) -> None:
        self._worker_local.worker = worker
        while True:
            task = self._take(worker)
            if task is not None:
                self._execute(task, worker)
                continue
            with self._work_available:
                if self._shutdown:
                    return
                queued = self._pending - self._blocked - self._running
                if queued <= 0:
                    self._work_available.wait(0.05)
                # else: retry — a push raced with the deque scan.

    def shutdown(self) -> None:
        """Stop executor workers (tests / interpreter exit); team pools are a no-op."""
        with self._work_available:
            self._shutdown = True
            self._work_available.notify_all()
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads.clear()


_global_pool = TaskPool(name="global")


def current_pool() -> TaskPool:
    """Return the task pool of the current scope (team-shared or process-global)."""
    context = ctx.current_context()
    if context is None:
        return _global_pool
    return TaskPool.for_team(context.team)


def spawn_task(
    fn: Callable[..., T],
    *args: Any,
    name: str | None = None,
    depends: "Iterable[TaskHandle | FutureResult] | None" = None,
    **kwargs: Any,
) -> TaskHandle[T]:
    """Spawn a task in the current scope's pool (``@Task``)."""
    return current_pool().spawn(fn, *args, name=name, depends=depends, **kwargs)


def spawn_future(fn: Callable[..., T], *args: Any, name: str | None = None, **kwargs: Any) -> FutureResult[T]:
    """Spawn a value-returning task in the current scope's pool (``@FutureTask``)."""
    return current_pool().spawn_future(fn, *args, name=name, **kwargs)


def task_wait(timeout: float | None = None) -> list[Any]:
    """Join all tasks spawned in the current scope since the last wait (``@TaskWait``)."""
    return current_pool().wait_all(timeout)


def wait_for(handles: Iterable[TaskHandle[Any]], timeout: float | None = None) -> list[Any]:
    """Join an explicit collection of task handles."""
    return [handle.join(timeout) for handle in handles]


def drain_team_tasks(team: Any, worker: int) -> None:
    """End-of-region scheduling point: finish every deferred task of ``team``.

    Called by the region driver for each member after the region body
    returns, so tasks spawned and never explicitly waited on still complete
    before the region's implicit barrier — OpenMP's guarantee.  A no-op when
    the region never created a task pool.
    """
    pool = team.get_slot(TaskPool.TEAM_SLOT)
    if pool is not None and pool.pending:
        pool.drain(worker)


# ---------------------------------------------------------------------------
# taskloop — tiled, stealable loop execution
# ---------------------------------------------------------------------------

#: default tiles per member when neither grainsize nor num_tasks is given;
#: enough surplus tiles for stealing to balance irregular iteration costs
#: without drowning in per-tile overhead.
DEFAULT_TASKS_PER_MEMBER = 8


class _HeapTaskLoopState:
    """In-heap tile deck for one taskloop execution (thread/serial teams).

    One index deque per member, fully seeded at construction (the team's
    shared-slot factory runs exactly once, so there is no seeding race):
    member ``w`` starts with a contiguous block of tile indices, takes from
    its *front* (ascending — cache-friendly) and steals from a victim's
    *back*, mirroring the cross-process
    :class:`~repro.runtime.shm.TaskStealArena` layout so chunk boundaries are
    identical on every backend.
    """

    __slots__ = ("ntiles", "_deques", "_lock", "_completed")

    def __init__(self, num_workers: int, ntiles: int) -> None:
        self.ntiles = ntiles
        self._deques = []
        cursor = 0
        for count in block_counts(ntiles, num_workers):
            self._deques.append(deque(range(cursor, cursor + count)))
            cursor += count
        self._lock = threading.Lock()
        self._completed = 0

    def claim_local(self, worker: int) -> "int | None":
        try:
            return self._deques[worker].popleft()
        except IndexError:
            return None

    def claim_steal(self, worker: int) -> "tuple[int, int] | None":
        n = len(self._deques)
        for offset in range(1, n):
            victim = (worker + offset) % n
            try:
                return victim, self._deques[victim].pop()
            except IndexError:
                continue
        return None

    def mark_done(self, amount: int = 1) -> int:
        with self._lock:
            self._completed += amount
            return self._completed

    def finished(self) -> bool:
        return self._completed >= self.ntiles


def resolve_grainsize(total: int, team_size: int, grainsize: int | None, num_tasks: int | None) -> int:
    """Iterations per tile for a taskloop over ``total`` iterations.

    ``grainsize`` wins when given (OpenMP's ``grainsize`` clause); otherwise
    the space is cut into ``num_tasks`` tiles (OpenMP's ``num_tasks``
    clause), defaulting to :data:`DEFAULT_TASKS_PER_MEMBER` tiles per member.
    """
    if grainsize is not None:
        if grainsize < 1:
            raise ValueError(f"grainsize must be >= 1, got {grainsize}")
        return grainsize
    tiles = num_tasks if num_tasks is not None else DEFAULT_TASKS_PER_MEMBER * team_size
    tiles = max(1, min(tiles, total))
    return -(-total // tiles)


def run_taskloop(
    body: Callable[..., Any],
    start: int,
    end: int,
    step: int,
    *args: Any,
    grainsize: int | None = None,
    num_tasks: int | None = None,
    loop_name: str | None = None,
    collapse: int = 1,
    nowait: bool = False,
    weight: Callable[[int], float] | None = None,
    **kwargs: Any,
) -> Any:
    """Execute for-method ``body`` as a taskloop: tiled, stolen, team-wide.

    The iteration space ``range(start, end, step)`` is tiled into chunks of
    ``grainsize`` iterations (see :func:`resolve_grainsize`); every team
    member seeds a contiguous block of tiles and then drains the deck —
    own tiles first, stolen tiles when its block runs dry — until all tiles
    have executed.  ``body`` is invoked as ``body(tile_start, tile_end,
    step, *args, **kwargs)`` exactly like a work-shared for method, so the
    same unchanged kernels work under both constructs.

    Outside a parallel region (or with a team of one) the body runs once
    over the full range — the paper's sequential-semantics guarantee.
    Unless ``nowait`` is set, the loop ends with a team barrier.

    With ``collapse=n`` the body is a collapsed for method exposing ``n``
    ``(start, end, step)`` triples (see
    :func:`repro.runtime.worksharing.collapse_loop`): the combined iteration
    space is linearised and *then* tiled, so stealable tiles span row
    boundaries and balance across every dimension.

    Tracing records one ``CHUNK`` event per executed tile (feeding the
    perf model), one ``TASK_SPAWN`` per member with its seeded tile count
    and one ``TASK_STEAL`` per successful steal.
    """
    from repro.runtime import worksharing

    if collapse > 1:
        body, start, end, step, args, _crange = worksharing.collapse_loop(
            body, start, end, step, args, collapse
        )

    context = ctx.current_context()
    if context is None or context.team.size == 1:
        return worksharing._run_sequential(body, start, end, step, args, kwargs, context, loop_name, weight)

    team = context.team
    worker = context.thread_id
    name = loop_name or getattr(body, "__name__", "<taskloop>")
    total = LoopChunk(start, end, step).count
    # Claimed unconditionally (even for empty loops) so loop ordinals stay
    # aligned across members and with work-shared loops in the same region.
    ordinal = worksharing._loop_ordinal(context)
    if total == 0:
        if not nowait:
            team.barrier(label=f"taskloop:{name}")
        return None

    grain = resolve_grainsize(total, team.size, grainsize, num_tasks)
    ntiles = -(-total // grain)

    if team.is_process_team:
        arena = team.process_sync.steal
        if arena is None:  # pragma: no cover - legacy ProcessSync without a deck pool
            raise TaskError(f"taskloop {name!r}: process team has no steal arena")
        state = arena.slot(ordinal, team.size, ntiles, level=team.nesting_level)
    else:
        state = team.shared_slot(
            ("taskloop", ordinal), lambda: _HeapTaskLoopState(team.size, ntiles)
        )

    tracing = team.tracing
    metrics = team.metrics
    if metrics:
        # One spawn per member, mirroring the TASK_SPAWN event below (the
        # member's seeded tile block is its one logical spawn).
        obsreg.inc(obsreg.TASKS_SPAWNED)
    if tracing:
        team.record(
            EventKind.TASK_SPAWN,
            loop=name,
            count=block_counts(ntiles, team.size)[worker],
            grainsize=grain,
        )

    result: Any = None
    executed = 0
    try:
        while True:
            tile = state.claim_local(worker)
            if tile is None:
                claim = state.claim_steal(worker)
                if claim is None:
                    if state.finished():
                        break
                    if team.broken:
                        # A sibling failed (its exception aborted the team) or a
                        # worker process died: its claimed tiles will never be
                        # marked done, so waiting on the deck would spin forever.
                        raise BrokenBarrierError(f"taskloop {name!r} aborted: a team member failed")
                    # Tiles remain but are all claimed-and-running on other
                    # members; nothing to do except wait for the deck to settle.
                    time.sleep(_IDLE_WAIT)
                    continue
                victim, tile = claim
                if metrics:
                    obsreg.inc(obsreg.TASKS_STOLEN)
                if tracing:
                    team.record(EventKind.TASK_STEAL, loop=name, victim=victim, tile=tile)
            begin = tile * grain
            span = total - begin
            if span > grain:
                span = grain
            tile_start = start + begin * step
            try:
                if tracing:
                    piece = LoopChunk(tile_start, tile_start + span * step, step)
                    result = worksharing._run_traced_chunk(body, piece, args, kwargs, team, name, weight)
                else:
                    executed += 1
                    result = body(tile_start, tile_start + span * step, step, *args, **kwargs)
            except BaseException:
                # Siblings must not wait for this tile (mark it done) nor for
                # this member's unclaimed tiles (abort the team so their idle
                # loops escape); the exception then surfaces as BrokenTeamError
                # through the region driver, exactly like a failing run_for body.
                state.mark_done()
                team.abort()
                raise
            state.mark_done()
    finally:
        # Untraced tiles are batch-counted (the traced path counts per tile
        # inside _run_traced_chunk, so the totals line up either way).
        if executed and metrics:
            obsreg.inc(obsreg.CHUNKS_OTHER, executed)

    if not nowait:
        team.barrier(label=f"taskloop:{name}")
    return result
