"""Pluggable data planes: where a team's shared state physically lives.

Every process-backed team needs the same five services — bulk array
segments, claim/fetch-add slots, a cyclic barrier, heartbeat cells and the
locks guarding them — but *where* those live is a transport decision, not a
runtime one.  This module separates the two:

* :class:`DataPlane` — the constructor-level abstraction.  A plane builds
  the :class:`~repro.runtime.shm.ProcessSync` bundle a team synchronises
  through; everything above it (worksharing, tasks, tuning, fault
  monitoring) is plane-agnostic because it only ever touches the
  ``ArenaSlot`` / ``TaskStealSlot`` / ``TunePlanSlot`` / barrier surfaces.

* :class:`ShmDataPlane` — today's machinery, unchanged: arenas over
  ``multiprocessing`` shared memory and locks, handed to forked workers by
  address-space inheritance.  The process backend and the persistent pool
  construct through it, bit-identical to their historical direct
  construction.

* :class:`SocketDataPlane` — a message-passing plane for members in
  *independent* (non-forked, possibly remote-capable) processes.  A
  :class:`Coordinator` in the master process hosts the **real** arena
  instances over plain heap cells (the ``cells=``/``lock=`` pluggability
  the subinterpreter backend introduced) and serves claim / barrier /
  heartbeat RPCs over length-prefixed TCP on localhost.  Workers hold
  duck-typed proxies; the master, living in the coordinator's process,
  uses the arenas directly and pays zero round-trips.  Claim *policy*
  (``claim_cap``, ``guided_claim_batch``, steal-deck seeding) therefore
  runs exactly once, master-side, through exactly the same code the shm
  plane uses — which is what makes chunk boundaries identical across
  planes by construction rather than by testing luck.

Bulk arrays do not stream through the RPC channel.  Workers mirror each
:class:`~repro.runtime.shm.SharedArray` locally (:class:`RemoteArray`) and
move data in bulk-synchronous steps pinned to the team barrier: dirty
elements are *published* (flat indices + values) before the barrier RPC and
the mirror is *gathered* fresh after release.  Region bodies are SPMD with
barrier-separated phases, so everything a member may read after a barrier
was written — and therefore published — before it.

Wire protocol (see ``send_message``/``recv_message``): a connection opens
with the coordinator's one-time token as a **raw fixed-length preamble**,
constant-time-compared *before* any pickled frame is read — an
unauthenticated peer never reaches ``pickle.loads``, so a crafted frame
cannot execute code in the master.  After authentication, every frame is a
4-byte little-endian length followed by a pickled payload: first a
``hello`` carrying the member id and pid, then ``(op, *args)`` request
tuples answered by ``(ok, payload)`` pairs where a falsy ``ok`` carries an
encoded exception to re-raise client-side.
"""

from __future__ import annotations

import os
import pickle
import queue
import secrets
import socket
import struct
import threading
import time
from typing import Any, Optional

import numpy as np

import repro.obs.registry as obsreg
from repro.runtime import shm
from repro.runtime.barrier import BrokenBarrierError, CyclicBarrier, _default_barrier_timeout
from repro.runtime.config import get_config

#: Socket planes bind to loopback only: the raw token preamble (verified
#: before anything is unpickled) guards against port-scanning neighbours,
#: not a hostile network.
LOOPBACK_HOST = "127.0.0.1"

#: Frame header: little-endian unsigned 32-bit payload length.
_HEADER = struct.Struct("<I")

#: Upper bound on a single frame (guards against a corrupt header making the
#: receiver try to allocate gigabytes).  Generous: gathers of benchmark-sized
#: arrays are a few MB.
MAX_FRAME_BYTES = 1 << 30

#: Bound on how long the coordinator waits for a connecting peer to present
#: its token preamble — an idle port-scanner must not pin a handler thread
#: (and its accepted socket) forever.
HANDSHAKE_TIMEOUT = 10.0


# ---------------------------------------------------------------------------
# Wire framing
# ---------------------------------------------------------------------------


def send_message(sock: socket.socket, payload: Any) -> int:
    """Write one length-prefixed pickled frame; return the bytes written."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(len(data)) + data
    sock.sendall(frame)
    return len(frame)


def recv_message(sock: socket.socket) -> Any:
    """Read one length-prefixed pickled frame; ``EOFError`` on a closed peer."""
    payload, _ = recv_message_counted(sock)
    return payload


def recv_message_counted(sock: socket.socket) -> "tuple[Any, int]":
    """Like :func:`recv_message`, also returning the frame size in bytes."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"data-plane frame of {length} bytes exceeds the {MAX_FRAME_BYTES} byte bound")
    return pickle.loads(_recv_exact(sock, length)), _HEADER.size + length


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise EOFError("data-plane peer closed the connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _encode_error(exc: BaseException) -> Any:
    """Best-effort exception transfer: the object when picklable, else a repr."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return RuntimeError(f"unpicklable data-plane error: {exc!r}")


# ---------------------------------------------------------------------------
# The abstraction + the shm plane
# ---------------------------------------------------------------------------


class DataPlane:
    """Where a team's shared state lives and how members reach it."""

    #: short identifier (``shm`` / ``socket``) used in error messages.
    name = "abstract"
    #: human-readable transport description for diagnostics.
    transport = "unspecified transport"

    def create_sync(self, size: int, *, pooled: bool = False, max_workers: Optional[int] = None) -> shm.ProcessSync:
        """Build the ``ProcessSync`` bundle a ``size``-member team runs on."""
        raise NotImplementedError

    def release_sync(self, sync: shm.ProcessSync) -> None:
        """Tear down plane resources held by ``sync`` (no-op by default)."""


class ShmDataPlane(DataPlane):
    """Today's shared-memory/fork machinery, constructed through the plane API.

    Deliberately nothing but a constructor shim: the arenas, barrier and
    heartbeat cells are exactly the objects the process backend and the
    persistent pool built directly before the data-plane split, so existing
    backends are bit-identical through it.
    """

    name = "shm"
    transport = "fork-inherited shared memory"

    def create_sync(self, size: int, *, pooled: bool = False, max_workers: Optional[int] = None) -> shm.ProcessSync:
        capacity = max_workers if max_workers is not None else max(size, 2)
        metrics = None
        if pooled or get_config().metrics:
            # Pool syncs always carry an arena: pooled workers are forked once
            # at pool construction and can only ever flush into cells that
            # existed at fork time, so the arena must exist even if metrics
            # are enabled later via ``config_override``.
            from repro.obs.arena import MetricsArena

            metrics = MetricsArena(capacity)
        return shm.ProcessSync(
            shm.SharedBarrier(size),
            shm.SyncArena(),
            pooled=pooled,
            steal=shm.TaskStealArena(max_workers=capacity),
            tune=shm.TunePlanArena(),
            heartbeat=shm.HeartbeatArena(),
            metrics=metrics,
        )


# ---------------------------------------------------------------------------
# Socket plane: master-side coordinator
# ---------------------------------------------------------------------------

#: transport label threaded into barrier-timeout messages (satellite of the
#: "name the active data plane" fix — a distributed failure must not
#: misreport itself as a fork/shm problem).
SOCKET_TRANSPORT = f"socket data plane, tcp://{LOOPBACK_HOST}"


class Coordinator:
    """Master-side server hosting a socket-plane team's real shared state.

    One instance per region.  Hosts the *actual* :class:`~repro.runtime.shm`
    arenas over plain ``list`` cells guarded by ``threading.Lock`` (every
    mutation happens in this process — either directly by the master member
    or by a per-connection handler thread acting for a remote worker), plus
    an in-process :class:`CyclicBarrier` whose remote parties are represented
    by their handler threads blocking in ``wait`` on their behalf.

    Connection lifecycle is the liveness signal: a worker that dies mid-region
    drops its socket before sending its ``result`` frame.  The handler marks
    the member *lost* and breaks the barrier immediately, so detection is
    bounded by the monitor poll interval, not by a barrier timeout.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.token = secrets.token_hex(16)
        self.barrier = CyclicBarrier(size, transport=SOCKET_TRANSPORT)
        self.arena = shm.SyncArena(cells=self._cells(shm.SyncArena.CELLS_PER_SLOT * 256), lock=threading.Lock())
        steal_workers = max(size, 2)
        self.steal = shm.TaskStealArena(
            max_workers=steal_workers,
            cells=self._cells(shm.TaskStealArena.cells_needed(steal_workers, 64)),
            lock=threading.Lock(),
        )
        self.tune = shm.TunePlanArena(cells=self._cells(shm.TunePlanArena.CELLS_PER_SLOT * 256), lock=threading.Lock())
        self.heartbeat = shm.HeartbeatArena(cells=self._cells(shm.HeartbeatArena.CELLS_PER_MEMBER * 64))
        #: worker result frames, drained by ``collect_member_payloads`` —
        #: ``queue.Queue`` deliberately matches the ``empty()``/``get()``
        #: channel surface the forked path uses.
        self.results: "queue.Queue[tuple[int, tuple[bytes | None, bytes | None]]]" = queue.Queue()
        #: region descriptor served to workers in the hello response; the
        #: backend fills it in before spawning.
        self.descriptor: "dict[str, Any] | None" = None
        self._lost: "dict[int, int]" = {}  # member -> last known pid
        self._reported: "set[int]" = set()
        self._segments: "dict[str, shm.SharedArray]" = {}
        self._segments_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._conns: "list[socket.socket]" = []
        self._closing = False
        self._listener: "socket.socket | None" = None
        self.port: "int | None" = None

    @staticmethod
    def _cells(count: int) -> "list[int]":
        return [0] * count

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the loopback listener and start accepting worker connections."""
        self._listener = socket.create_server((LOOPBACK_HOST, 0))
        self.port = self._listener.getsockname()[1]
        threading.Thread(target=self._accept_loop, name="aomp-dataplane-accept", daemon=True).start()

    def shutdown(self) -> None:
        """Stop serving and release master-side attachments."""
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._state_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        with self._segments_lock:
            segments, self._segments = self._segments, {}
        for segment in segments.values():
            segment.close()

    def lost_members(self) -> "list[tuple[int, int]]":
        """``(member, pid)`` pairs whose connection dropped before a result."""
        with self._state_lock:
            return list(self._lost.items())

    # -- server loop ---------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with self._state_lock:
                self._conns.append(conn)
            threading.Thread(target=self._serve, args=(conn,), name="aomp-dataplane-serve", daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        member = None
        pid = 0
        try:
            # Authenticate BEFORE deserialising anything: the preamble is the
            # raw token bytes, fixed length, compared in constant time.  An
            # unauthenticated peer never reaches pickle.loads, so a crafted
            # pickle frame cannot execute code in the master.
            conn.settimeout(HANDSHAKE_TIMEOUT)
            preamble = _recv_exact(conn, len(self.token))
            if not secrets.compare_digest(preamble, self.token.encode("ascii")):
                send_message(conn, (False, _encode_error(PermissionError("data-plane token rejected"))))
                return  # member is still None: an impostor is never marked lost
            conn.settimeout(None)
            hello = recv_message(conn)
            if not (isinstance(hello, tuple) and len(hello) == 3 and hello[0] == "hello"):
                send_message(conn, (False, _encode_error(PermissionError("data-plane hello frame expected"))))
                return
            _op, member, pid = hello
            self.heartbeat.register(member, pid=pid)
            send_message(conn, (True, self.descriptor))
            while True:
                request = recv_message(conn)
                op, args = request[0], request[1:]
                if member is not None:
                    self.heartbeat.beat(member)
                try:
                    reply = self._dispatch(member, op, args)
                except BaseException as exc:  # noqa: BLE001 - shipped to the worker
                    send_message(conn, (False, _encode_error(exc)))
                else:
                    send_message(conn, (True, reply))
                    if op == "result":
                        return  # worker is done; a subsequent EOF is a clean goodbye
        except (EOFError, ConnectionError, OSError):
            if member is not None:
                with self._state_lock:
                    # _dispatch adds to _reported under this lock; a member
                    # whose result is already queued is not lost — only the
                    # reply (or goodbye) failed after the payload landed, and
                    # breaking the barrier would punish the survivors.
                    reported = member in self._reported
                    if not reported:
                        self._lost[member] = pid
                if not reported:
                    # Break the barrier now: surviving members must not sit
                    # out the full barrier timeout waiting for a peer that is
                    # gone.
                    self.barrier.abort()
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, member: "int | None", op: str, args: tuple) -> Any:
        if op == "ping":
            return args[0] if args else None
        if op == "barrier_wait":
            timeout = args[0]
            if len(args) > 1 and args[1]:
                # Metrics delta piggybacked on the barrier frame: the handler
                # thread runs in the master process, so fold the worker's
                # counts straight into the master registry.
                obsreg.absorb(args[1])
            self.heartbeat.note_arrival(member)
            return self.barrier.wait() if timeout is None else self.barrier.wait(timeout)
        if op == "barrier_abort":
            self.barrier.abort()
            return None
        if op == "barrier_broken":
            return self.barrier.broken
        if op == "arena_attach":
            ordinal, level = args
            self.arena.slot(ordinal, level=level)
            return None
        if op == "arena_fetch_add":
            ordinal, level, amount = args
            return self.arena.slot(ordinal, level=level).fetch_add(amount)
        if op == "arena_claim_batch":
            ordinal, level, limit, num_threads, total_chunks = args
            return self.arena.slot(ordinal, level=level).claim_batch(limit, num_threads, total_chunks)
        if op == "arena_claim_guided":
            ordinal, level, total, min_chunk, num_threads = args
            return self.arena.slot(ordinal, level=level).claim_guided(total, min_chunk, num_threads)
        if op == "arena_claim_guided_batch":
            ordinal, level, total, min_chunk, num_threads, limit = args
            return self.arena.slot(ordinal, level=level).claim_guided_batch(total, min_chunk, num_threads, limit)
        if op == "steal_claim_local":
            ordinal, level, num_workers, ntiles, worker = args
            return self.steal.slot(ordinal, num_workers, ntiles, level=level).claim_local(worker)
        if op == "steal_claim_steal":
            ordinal, level, num_workers, ntiles, worker = args
            return self.steal.slot(ordinal, num_workers, ntiles, level=level).claim_steal(worker)
        if op == "steal_mark_done":
            ordinal, level, num_workers, ntiles, amount = args
            return self.steal.slot(ordinal, num_workers, ntiles, level=level).mark_done(amount)
        if op == "steal_finished":
            ordinal, level, num_workers, ntiles = args
            return self.steal.slot(ordinal, num_workers, ntiles, level=level).finished()
        if op == "tune_publish":
            ordinal, level, plan = args
            self.tune.slot(ordinal, level=level).publish(plan)
            return None
        if op == "tune_read":
            ordinal, level, timeout = args
            return self.tune.slot(ordinal, level=level).read(timeout)
        if op == "gather":
            name, shape, dtype_str = args
            return self._segment(name, shape, dtype_str).np.tobytes()
        if op == "publish":
            name, shape, dtype_str, index_bytes, value_bytes = args
            segment = self._segment(name, shape, dtype_str)
            flat = segment.np.reshape(-1)
            indices = np.frombuffer(index_bytes, dtype=np.int64)
            flat[indices] = np.frombuffer(value_bytes, dtype=segment.np.dtype)
            return None
        if op == "result":
            member_id, result_bytes, exc_bytes = args[:3]
            if len(args) > 3 and args[3]:
                obsreg.absorb(args[3])
            with self._state_lock:
                self._reported.add(member_id)
            self.results.put((member_id, (result_bytes, exc_bytes)))
            return None
        raise ValueError(f"unknown data-plane op {op!r}")

    def _segment(self, name: str, shape: tuple, dtype_str: str) -> shm.SharedArray:
        """Master-side view of a named segment (attach once, close on shutdown).

        The coordinator never owns these segments — the region body created
        them — so the attachment is close-only and can never unlink data out
        from under the master.
        """
        with self._segments_lock:
            segment = self._segments.get(name)
            if segment is None:
                segment = shm._attach_shared_array(name, shape, dtype_str)
                self._segments[name] = segment
            return segment


# ---------------------------------------------------------------------------
# Socket plane: worker-side session, array mirrors and proxies
# ---------------------------------------------------------------------------

#: generous slack on top of the *effective* barrier timeout: a worker whose
#: RPC reply never arrives (coordinator process died) must unblock itself
#: eventually, but only after every legitimate barrier wait could have
#: completed server-side.
_RPC_GRACE = 30.0


def _effective_rpc_timeout() -> "float | None":
    """Socket timeout for worker RPCs, tracking ``AOMP_BARRIER_TIMEOUT``.

    The longest legitimate RPC is a ``barrier_wait`` held open server-side
    for the coordinator barrier's bound, so the socket timeout must sit
    *above* that bound — pinning it to the 120 s default would make a
    healthy worker spuriously break the barrier whenever the user raises
    ``AOMP_BARRIER_TIMEOUT`` past it.  When the bound is disabled (``<= 0``:
    wait forever) there is no meaningful RPC deadline either; liveness then
    rests on the connection itself (a dead coordinator closes the socket,
    surfacing as ``EOFError``/``ConnectionError``).
    """
    bound = _default_barrier_timeout()
    return None if bound is None else bound + _RPC_GRACE

#: the active worker session of this process, if any.  Installed by
#: :class:`WorkerSession` so ``shm._attach_shared_array`` can route unpickled
#: SharedArray references to socket-backed mirrors.
_worker_session: "WorkerSession | None" = None


def current_worker_session() -> "WorkerSession | None":
    """The socket-plane session this process runs under, or ``None``."""
    return _worker_session


class WorkerSession:
    """A worker process's connection to the coordinator.

    One socket, one lock: requests are strictly serialised, so the ordered
    stream guarantees every ``publish`` lands before the ``barrier_wait``
    that follows it.  The session also owns the process's array mirrors and
    (when ``install_hook`` is set) registers itself as the shm attach hook so
    unpickling a :class:`~repro.runtime.shm.SharedArray` reference yields a
    :class:`RemoteArray` instead of a doomed ``/dev/shm`` attach.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: str,
        member: int,
        *,
        install_hook: bool = True,
        rpc_timeout: "float | None" = None,
    ) -> None:
        self.member = member
        self._sock = socket.create_connection((host, port), timeout=10.0)
        self._sock.settimeout(rpc_timeout if rpc_timeout is not None else _effective_rpc_timeout())
        self._lock = threading.Lock()
        self._arrays: "dict[str, RemoteArray]" = {}
        #: one-predicate metrics guard for the RPC hot path; ``_worker_main``
        #: refreshes it once the master's config override is in effect.
        self.metrics = get_config().metrics
        try:
            with self._lock:
                # Raw token preamble first (authenticated before the server
                # unpickles anything), then the pickled hello frame.
                self._sock.sendall(token.encode("ascii"))
                send_message(self._sock, ("hello", member, os.getpid()))
                ok, payload = recv_message(self._sock)
        except BaseException:
            self._sock.close()
            raise
        if not ok:
            self._sock.close()
            raise payload
        self.descriptor = payload
        if install_hook:
            self.install()

    # -- hook management -----------------------------------------------------

    def install(self) -> None:
        global _worker_session
        _worker_session = self
        shm._attach_hook = self.attach_array

    def close(self) -> None:
        global _worker_session
        if _worker_session is self:
            _worker_session = None
            shm._attach_hook = None
        try:
            self._sock.close()
        except OSError:
            pass

    # -- RPC -----------------------------------------------------------------

    def call(self, op: str, *args: Any) -> Any:
        metrics = self.metrics
        start = time.perf_counter() if metrics else 0.0
        try:
            with self._lock:
                sent = send_message(self._sock, (op, *args))
                (ok, payload), received = recv_message_counted(self._sock)
        except (TimeoutError, socket.timeout) as exc:
            raise BrokenBarrierError(
                f"data-plane RPC {op!r} timed out ({SOCKET_TRANSPORT}); the coordinator may be gone"
            ) from exc
        if metrics:
            obsreg.inc(obsreg.RPC_CALLS)
            obsreg.inc(obsreg.RPC_BYTES_SENT, sent)
            obsreg.inc(obsreg.RPC_BYTES_RECEIVED, received)
            obsreg.observe("aomp_rpc_rtt_seconds", time.perf_counter() - start)
        if ok:
            return payload
        raise payload

    # -- array mirrors -------------------------------------------------------

    def attach_array(self, name: str, shape: tuple, dtype_str: str) -> "RemoteArray":
        mirror = self._arrays.get(name)
        if mirror is None:
            mirror = RemoteArray(self, name, shape, dtype_str)
            self._arrays[name] = mirror
        return mirror

    def flush_arrays(self) -> None:
        """Publish every mirror's dirty elements to the coordinator."""
        for mirror in self._arrays.values():
            mirror.flush()

    def refresh_arrays(self) -> None:
        """Re-gather every mirror from the coordinator's authoritative copy."""
        for mirror in self._arrays.values():
            mirror.refresh()


class RemoteArray:
    """Worker-side mirror of a master-process :class:`~repro.runtime.shm.SharedArray`.

    Duck-types the ``SharedArray`` surface kernels use (indexing, ``__array__``,
    attribute delegation to the ndarray).  Coherence is bulk-synchronous and
    pinned to the team barrier: :meth:`flush` publishes exactly the elements
    *this* worker changed since the last gather (diff against a baseline
    copy), :meth:`refresh` overwrites mirror and baseline *in place* with the
    coordinator's current data — ``self.np`` keeps its buffer identity, so a
    kernel that caches it across a barrier stays coherent just as it would
    with a shared mapping.  Because members write disjoint chunks
    between barriers, diffs from different workers never overlap, and a
    concurrently-racing master write can never be clobbered by a stale
    value — an element the worker did not touch is never republished.
    """

    def __init__(self, session: WorkerSession, name: str, shape: tuple, dtype_str: str) -> None:
        self._session = session
        self._name = name
        self._shape = tuple(shape)
        self._dtype = np.dtype(dtype_str)
        self.np: np.ndarray = np.zeros(self._shape, dtype=self._dtype)
        self._baseline = self.np.copy()
        self.refresh()

    @property
    def name(self) -> str:
        return self._name

    def refresh(self) -> None:
        data = self._session.call("gather", self._name, self._shape, self._dtype.str)
        fresh = np.frombuffer(data, dtype=self._dtype).reshape(self._shape)
        # Copy into the existing buffer instead of rebinding self.np: a kernel
        # that caches ``arr.np`` across a barrier (valid under the shm plane,
        # whose mapping is stable) must keep seeing — and writing — the live
        # mirror, not an orphaned buffer whose writes never flush.
        np.copyto(self.np, fresh)
        np.copyto(self._baseline, fresh)

    def flush(self) -> None:
        current = self.np.reshape(-1)
        baseline = self._baseline.reshape(-1)
        # != is elementwise-safe for every dtype the kernels use; NaN compares
        # unequal to itself, which only means an untouched NaN republishes its
        # own value — harmless.
        dirty = np.flatnonzero(current != baseline)
        if dirty.size:
            self._session.call(
                "publish",
                self._name,
                self._shape,
                self._dtype.str,
                dirty.astype(np.int64).tobytes(),
                np.ascontiguousarray(current[dirty]).tobytes(),
            )
            np.copyto(baseline, current)

    # -- ndarray-ish surface (mirrors SharedArray) ---------------------------

    def __array__(self, dtype=None) -> np.ndarray:
        return self.np.astype(dtype) if dtype is not None else self.np

    def __getitem__(self, key):
        return self.np[key]

    def __setitem__(self, key, value) -> None:
        self.np[key] = value

    def __len__(self) -> int:
        return len(self.np)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "np"), name)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RemoteArray(name={self._name!r}, shape={self._shape}, dtype={self._dtype})"

    def close(self) -> None:
        """Mirror of ``SharedArray.close`` — nothing to detach worker-side."""


class SocketBarrier:
    """Worker-side barrier proxy: the coherence point of the socket plane.

    ``wait`` publishes this worker's dirty array elements, blocks in the
    coordinator's barrier via RPC (the handler thread waits on the worker's
    behalf), then re-gathers the mirrors — so after every team barrier the
    worker sees exactly what a fork-inherited member would see in shared
    pages.
    """

    def __init__(self, session: WorkerSession, parties: int) -> None:
        self._session = session
        self._parties = parties

    @property
    def parties(self) -> int:
        return self._parties

    @property
    def broken(self) -> bool:
        return bool(self._session.call("barrier_broken"))

    def wait(self, timeout: Optional[float] = None) -> int:
        self._session.flush_arrays()
        # Piggyback this worker's metric delta on the barrier frame it is
        # sending anyway — team-wide aggregation costs zero extra round trips.
        delta = obsreg.flush_delta() if self._session.metrics else None
        index = self._session.call("barrier_wait", timeout, delta)
        self._session.refresh_arrays()
        return int(index)

    def abort(self) -> None:
        self._session.call("barrier_abort")


class _ProxySlotBase:
    __slots__ = ("_session", "_ordinal", "_level")

    def __init__(self, session: WorkerSession, ordinal: int, level: int) -> None:
        self._session = session
        self._ordinal = ordinal
        self._level = level


class ProxyArenaSlot(_ProxySlotBase):
    """RPC twin of :class:`~repro.runtime.shm.ArenaSlot` (claim counters)."""

    __slots__ = ()

    def __init__(self, session: WorkerSession, ordinal: int, level: int) -> None:
        super().__init__(session, ordinal, level)
        session.call("arena_attach", ordinal, level)

    def fetch_add(self, amount: int = 1) -> int:
        return self._session.call("arena_fetch_add", self._ordinal, self._level, amount)

    def claim_batch(self, limit: int, num_threads: int, total_chunks: int) -> "tuple[int, int] | None":
        return self._session.call("arena_claim_batch", self._ordinal, self._level, limit, num_threads, total_chunks)

    def claim_guided(self, total: int, min_chunk: int, num_threads: int) -> "tuple[int, int] | None":
        return self._session.call("arena_claim_guided", self._ordinal, self._level, total, min_chunk, num_threads)

    def claim_guided_batch(
        self, total: int, min_chunk: int, num_threads: int, limit: int
    ) -> "list[tuple[int, int]] | None":
        return self._session.call(
            "arena_claim_guided_batch", self._ordinal, self._level, total, min_chunk, num_threads, limit
        )


class ProxySyncArena:
    """Worker-side stand-in for :class:`~repro.runtime.shm.SyncArena`."""

    def __init__(self, session: WorkerSession) -> None:
        self._session = session

    def slot(self, ordinal: int, *, level: int = 0) -> ProxyArenaSlot:
        return ProxyArenaSlot(self._session, ordinal, level)


class ProxyStealSlot(_ProxySlotBase):
    """RPC twin of :class:`~repro.runtime.shm.TaskStealSlot` (taskloop decks)."""

    __slots__ = ("_num_workers", "_ntiles")

    def __init__(self, session: WorkerSession, ordinal: int, num_workers: int, ntiles: int, level: int) -> None:
        super().__init__(session, ordinal, level)
        self._num_workers = num_workers
        self._ntiles = ntiles

    def _call(self, op: str, *args: Any) -> Any:
        return self._session.call(op, self._ordinal, self._level, self._num_workers, self._ntiles, *args)

    def claim_local(self, worker: int) -> "int | None":
        return self._call("steal_claim_local", worker)

    def claim_steal(self, worker: int) -> "tuple[int, int] | None":
        return self._call("steal_claim_steal", worker)

    def mark_done(self, amount: int = 1) -> int:
        return self._call("steal_mark_done", amount)

    def finished(self) -> bool:
        return self._call("steal_finished")


class ProxyStealArena:
    """Worker-side stand-in for :class:`~repro.runtime.shm.TaskStealArena`."""

    def __init__(self, session: WorkerSession) -> None:
        self._session = session

    def slot(self, ordinal: int, num_workers: int, ntiles: int, *, level: int = 0) -> ProxyStealSlot:
        return ProxyStealSlot(self._session, ordinal, num_workers, ntiles, level)


class ProxyTuneSlot(_ProxySlotBase):
    """RPC twin of :class:`~repro.runtime.shm.TunePlanSlot` (auto-schedule plans)."""

    __slots__ = ()

    def publish(self, plan: "tuple[int, int, int, int]") -> None:
        self._session.call("tune_publish", self._ordinal, self._level, tuple(plan))

    def read(self, timeout: float = shm.BARRIER_TIMEOUT) -> "tuple[int, int, int, int]":
        return tuple(self._session.call("tune_read", self._ordinal, self._level, timeout))


class ProxyTuneArena:
    """Worker-side stand-in for :class:`~repro.runtime.shm.TunePlanArena`."""

    def __init__(self, session: WorkerSession) -> None:
        self._session = session

    def slot(self, ordinal: int, *, level: int = 0) -> ProxyTuneSlot:
        return ProxyTuneSlot(self._session, ordinal, level)


class SessionHeartbeat:
    """Worker-side heartbeat stub: liveness is *observed* by the coordinator.

    Every RPC the worker makes refreshes its beat server-side and the barrier
    handler counts its arrivals, so there is nothing for the worker to write;
    the master's monitor reads the coordinator's real arena.  The read
    surface answers conservatively for the (diagnostic-only) worker-side
    error enrichment paths.
    """

    def register(self, member: int, pid: "int | None" = None) -> None:
        pass

    def beat(self, member: int) -> None:
        pass

    def note_arrival(self, member: int) -> None:
        pass

    def pid(self, member: int) -> int:
        return 0

    def age(self, member: int) -> "float | None":
        return None

    def arrivals(self, size: int) -> "list[int]":
        return [0] * size

    def member_for_pid(self, pid: int) -> "int | None":
        return None


def worker_process_sync(session: WorkerSession, size: int) -> shm.ProcessSync:
    """The proxy ``ProcessSync`` bundle a socket-plane worker member runs on."""
    return shm.ProcessSync(
        SocketBarrier(session, size),
        ProxySyncArena(session),
        pooled=False,
        steal=ProxyStealArena(session),
        tune=ProxyTuneArena(session),
        heartbeat=SessionHeartbeat(),
    )


class SocketDataPlane(DataPlane):
    """Message-passing plane: coordinator-hosted state, TCP-connected members."""

    name = "socket"
    transport = SOCKET_TRANSPORT

    def create_sync(self, size: int, *, pooled: bool = False, max_workers: Optional[int] = None) -> shm.ProcessSync:
        coordinator = Coordinator(size)
        coordinator.start()
        sync = shm.ProcessSync(
            coordinator.barrier,
            coordinator.arena,
            pooled=pooled,
            steal=coordinator.steal,
            tune=coordinator.tune,
            heartbeat=coordinator.heartbeat,
        )
        sync.coordinator = coordinator
        return sync

    def release_sync(self, sync: shm.ProcessSync) -> None:
        coordinator = getattr(sync, "coordinator", None)
        if coordinator is not None:
            coordinator.shutdown()
