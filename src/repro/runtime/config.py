"""Global runtime configuration.

Mirrors the role of OpenMP environment variables (``OMP_NUM_THREADS``,
``OMP_SCHEDULE``, ``OMP_NESTED``): a process-wide default consulted when an
individual parallel region or for-method does not specify its own settings.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, replace


def _env_pair(primary: str, fallback: "str | None" = None) -> "tuple[str, str | None]":
    """``(variable_name, value)`` for the first of two variables that is set.

    The variable *name* travels with the value so a parse failure can blame
    the exact variable the user set — every ``AOMP_*`` parser here rejects
    garbage loudly rather than silently substituting a default (a typo'd
    setting that silently does nothing is worse than a crash at import).
    """
    env = os.environ.get(primary)
    if env:
        return primary, env
    if fallback is not None:
        env = os.environ.get(fallback)
        if env:
            return fallback, env
    return primary, None


def _default_backend() -> str:
    """Backend name from ``AOMP_BACKEND`` (``serial`` | ``threads`` |
    ``processes`` | ``subinterp`` | ``distributed``).

    Validity is checked loudly — but *at use*, by ``backend_by_name`` (which
    names the valid set), so plugin backends registered after import still
    resolve.
    """
    env = (os.environ.get("AOMP_BACKEND") or "").strip().lower()
    return env or "threads"


def _default_schedule() -> str:
    """Default loop schedule from ``AOMP_SCHEDULE`` (or ``OMP_SCHEDULE``).

    OpenMP-style ``"kind[,chunk]"`` specs are accepted (e.g. ``"dynamic,4"``
    or ``"auto"``); parsing/validation happens at loop-execution time.
    """
    env = (os.environ.get("AOMP_SCHEDULE") or os.environ.get("OMP_SCHEDULE") or "").strip()
    return env or "static_block"


def _default_tune_cache() -> "str | None":
    """Path of the adaptive tuner's persistent cache from ``AOMP_TUNE_CACHE``."""
    env = (os.environ.get("AOMP_TUNE_CACHE") or "").strip()
    return env or None


def _default_num_threads() -> int:
    """Default team size from ``AOMP_NUM_THREADS``/``OMP_NUM_THREADS`` (int >= 1)."""
    name, env = _env_pair("AOMP_NUM_THREADS", "OMP_NUM_THREADS")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"{name} must be an integer >= 1; got {env!r}") from None
        if value < 1:
            raise ValueError(f"{name} must be an integer >= 1; got {env!r}")
        return value
    return max(1, os.cpu_count() or 1)


_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})

ON_FAILURE_POLICIES = ("raise", "retry", "degrade")


def _default_on_failure() -> str:
    """Region failure policy from ``AOMP_ON_FAILURE`` (``raise``/``retry``/``degrade``)."""
    env = (os.environ.get("AOMP_ON_FAILURE") or "").strip().lower()
    if not env:
        return "raise"
    if env not in ON_FAILURE_POLICIES:
        raise ValueError(
            f"AOMP_ON_FAILURE must be one of {', '.join(ON_FAILURE_POLICIES)}; got {env!r}"
        )
    return env


def _default_max_retries() -> int:
    """Retry budget per backend level from ``AOMP_MAX_RETRIES`` (>= 0)."""
    env = os.environ.get("AOMP_MAX_RETRIES")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"AOMP_MAX_RETRIES must be an integer >= 0; got {env!r}") from None
        if value < 0:
            raise ValueError(f"AOMP_MAX_RETRIES must be an integer >= 0; got {env!r}")
        return value
    return 2


def _default_retry_backoff() -> float:
    """Base retry delay in seconds from ``AOMP_RETRY_BACKOFF`` (doubles per attempt)."""
    env = os.environ.get("AOMP_RETRY_BACKOFF")
    if env:
        try:
            value = float(env)
        except ValueError:
            raise ValueError(f"AOMP_RETRY_BACKOFF must be a number of seconds >= 0; got {env!r}") from None
        if value < 0.0:
            raise ValueError(f"AOMP_RETRY_BACKOFF must be a number of seconds >= 0; got {env!r}")
        return value
    return 0.05


def _default_nested() -> bool:
    """Whether nested regions create real teams, from ``AOMP_NESTED``/``OMP_NESTED``."""
    name, env = _env_pair("AOMP_NESTED", "OMP_NESTED")
    if env is None or not env.strip():
        return True
    word = env.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    raise ValueError(
        f"{name} must be a boolean word ({'/'.join(sorted(_TRUE_WORDS))} or "
        f"{'/'.join(sorted(_FALSE_WORDS))}); got {env!r}"
    )


def _default_max_active_levels() -> int:
    """Nesting-depth cap from ``AOMP_MAX_ACTIVE_LEVELS``/``OMP_MAX_ACTIVE_LEVELS``.

    Counts *active* levels — enclosing teams with more than one member —
    exactly like OpenMP's ``omp_set_max_active_levels``.
    """
    name, env = _env_pair("AOMP_MAX_ACTIVE_LEVELS", "OMP_MAX_ACTIVE_LEVELS")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"{name} must be an integer >= 1; got {env!r}") from None
        if value < 1:
            raise ValueError(f"{name} must be an integer >= 1; got {env!r}")
        return value
    return 4


def _default_metrics() -> bool:
    """Whether the runtime accumulates metrics, from ``AOMP_METRICS``."""
    env = os.environ.get("AOMP_METRICS")
    if env is None or not env.strip():
        return False
    word = env.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    raise ValueError(
        f"AOMP_METRICS must be a boolean word ({'/'.join(sorted(_TRUE_WORDS))} or "
        f"{'/'.join(sorted(_FALSE_WORDS))}); got {env!r}"
    )


def _default_metrics_port() -> "int | None":
    """TCP port of the opt-in metrics scrape endpoint, from ``AOMP_METRICS_PORT``.

    ``None`` (unset/empty) disables the endpoint; ``0`` asks for an ephemeral
    port (the bound port is reported by ``repro.obs.exporter_port()``).
    """
    env = os.environ.get("AOMP_METRICS_PORT")
    if env is None or not env.strip():
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(f"AOMP_METRICS_PORT must be an integer port (0..65535); got {env!r}") from None
    if not 0 <= value <= 65535:
        raise ValueError(f"AOMP_METRICS_PORT must be an integer port (0..65535); got {env!r}")
    return value


#: default histogram bucket boundaries (seconds): log-scale from 1 us to 10 s,
#: covering everything from a hot barrier round to a wedged worker.
DEFAULT_METRICS_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


def _default_metrics_buckets() -> "tuple[float, ...]":
    """Histogram bucket boundaries from ``AOMP_METRICS_BUCKETS``.

    Comma-separated, strictly increasing, positive seconds.  The boundaries
    fix the metrics slot layout process-wide, so workers inherit them through
    the environment rather than per-region plumbing.
    """
    env = os.environ.get("AOMP_METRICS_BUCKETS")
    if env is None or not env.strip():
        return DEFAULT_METRICS_BUCKETS
    bounds: "list[float]" = []
    for piece in env.split(","):
        piece = piece.strip()
        if not piece:
            continue
        try:
            value = float(piece)
        except ValueError:
            raise ValueError(
                f"AOMP_METRICS_BUCKETS must be comma-separated increasing positive "
                f"seconds; got {env!r}"
            ) from None
        bounds.append(value)
    if not bounds or any(b <= 0 for b in bounds) or any(a >= b for a, b in zip(bounds, bounds[1:])):
        raise ValueError(
            f"AOMP_METRICS_BUCKETS must be comma-separated increasing positive "
            f"seconds; got {env!r}"
        )
    return tuple(bounds)


@dataclass(frozen=True)
class RuntimeConfig:
    """Process-wide defaults for the PyAOmpLib runtime.

    Attributes
    ----------
    num_threads:
        Default team size for parallel regions that do not specify one.
    backend:
        Name of the default execution backend (``"serial"``, ``"threads"``,
        ``"processes"`` or ``"subinterp"``), seeded from the ``AOMP_BACKEND``
        environment variable.  Overridden globally by
        :func:`repro.runtime.backend.set_backend` and per-region via the
        ``backend=`` argument of ``parallel_region``.
    default_schedule:
        Default loop schedule spec (``"static_block"``, ``"static_cyclic"``,
        ``"dynamic"``, ``"guided"`` or ``"auto"``, optionally with an
        OpenMP-style chunk suffix such as ``"dynamic,4"``), seeded from the
        ``AOMP_SCHEDULE``/``OMP_SCHEDULE`` environment variables.  Consulted
        by work-shared loops that do not pass an explicit ``schedule=``.
    default_chunk:
        Default chunk size for dynamic/guided schedules.
    tune_cache:
        Path of the adaptive tuner's persistent decision cache (``None``
        disables persistence), seeded from ``AOMP_TUNE_CACHE``.  See
        :mod:`repro.tune`.
    nested:
        Whether nested parallel regions create new teams (OpenMP ``OMP_NESTED``),
        seeded from the ``AOMP_NESTED``/``OMP_NESTED`` environment variables.
        When ``False`` a nested region executes with a team of one.
    max_active_levels:
        Cap on the number of *active* nesting levels — enclosing teams with
        more than one member — mirroring OpenMP's
        ``omp_set_max_active_levels``/``OMP_MAX_ACTIVE_LEVELS`` (seeded from
        ``AOMP_MAX_ACTIVE_LEVELS`` too).  A region whose enclosing contexts
        already hold this many active teams gets a team of one; serialised
        (size-1) levels do not consume the budget.
    tracing:
        Whether the runtime records :class:`~repro.runtime.trace.TraceRecorder`
        events (needed by :mod:`repro.perf`).
    on_failure:
        Default region failure policy (``"raise"``, ``"retry"`` or
        ``"degrade"``), seeded from ``AOMP_ON_FAILURE``.  ``retry`` re-runs a
        region whose failure was recoverable infrastructure (dead worker,
        broken barrier, injected fault) with exponential backoff; ``degrade``
        additionally walks down the backend fallback chain (processes →
        threads → serial) once the retry budget is exhausted.  Both only act
        on bodies marked ``retry_safe`` — see
        :func:`repro.runtime.team.parallel_region`.
    max_retries:
        Retry budget per backend level under ``retry``/``degrade``, seeded
        from ``AOMP_MAX_RETRIES``.
    retry_backoff:
        Base delay in seconds before a retry (doubling each attempt), seeded
        from ``AOMP_RETRY_BACKOFF``.
    metrics:
        Whether the runtime accumulates :mod:`repro.obs` metrics (counters,
        gauges, histograms), seeded from ``AOMP_METRICS``.  Off by default:
        every instrumentation site is guarded by this single predicate, so
        the hot path pays one attribute load when disabled.
    metrics_port:
        TCP port of the opt-in stdlib-HTTP Prometheus scrape endpoint,
        seeded from ``AOMP_METRICS_PORT`` (``None`` disables it, ``0`` binds
        an ephemeral port).
    metrics_buckets:
        Histogram bucket boundaries in seconds (strictly increasing), seeded
        from ``AOMP_METRICS_BUCKETS``.
    """

    num_threads: int = field(default_factory=_default_num_threads)
    backend: str = field(default_factory=_default_backend)
    default_schedule: str = field(default_factory=_default_schedule)
    default_chunk: int = 1
    tune_cache: "str | None" = field(default_factory=_default_tune_cache)
    nested: bool = field(default_factory=_default_nested)
    max_active_levels: int = field(default_factory=_default_max_active_levels)
    tracing: bool = True
    on_failure: str = field(default_factory=_default_on_failure)
    max_retries: int = field(default_factory=_default_max_retries)
    retry_backoff: float = field(default_factory=_default_retry_backoff)
    metrics: bool = field(default_factory=_default_metrics)
    metrics_port: "int | None" = field(default_factory=_default_metrics_port)
    metrics_buckets: "tuple[float, ...]" = field(default_factory=_default_metrics_buckets)

    def with_updates(self, **kwargs) -> "RuntimeConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **kwargs)


_lock = threading.Lock()
_config = RuntimeConfig()


def get_config() -> RuntimeConfig:
    """Return the current global configuration."""
    return _config


def set_config(config: RuntimeConfig) -> RuntimeConfig:
    """Install ``config`` as the global configuration and return the previous one."""
    global _config
    with _lock:
        previous, _config = _config, config
    return previous


def set_num_threads(n: int) -> None:
    """Set the default number of threads used by parallel regions."""
    if n < 1:
        raise ValueError(f"number of threads must be >= 1, got {n}")
    global _config
    with _lock:
        _config = _config.with_updates(num_threads=int(n))


def get_num_threads() -> int:
    """Return the default number of threads used by parallel regions."""
    return _config.num_threads


class config_override:
    """Context manager temporarily overriding global configuration fields.

    Example
    -------
    >>> with config_override(num_threads=2, tracing=False):
    ...     ...
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self._previous: RuntimeConfig | None = None

    def __enter__(self) -> RuntimeConfig:
        self._previous = get_config()
        set_config(self._previous.with_updates(**self._kwargs))
        return get_config()

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        set_config(self._previous)
